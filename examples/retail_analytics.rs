//! The paper's motivating domain: LogicBlox "uses incremental computation
//! to support a suite of data mining and machine learning tools for
//! retail" (§I). This example keeps a retail rule base materialized while
//! point-of-sale data streams in, and runs the update through the real
//! threaded executor with the Hybrid scheduler.
//!
//! Run: `cargo run --example retail_analytics`

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::sched::{Hybrid, LevelBased};

const RULES: &str = "
    % --- product catalog (base tables) ---
    product(widget, gadgets). product(sprocket, gadgets).
    product(tea, grocery). product(coffee, grocery).
    price(widget, 10). price(sprocket, 25). price(tea, 4). price(coffee, 7).

    % --- point-of-sale events (base table, streamed) ---
    sale(s1, widget). sale(s2, tea). sale(s3, widget).

    % --- derived analytics ---
    sold(P)          :- sale(T, P).
    category_hit(C)  :- sold(P), product(P, C).
    premium_sale(P)  :- sold(P), price(P, 25).
    stale_product(P) :- product(P, C), !sold(P).
    restock(C)       :- category_hit(C), product(P, C), stale_product(P).

    % --- aggregates (stratified, incrementally maintained) ---
    volume(C, count(T))    :- sale(T, P), product(P, C).
    revenue(C, sum(V))     :- sale(T, P), product(P, C), price(P, V).
    top_price(C, max(V))   :- sold(P), product(P, C), price(P, V).
";

fn main() {
    let mut engine = IncrementalEngine::new(RULES).expect("valid rule base");
    println!("initial materialization:");
    report(&engine);

    let dag = engine.dag().clone();
    println!(
        "\npredicate task graph: {} tasks, {} dependencies, {} levels",
        dag.node_count(),
        dag.edge_count(),
        dag.num_levels()
    );

    // Afternoon batch: two sales and a price change... sales only — price
    // is a separate base table we leave alone here.
    println!("\n-- batch 1: sprocket and coffee sell --");
    let mut sched = Hybrid::new(dag.clone());
    let rep = engine
        .update(
            &mut sched,
            &[
                FactEdit::add("sale", &["s4", "sprocket"]),
                FactEdit::add("sale", &["s5", "coffee"]),
            ],
        )
        .expect("update");
    println!(
        "re-ran {} predicate tasks ({} edges fired); scheduling cost: {} ops",
        rep.tasks_executed,
        rep.edges_fired,
        rep.sched_cost.total_ops()
    );
    report(&engine);
    assert!(engine.has("premium_sale", &["sprocket"]));
    assert!(!engine.has("stale_product", &["sprocket"]));

    // A return voids the only widget-free... remove both widget sales:
    // widget goes stale, its category needs restocking review.
    println!("\n-- batch 2: widget sales voided --");
    let mut sched = LevelBased::new(dag.clone());
    let rep = engine
        .update(
            &mut sched,
            &[
                FactEdit::remove("sale", &["s1", "widget"]),
                FactEdit::remove("sale", &["s3", "widget"]),
            ],
        )
        .expect("update");
    println!("re-ran {} predicate tasks", rep.tasks_executed);
    report(&engine);
    assert!(engine.has("stale_product", &["widget"]));
    assert!(
        engine.has("restock", &["gadgets"]),
        "gadgets still sell (sprocket) but widget is stale -> restock review"
    );
}

fn report(engine: &IncrementalEngine) {
    for pred in ["sold", "category_hit", "premium_sale", "stale_product", "restock"] {
        println!("  {:<14} {} facts", pred, engine.count(pred));
    }
    for pred in ["volume", "revenue", "top_price"] {
        let rows = engine.query(&format!("{pred}(?, ?)")).unwrap_or_default();
        println!("  {:<14} {}", pred, rows.join("  "));
    }
}
