//! Real threads, not simulation: run an incremental workload through the
//! `incr-runtime` executor with the Hybrid scheduler, with task bodies
//! that actually compute (hashing loops standing in for predicate
//! re-evaluation) and report their own fired edges.
//!
//! Run: `cargo run --release --example threaded_hybrid`

use datalog_sched::dag::{DagBuilder, NodeId};
use datalog_sched::runtime::{ExecError, Executor, TaskFn};
use datalog_sched::sched::{Hybrid, LevelBased, LogicBlox, Scheduler};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    // 64 independent pipelines of depth 4 — a parallel-friendly update.
    let pipes = 64u32;
    let depth = 4u32;
    let mut b = DagBuilder::new((pipes * depth) as usize);
    let node = |p: u32, d: u32| NodeId(p * depth + d);
    for p in 0..pipes {
        for d in 1..depth {
            b.add_edge(node(p, d - 1), node(p, d));
        }
    }
    let dag = Arc::new(b.build().expect("acyclic"));
    let initial: Vec<NodeId> = (0..pipes).map(|p| node(p, 0)).collect();

    // Task body: burn a few microseconds of real CPU, then fire all
    // children (full recomputation of each pipeline).
    let task: TaskFn = {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| {
            let mut acc = v.0 as u64;
            for i in 0..20_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            fired.extend_from_slice(dag.children(v));
        })
    };

    println!(
        "running {} tasks on real threads ({} pipelines x depth {})\n",
        pipes * depth,
        pipes,
        depth
    );
    for workers in [1usize, 4, 8] {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(LevelBased::new(dag.clone())),
            Box::new(LogicBlox::new(dag.clone())),
            Box::new(Hybrid::new(dag.clone())),
        ];
        for mut s in schedulers {
            let t0 = Instant::now();
            // A failed run prints a one-line diagnostic and exits nonzero:
            // Stall means a broken scheduler, NonEdge a broken task body,
            // TaskPanicked an isolated worker panic — all typed, no hang.
            let report = match Executor::new(workers).run(s.as_mut(), &dag, &initial, task.clone())
            {
                Ok(report) => report,
                Err(
                    e @ (ExecError::Stall { .. }
                    | ExecError::NonEdge { .. }
                    | ExecError::TaskPanicked { .. }),
                ) => {
                    eprintln!("threaded_hybrid: {} failed: {e}", s.name());
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("threaded_hybrid: {} failed: {e}", s.name());
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "  {:>2} workers  {:<12} {:>8.2} ms  ({} tasks executed)",
                workers,
                s.name(),
                t0.elapsed().as_secs_f64() * 1e3,
                report.executed
            );
            assert_eq!(report.executed, (pipes * depth) as usize);
        }
        println!();
    }
    println!("every scheduler executes the same task set; wall time scales with workers.");
    ExitCode::SUCCESS
}
