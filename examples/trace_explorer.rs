//! Explore the regenerated trace corpus: generate a preset, print its
//! Table-I statistics, serialize it to the JSON trace format, round-trip
//! it, simulate it, and optionally export a DOT excerpt.
//!
//! Run: `cargo run --release --example trace_explorer -- 5 [out.dot]`

use datalog_sched::dag::dot::{to_dot, DotOptions};
use datalog_sched::sched::SchedulerKind;
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset, trace_stats, JobTrace};

fn main() {
    let id: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let dot_path = std::env::args().nth(2);

    let spec = preset(id);
    println!("generating trace {} (seed {:#x})...", spec.name, spec.seed);
    let (inst, rep) = generate(&spec);
    let st = trace_stats(&inst);
    println!(
        "  nodes {} | edges {} | initial {} | active {} (target {}, threshold {:.4}) | levels {}",
        st.nodes, st.edges, st.initial_tasks, st.active_jobs, spec.active, rep.fire_threshold, st.levels
    );
    println!(
        "  descendants of the update: {} total, {} activated ({:.1}%)",
        st.total_descendants,
        st.activated_descendants,
        st.activated_descendants as f64 / st.total_descendants.max(1) as f64 * 100.0
    );

    // Round-trip through the trace file format.
    let json = JobTrace::from_instance(spec.name, &inst).to_json();
    println!("  serialized trace: {:.1} MiB", json.len() as f64 / (1 << 20) as f64);
    let back = JobTrace::from_json(&json)
        .expect("parse")
        .to_instance()
        .expect("rebuild");
    assert_eq!(back.active_count(), st.active_jobs);
    println!("  round-trip OK");

    // Simulate the three Table-III schedulers.
    let cfg = EventSimConfig {
        processors: 8,
        ..Default::default()
    };
    println!("\nsimulation (8 processors):");
    for kind in [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::HybridBackground(1),
    ] {
        let mut s = kind.build(inst.dag.clone());
        let r = simulate_event(s.as_mut(), &inst, &cfg);
        println!(
            "  {:<14} makespan {:>12.4} s  overhead {:>12.6} s  ({} tasks)",
            kind.label(),
            r.makespan,
            r.sched_overhead,
            r.executed
        );
    }

    if let Some(path) = dot_path {
        let active = inst.active_closure();
        let dot = to_dot(
            &inst.dag,
            &DotOptions {
                name: format!("trace{id}"),
                rank_by_level: true,
                max_nodes: Some(800),
            },
            |v| active.contains(v).then_some("tomato"),
        );
        std::fs::write(&path, dot).expect("write dot");
        println!("\nwrote DOT excerpt to {path}");
    }
}
