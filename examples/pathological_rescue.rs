//! The hybrid rescue, §V–§VI in miniature: on the LogicBlox scheduler's
//! pathological instances the hybrid's LevelBased side keeps processors
//! saturated, and on LevelBased's pathological instance (Figure 2) the
//! hybrid's LogicBlox side finds cross-level work behind the barrier.
//! One scheduler's worst case is the other's easy case — the hybrid
//! inherits the best of both.
//!
//! Run: `cargo run --release --example pathological_rescue`

use datalog_sched::sched::SchedulerKind;
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::adversarial::{figure2, hundred_x};

fn main() {
    let cfg = EventSimConfig {
        processors: 8,
        ..Default::default()
    };

    println!("instance A: 30,000 simultaneous point updates (bad for LogicBlox)\n");
    let a = hundred_x(30_000);
    for kind in [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::Hybrid,
    ] {
        let mut s = kind.build(a.dag.clone());
        let r = simulate_event(s.as_mut(), &a, &cfg);
        println!(
            "  {:<12} makespan {:>10.4} s   overhead {:>10.4} s",
            kind.label(),
            r.makespan,
            r.sched_overhead
        );
    }

    println!("\ninstance B: the Figure 2 tight example, L = 64 (bad for LevelBased)\n");
    let b = figure2(64);
    let cfg_b = EventSimConfig {
        processors: 64, // Theorem 9 assumes M <= P
        ..Default::default()
    };
    for kind in [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::Hybrid,
    ] {
        let mut s = kind.build(b.dag.clone());
        let r = simulate_event(s.as_mut(), &b, &cfg_b);
        println!(
            "  {:<12} makespan {:>10.1} s   overhead {:>10.6} s",
            kind.label(),
            r.makespan,
            r.sched_overhead
        );
    }

    println!("\nthe hybrid is within a small factor of the better scheduler on BOTH instances —");
    println!("\"adding our new scheduler only results in performance improvements\" (§II-B).");
}
