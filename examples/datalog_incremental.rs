//! End-to-end Datalog: a reachability program kept materialized while the
//! edge relation changes, with the scheduler deciding which predicate
//! tasks to re-run — the paper's full pipeline on real data.
//!
//! Run: `cargo run --example datalog_incremental`

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::sched::Hybrid;

const PROGRAM: &str = "
    % transitive closure over a graph
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).

    % nodes, reachability from a distinguished start, and dead nodes
    node(X) :- edge(X, Y).
    node(Y) :- edge(X, Y).
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    dead(X)  :- node(X), !reach(X).

    start(a).
    edge(a, b). edge(b, c). edge(c, d).
    edge(x, y). edge(y, z).
";

fn main() {
    let mut engine = IncrementalEngine::new(PROGRAM).expect("valid program");
    println!(
        "materialized: {} path facts, {} reachable, {} dead",
        engine.count("path"),
        engine.count("reach"),
        engine.count("dead")
    );
    assert!(engine.has("dead", &["x"]));

    // The task graph the scheduler sees:
    let dag = engine.dag().clone();
    println!(
        "task DAG: {} predicate tasks, {} dependencies, {} levels\n",
        dag.node_count(),
        dag.edge_count(),
        dag.num_levels()
    );

    // Update 1: connect the dead component. `dead` must shrink.
    let mut sched = Hybrid::new(dag.clone());
    let rep = engine
        .update(&mut sched, &[FactEdit::add("edge", &["d", "x"])])
        .expect("update");
    println!(
        "+edge(d, x): {} tasks re-ran, {} edges fired, changes: {:?}",
        rep.tasks_executed, rep.edges_fired, rep.pred_changes
    );
    assert!(!engine.has("dead", &["x"]), "x is now reachable");
    assert!(engine.has("path", &["a", "z"]));

    // Update 2: delete an edge in the middle. DRed removes exactly the
    // derivations that lost support.
    let mut sched = Hybrid::new(dag.clone());
    let rep = engine
        .update(&mut sched, &[FactEdit::remove("edge", &["b", "c"])])
        .expect("update");
    println!(
        "-edge(b, c): {} tasks re-ran, changes: {:?}",
        rep.tasks_executed, rep.pred_changes
    );
    assert!(!engine.has("path", &["a", "z"]));
    assert!(engine.has("path", &["a", "b"]));
    assert!(engine.has("dead", &["c"]), "c lost reachability");

    // Update 3: a no-op at the derived level — adding an edge that
    // changes `edge` but no derived output downstream of `path`'s first
    // hop: the cascade stops as soon as outputs stop changing.
    let mut sched = Hybrid::new(dag.clone());
    let rep = engine
        .update(&mut sched, &[FactEdit::add("edge", &["a", "b"])])
        .expect("update");
    println!(
        "+edge(a, b) (already present): {} tasks re-ran (nothing was dirty)",
        rep.tasks_executed
    );
    assert_eq!(rep.tasks_executed, 0);

    println!("\nfinal: {} path facts, dead = {:?}",
        engine.count("path"),
        ["c", "d", "x", "y", "z"]
            .iter()
            .filter(|n| engine.has("dead", &[n]))
            .collect::<Vec<_>>()
    );
}
