//! Quickstart: schedule an incremental update over a hand-built DAG.
//!
//! A five-node materialization: two base tables feed two views that join
//! into a report. One base table changes; one view's output turns out not
//! to change, so the cascade stops early — the core behaviour the paper's
//! schedulers exploit.
//!
//! Run: `cargo run --example quickstart`

use datalog_sched::dag::{DagBuilder, NodeId};
use datalog_sched::sched::{LevelBased, Scheduler};
use std::sync::Arc;

fn main() {
    // G:   sales ─┐             ┌─> weekly_report
    //             ├─> by_region ┤
    //   returns ──┘             └─> alerts
    let mut b = DagBuilder::new(5);
    let sales = NodeId(0);
    let returns = NodeId(1);
    let by_region = NodeId(2);
    let weekly_report = NodeId(3);
    let alerts = NodeId(4);
    b.add_edge(sales, by_region);
    b.add_edge(returns, by_region);
    b.add_edge(by_region, weekly_report);
    b.add_edge(by_region, alerts);
    let dag = Arc::new(b.build().expect("acyclic"));
    let names = ["sales", "returns", "by_region", "weekly_report", "alerts"];

    // New sales data arrived: the `sales` source is dirty.
    let mut sched = LevelBased::new(dag.clone());
    sched.start(&[sales]);

    println!("incremental update: sales table changed\n");
    // Environment loop: pop safe tasks, "execute" them, report which
    // outputs changed. Here: by_region's aggregate changes (fires the
    // report) but the alert threshold is not crossed (no fire).
    while !sched.is_quiescent() {
        let task = sched.pop_ready().expect("no stall");
        let fired: Vec<NodeId> = match task {
            t if t == sales => vec![by_region],
            t if t == by_region => vec![weekly_report], // alerts unchanged!
            _ => vec![],
        };
        println!(
            "  run {:<14} -> changed outputs toward: {:?}",
            names[task.index()],
            fired.iter().map(|v| names[v.index()]).collect::<Vec<_>>()
        );
        sched.on_completed(task, &fired);
    }

    println!(
        "\ndone: executed 3 of 5 nodes — `alerts` and `returns` were never touched."
    );
    println!(
        "scheduling cost: {} bucket operations for 3 active tasks across {} levels",
        sched.cost().bucket_ops,
        dag.num_levels()
    );
}
