//! Interactive Datalog with incremental maintenance — a miniature of the
//! LogicBlox workflow the paper describes: load rules, query the
//! materialization, stream base-table edits and even rule changes, and
//! watch the scheduler re-derive only what the data requires.
//!
//! Run: `cargo run --example datalog_repl` (then type `help`).
//! Also scriptable: `echo '+edge(c, d)\n?path(a, ?)' | cargo run --example datalog_repl`

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::sched::{Hybrid, Scheduler};
use std::io::{BufRead, Write};

const BOOT: &str = "
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    edge(a, b). edge(b, c).
";

fn main() {
    let mut engine = IncrementalEngine::new(BOOT).expect("boot program parses");
    println!("incremental Datalog REPL — type `help` for commands");
    println!("booted with:\n{}", BOOT.trim());

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    print!("> ");
    let _ = out.flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        match run_command(&mut engine, line) {
            Ok(Some(reply)) => println!("{reply}"),
            Ok(None) => break,
            Err(e) => println!("error: {e}"),
        }
        print!("> ");
        let _ = out.flush();
    }
    println!();
}

/// Execute one REPL command; `Ok(None)` means quit.
fn run_command(engine: &mut IncrementalEngine, line: &str) -> Result<Option<String>, String> {
    let mk = |dag| -> Box<dyn Scheduler> { Box::new(Hybrid::new(dag)) };
    let reply = match line {
        "" => String::new(),
        "help" => "\
commands:
  +pred(a, b)          insert a base fact
  -pred(a, b)          remove a base fact
  ?pred(a, ?)          query the materialization (`?`/uppercase = wildcard)
  rule: <clause>       add a rule incrementally
  unrule: <clause>     remove a rule incrementally
  dag                  show the predicate task graph
  quit                 exit"
            .to_string(),
        "quit" | "exit" => return Ok(None),
        "dag" => {
            let dag = engine.dag();
            format!(
                "{} tasks, {} dependencies, {} levels",
                dag.node_count(),
                dag.edge_count(),
                dag.num_levels()
            )
        }
        _ if line.starts_with('+') || line.starts_with('-') => {
            let adding = line.starts_with('+');
            let (pred, args) = parse_fact(&line[1..])?;
            let args_ref: Vec<&str> = args.iter().map(String::as_str).collect();
            let edit = if adding {
                FactEdit::add(&pred, &args_ref)
            } else {
                FactEdit::remove(&pred, &args_ref)
            };
            let mut sched = Hybrid::new(engine.dag().clone());
            let rep = engine.update(&mut sched, &[edit]).map_err(|e| e.to_string())?;
            format!(
                "ok: {} tasks re-ran, {} edges fired, changes: {:?}",
                rep.tasks_executed, rep.edges_fired, rep.pred_changes
            )
        }
        _ if line.starts_with('?') => {
            let rows = engine.query(&line[1..]).map_err(|e| e.to_string())?;
            if rows.is_empty() {
                "no matches".to_string()
            } else {
                format!("{} rows:\n  {}", rows.len(), rows.join("\n  "))
            }
        }
        _ if line.starts_with("rule:") => {
            let rep = engine
                .add_rule(line["rule:".len()..].trim(), mk)
                .map_err(|e| e.to_string())?;
            format!("rule added: {} tasks re-ran", rep.tasks_executed)
        }
        _ if line.starts_with("unrule:") => {
            let rep = engine
                .remove_rule(line["unrule:".len()..].trim(), mk)
                .map_err(|e| e.to_string())?;
            format!("rule removed: {} tasks re-ran", rep.tasks_executed)
        }
        other => return Err(format!("unknown command {other:?}; try `help`")),
    };
    Ok(Some(reply))
}

/// Parse `pred(a, b)` into name + args.
fn parse_fact(src: &str) -> Result<(String, Vec<String>), String> {
    let src = src.trim().trim_end_matches('.');
    let open = src.find('(').ok_or("expected pred(args)")?;
    if !src.ends_with(')') {
        return Err("missing ')'".into());
    }
    let pred = src[..open].trim().to_string();
    let args = src[open + 1..src.len() - 1]
        .split(',')
        .map(|a| a.trim().to_string())
        .collect::<Vec<_>>();
    if pred.is_empty() || args.iter().any(String::is_empty) {
        return Err("malformed fact".into());
    }
    Ok((pred, args))
}
