//! Cross-crate end-to-end tests: generated traces, the event simulator,
//! every scheduler, and the trace file format.

use datalog_sched::sched::{CostPrices, SchedulerKind};
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset, spec::CompClass, trace_stats, JobTrace, TraceSpec};

/// A fast mini-trace in the style of the presets.
fn mini_spec(seed: u64) -> TraceSpec {
    TraceSpec {
        name: "mini",
        id: 90,
        seed,
        nodes: 3_000,
        edges: 4_500,
        initial: 12,
        active: 260,
        levels: 40,
        classes: vec![CompClass {
            count: 12,
            depth: 12,
            width: 3,
            dirty: true,
        }],
        second_parent: 0.5,
        comp_scale_sigma: 0.0,
        duration: datalog_sched::traces::durations::DurationModel::new(0.5, 1.0),
        paper: Default::default(),
    }
}

const ALL: [SchedulerKind; 7] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(5),
    SchedulerKind::Lookahead(50),
    SchedulerKind::LogicBlox,
    SchedulerKind::LogicBloxFaithful,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
];

/// Every scheduler executes exactly the active closure, audited against
/// ground-truth reachability.
#[test]
fn all_schedulers_safe_and_complete_on_generated_traces() {
    for seed in [1u64, 2, 3] {
        let (inst, _) = generate(&mini_spec(seed));
        let expected = inst.active_count();
        for kind in ALL {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_event(
                s.as_mut(),
                &inst,
                &EventSimConfig {
                    processors: 8,
                    prices: CostPrices::free(),
                    audit: true,
                    space_budget: None,
                },
            );
            assert_eq!(r.executed, expected, "{kind:?} seed {seed}");
        }
    }
}

/// Makespans (without overhead) are consistent: every scheduler is greedy,
/// so all makespans are within a factor 2 of exact greedy (standard greedy
/// bound), and LBL improves monotonically toward exact as k grows.
#[test]
fn makespan_sanity_orderings() {
    let (inst, _) = generate(&mini_spec(7));
    let cfg = EventSimConfig {
        processors: 8,
        prices: CostPrices::free(),
        audit: false,
        space_budget: None,
    };
    let run = |kind: SchedulerKind| {
        let mut s = kind.build(inst.dag.clone());
        simulate_event(s.as_mut(), &inst, &cfg).makespan
    };
    let exact = run(SchedulerKind::ExactGreedy);
    let lb = run(SchedulerKind::LevelBased);
    let lbl5 = run(SchedulerKind::Lookahead(5));
    let lbl50 = run(SchedulerKind::Lookahead(50));
    let lbx = run(SchedulerKind::LogicBlox);
    assert!(lb >= exact * 0.99, "LB cannot beat exact greedy by much");
    assert!(lbl5 <= lb * 1.01, "look-ahead should not hurt");
    assert!(lbl50 <= lbl5 * 1.05, "deeper look-ahead at least as good");
    // Greedy 2-approximation territory: everything within 2x + eps of exact.
    for (name, m) in [("LB", lb), ("LBL5", lbl5), ("LBX", lbx)] {
        assert!(
            m <= exact * 2.2 + 1.0,
            "{name} makespan {m} too far above exact {exact}"
        );
    }
}

/// Scheduling overhead ordering on a shallow-wide instance (the Table III
/// headline), at default prices.
#[test]
fn overhead_ordering_on_shallow_wide() {
    let spec = TraceSpec {
        name: "wide",
        id: 91,
        seed: 5,
        nodes: 31_000,
        edges: 24_000,
        initial: 10_000,
        active: 11_000,
        levels: 4,
        classes: vec![CompClass {
            count: 10_000,
            depth: 3,
            width: 1,
            dirty: true,
        }],
        second_parent: 0.2,
        comp_scale_sigma: 0.0,
        duration: datalog_sched::traces::durations::DurationModel::new(30e-6, 0.8),
        paper: Default::default(),
    };
    let (inst, _) = generate(&spec);
    let cfg = EventSimConfig {
        processors: 8,
        ..Default::default()
    };
    let overhead = |kind: SchedulerKind| {
        let mut s = kind.build(inst.dag.clone());
        simulate_event(s.as_mut(), &inst, &cfg).sched_overhead
    };
    let o_lb = overhead(SchedulerKind::LevelBased);
    let o_hy = overhead(SchedulerKind::HybridBackground(1));
    let o_lbx = overhead(SchedulerKind::LogicBlox);
    assert!(
        o_lb < o_hy && o_hy < o_lbx,
        "expected LB ({o_lb}) < hybrid ({o_hy}) < LogicBlox ({o_lbx})"
    );
    assert!(
        o_hy < 0.75 * o_lbx,
        "hybrid must reduce the scan overhead substantially"
    );
}

/// Trace format round-trips a full preset.
#[test]
fn trace_format_roundtrip_preset5() {
    let (inst, _) = generate(&preset(5));
    let before = trace_stats(&inst);
    let t = JobTrace::from_instance("#5", &inst);
    let back = JobTrace::from_json(&t.to_json())
        .expect("json parses")
        .to_instance()
        .expect("instance rebuilds");
    let after = trace_stats(&back);
    assert_eq!(before, after);
}

/// All eleven presets generate with their Table I structural statistics
/// exact and the active count within 6%.
#[test]
fn all_presets_match_table1() {
    for spec in datalog_sched::traces::presets() {
        // Full-scale generation is fast (< 1 s each), but keep the big
        // shallow traces out of debug-mode CI time: structural exactness
        // for those is covered by the release-mode table1 binary.
        if spec.nodes > 100_000 {
            continue;
        }
        let (inst, rep) = generate(&spec);
        let st = trace_stats(&inst);
        assert_eq!(st.nodes as u32, spec.nodes, "{}", spec.name);
        assert_eq!(st.edges as u32, spec.edges, "{}", spec.name);
        assert_eq!(st.initial_tasks as u32, spec.initial, "{}", spec.name);
        assert_eq!(st.levels, spec.levels, "{}", spec.name);
        let dev = (rep.achieved_active as f64 - spec.active as f64).abs() / spec.active as f64;
        assert!(
            dev <= 0.06,
            "{}: active {} vs target {} ({:.1}%)",
            spec.name,
            rep.achieved_active,
            spec.active,
            dev * 100.0
        );
    }
}

/// The meta-scheduler bound (Theorem 10) on a generated trace.
#[test]
fn meta_bound_on_generated_trace() {
    use datalog_sched::sched::{LevelBased, LogicBlox};
    use datalog_sched::sim::{simulate_meta, MetaConfig};
    let (inst, _) = generate(&mini_spec(11));
    let base = EventSimConfig {
        processors: 8,
        prices: CostPrices::free(),
        audit: false,
        space_budget: None,
    };
    let ta = {
        let mut a = LogicBlox::new(inst.dag.clone());
        simulate_event(&mut a, &inst, &base).makespan
    };
    let tb = {
        let mut b = LevelBased::new(inst.dag.clone());
        simulate_event(&mut b, &inst, &base).makespan
    };
    let mut a = LogicBlox::new(inst.dag.clone());
    let mut b = LevelBased::new(inst.dag.clone());
    let r = simulate_meta(
        &mut a,
        &mut b,
        &inst,
        &MetaConfig {
            processors: 8,
            budget: usize::MAX / 4,
            base,
        },
    );
    assert!(r.makespan <= 2.0 * ta.min(tb) + 1e-9);
}
