//! Multi-shard chaos: deterministic fault injection against the sharded
//! Datalog engine's atomic cross-shard commit (ISSUE 9 acceptance).
//!
//! The sweep covers every scheduler × {2,3} shards × fault site
//! (panic / stall past the round deadline / delayed exchange under the
//! deadline / fail-k-then-succeed) × injection round {0,1}, and asserts
//! the full failure-model contract per scenario:
//!
//! * **atomic rollback** — a failed batch leaves every shard's queryable
//!   state and every shard's published epoch exactly at pre-batch;
//! * **typed surface** — the failure is `EngineError::ShardFailed` with
//!   the victim shard, the failing round, a classified cause, and a
//!   per-shard snapshot (never a hang, never a panic escaping `update`);
//! * **recovery** — a disarmed retry converges bit-identically to the
//!   fault-free sharded run *and* to the unsharded reference engine;
//! * **liveness** — stall scenarios finish within the watchdog deadline
//!   (plus slack), not the 30 s injected sleep.
//!
//! Fault sites are armed positionally through `FaultPlan::arm_sharded`
//! (`runtime/src/faults.rs`), so every scenario is reproducible from its
//! `(scheduler, shards, site, round)` coordinates alone.

use datalog_sched::datalog::engine::EngineError;
use datalog_sched::datalog::{
    FactEdit, IncrementalEngine, ShardCause, ShardFault, ShardFaultHook, ShardedEngine,
};
use datalog_sched::runtime::faults::{
    silence_injected_panics, ArmedShardPlan, Fault, FaultPlan, ShardAction,
};
use datalog_sched::sched::{Scheduler, SchedulerKind};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The five paper schedulers (same acceptance set as `tests/chaos.rs`).
const SCHEDS: [SchedulerKind; 5] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(4),
    SchedulerKind::LogicBlox,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
];

/// `rev` mirror-reads the derived `path`, so updates exchange deltas for
/// at least two rounds — round-1 injection lands after round 0 already
/// applied engine deltas and mirror feeds on every shard.
const SRC: &str = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   rev(Y, X) :- path(X, Y).\n\
                   edge(a, b). edge(b, c). edge(c, d).";

const PATTERNS: [&str; 3] = ["edge(?, ?)", "path(?, ?)", "rev(?, ?)"];

fn edits() -> Vec<FactEdit> {
    vec![
        FactEdit::add("edge", &["d", "e"]),
        FactEdit::remove("edge", &["b", "c"]),
    ]
}

fn mk_engine(kind: SchedulerKind, shards: usize) -> ShardedEngine {
    let mut e = ShardedEngine::new(SRC, shards, |d| kind.build(d)).expect("program builds");
    e.set_black_box(None);
    e
}

/// Full queryable state, canonically ordered — the bit-identity witness.
fn state(e: &ShardedEngine) -> Vec<String> {
    let mut rows = Vec::new();
    for pat in PATTERNS {
        let mut r = e.query(pat).expect(pat);
        r.sort();
        rows.push(format!("-- {pat}"));
        rows.append(&mut r);
    }
    rows
}

/// The unsharded reference: one engine, same scheduler kind, same batch.
fn unsharded_state(kind: SchedulerKind, batch: &[FactEdit]) -> Vec<String> {
    let mut e = IncrementalEngine::new(SRC).expect("program builds");
    if !batch.is_empty() {
        let mut s: Box<dyn Scheduler> = kind.build(e.dag().clone());
        e.update(s.as_mut(), batch).expect("reference update");
    }
    let mut rows = Vec::new();
    for pat in PATTERNS {
        let mut r = e.query(pat).expect(pat);
        r.sort();
        rows.push(format!("-- {pat}"));
        rows.append(&mut r);
    }
    rows
}

/// Adapt an armed positional fault plan to the engine's per-round hook.
fn hook(armed: &Arc<ArmedShardPlan>) -> ShardFaultHook {
    let armed = armed.clone();
    Arc::new(move |shard, round| match armed.action(shard, round) {
        ShardAction::None => None,
        ShardAction::Panic(m) => Some(ShardFault::Panic(m)),
        ShardAction::Delay(us) => Some(ShardFault::Delay(Duration::from_micros(us))),
        ShardAction::Fail(m) => Some(ShardFault::Fail(m)),
    })
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Site {
    /// Panic at round entry of the victim shard.
    Panic,
    /// 30 s sleep — far past the 100 ms round deadline; only the barrier
    /// watchdog plus cancellation keep the scenario fast.
    Stall,
    /// 2 ms sleep — jitters the exchange barrier without breaching the
    /// deadline; the batch must still commit.
    DelayedExchange,
    /// Typed error on the shard's first `round + 1` interrogations, then
    /// success — exercises repeated rollback without explicit disarm.
    FailThenSucceed,
}

const SITES: [Site; 4] = [Site::Panic, Site::Stall, Site::DelayedExchange, Site::FailThenSucceed];

#[test]
fn chaos_sweep_aborts_atomically_and_recovers_bit_identically() {
    silence_injected_panics();
    for kind in SCHEDS {
        let want = unsharded_state(kind, &edits());
        for shards in [2usize, 3] {
            // Fault-free sharded run: the second recovery witness.
            let mut ff = mk_engine(kind, shards);
            ff.update(&edits()).expect("fault-free batch");
            let want_sharded = state(&ff);
            assert_eq!(
                want_sharded, want,
                "{kind:?} x {shards}: sharded fault-free must match unsharded"
            );

            for round in [0usize, 1] {
                for site in SITES {
                    run_scenario(kind, shards, site, round, &want);
                }
            }
        }
    }
}

fn run_scenario(kind: SchedulerKind, shards: usize, site: Site, round: usize, want: &[String]) {
    let label = format!("{kind:?} x {shards} shards, {site:?} at round {round}");
    let victim = (round + 1) % shards;
    let mut e = mk_engine(kind, shards);
    let pre = state(&e);
    let epoch = e.epoch();

    let plan = match site {
        Site::Panic => FaultPlan::new(9).with(Fault::ShardPanic { shard: victim, round }),
        Site::Stall => {
            e.set_round_deadline(Duration::from_millis(100));
            FaultPlan::new(9).with(Fault::ShardDelay { shard: victim, round, micros: 30_000_000 })
        }
        Site::DelayedExchange => {
            FaultPlan::new(9).with(Fault::ShardDelay { shard: victim, round, micros: 2_000 })
        }
        Site::FailThenSucceed => {
            FaultPlan::new(9).with(Fault::ShardFailK { shard: victim, k: round as u32 + 1 })
        }
    };
    let armed = plan.arm_sharded();
    e.set_fault_hook(Some(hook(&armed)));

    let t0 = Instant::now();
    let first = e.update(&edits());
    assert!(
        t0.elapsed() < Duration::from_secs(20),
        "{label}: no scenario may hang (took {:?})",
        t0.elapsed()
    );

    if site == Site::DelayedExchange {
        // Under-deadline jitter is not a failure: the batch commits.
        first.unwrap_or_else(|e| panic!("{label}: jitter must commit, got {e}"));
        assert_eq!(state(&e), want, "{label}: jittered commit state");
        assert_eq!(e.epoch(), epoch + 1, "{label}: one epoch per batch");
        return;
    }

    // Typed failure naming the victim, the round, and a classified cause,
    // with a full per-shard snapshot.
    let err = first.expect_err(&label);
    match &err {
        EngineError::ShardFailed { shard, round: r, cause, snapshot } => {
            assert_eq!(*shard, victim, "{label}: victim shard");
            assert_eq!(snapshot.len(), shards, "{label}: snapshot covers all shards");
            match site {
                Site::Panic => {
                    assert_eq!(*r, round, "{label}: failing round");
                    assert!(matches!(cause, ShardCause::Panicked(_)), "{label}: {cause}");
                }
                Site::Stall => {
                    assert_eq!(*r, round, "{label}: failing round");
                    assert!(matches!(cause, ShardCause::Barrier { .. }), "{label}: {cause}");
                }
                Site::FailThenSucceed => {
                    assert!(matches!(cause, ShardCause::Engine(_)), "{label}: {cause}");
                }
                Site::DelayedExchange => unreachable!(),
            }
        }
        other => panic!("{label}: expected ShardFailed, got {other}"),
    }

    // Atomic rollback: queryable state and every shard's published epoch
    // are exactly pre-batch.
    assert_eq!(state(&e), pre, "{label}: rollback to pre-batch state");
    for s in 0..shards {
        assert_eq!(e.shard(s).epoch(), epoch, "{label}: shard {s} published no epoch");
    }

    // Recovery: retry until the fault is spent (FailThenSucceed clears
    // itself after k failures; panic fires once; the stall needs the
    // explicit disarm a real operator would perform).
    let mut attempts = 0;
    loop {
        attempts += 1;
        assert!(attempts <= 4, "{label}: retry did not converge");
        if site == Site::Stall {
            armed.disarm();
        }
        match e.update(&edits()) {
            Ok(_) => break,
            Err(EngineError::ShardFailed { .. }) => {
                assert_eq!(state(&e), pre, "{label}: repeated rollback is idempotent");
            }
            Err(other) => panic!("{label}: unexpected retry error {other}"),
        }
    }
    assert_eq!(state(&e), want, "{label}: recovered state is bit-identical");
    assert_eq!(e.epoch(), epoch + 1, "{label}: exactly one epoch for the whole saga");
}

/// Satellite: an aborted batch leaves flight-recorder black boxes behind
/// — one dump carrying every shard's ring plus the multi-shard snapshot
/// as its context record.
#[test]
fn abort_dumps_a_multi_shard_black_box() {
    use incr_obs::flight;
    flight::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("shard-chaos-blackbox-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut e = mk_engine(SchedulerKind::Hybrid, 2);
    e.set_black_box(Some(dir.clone()));
    e.set_fault_hook(Some(Arc::new(|s, r| {
        (s == 1 && r == 1).then(|| ShardFault::Fail("chaos: dump me".into()))
    })));
    e.update(&edits()).expect_err("injected failure");

    let path = std::fs::read_dir(&dir)
        .expect("black-box dir created")
        .map(|f| f.unwrap().path())
        .find(|p| p.file_name().unwrap().to_string_lossy().contains("shard-failed"))
        .expect("a shard-failed dump exists");
    let text = std::fs::read_to_string(&path).unwrap();
    incr_obs::export::validate_chrome_trace(&text)
        .unwrap_or_else(|e| panic!("dump invalid: {e}"));
    assert!(text.contains("shard.abort"), "abort instant recorded");
    assert!(text.contains("flight.context"), "context record present");
    assert!(text.contains("chaos: dump me"), "cause rides in the context");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: retry-after-shard-failure. For a random edit batch, a
    /// random scheduler, and a random victim, a `ShardFailed` update
    /// retried with the fault spent succeeds and matches the unsharded
    /// reference — the cross-shard rollback is idempotent — at both 2
    /// and 3 shards.
    #[test]
    fn retry_after_shard_failure_matches_unsharded(
        adds in proptest::collection::vec((0usize..5, 0usize..5), 1..4),
        rm in 0usize..3,
        sched_i in 0usize..SCHEDS.len(),
        victim_pick in 0usize..3,
    ) {
        let kind = SCHEDS[sched_i];
        let names = ["a", "b", "c", "d", "e"];
        let chain = [("a", "b"), ("b", "c"), ("c", "d")];
        let mut batch: Vec<FactEdit> = adds
            .iter()
            .map(|&(x, y)| FactEdit::add("edge", &[names[x], names[y]]))
            .collect();
        let (rx, ry) = chain[rm];
        batch.push(FactEdit::remove("edge", &[rx, ry]));
        let want = unsharded_state(kind, &batch);

        for shards in [2usize, 3] {
            let mut e = mk_engine(kind, shards);
            let pre = state(&e);
            let epoch = e.epoch();
            let armed = FaultPlan::new(11)
                .with(Fault::ShardFailK { shard: victim_pick % shards, k: 1 })
                .arm_sharded();
            e.set_fault_hook(Some(hook(&armed)));

            let err = e.update(&batch).expect_err("armed first attempt fails");
            prop_assert!(
                matches!(err, EngineError::ShardFailed { .. }),
                "typed failure, got {err}"
            );
            prop_assert_eq!(state(&e), pre.clone(), "{} x {}: rollback", sched_i, shards);
            prop_assert_eq!(e.epoch(), epoch, "no epoch published");

            // The fault is spent (k = 1): the retry needs no disarm.
            e.update(&batch).expect("retry succeeds");
            prop_assert_eq!(state(&e), want.clone(), "{} x {}: retry", sched_i, shards);
            prop_assert_eq!(e.epoch(), epoch + 1, "one epoch for the saga");
        }
    }
}
