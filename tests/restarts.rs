//! Restart regression tests: `start()` must be reusable indefinitely.
//!
//! The generation-stamped state tables make restarts O(|active|) instead
//! of O(V); these tests pin down that the *observable behavior* of every
//! scheduler is bit-identical across a thousand consecutive `start()`
//! calls on one object — decisions, order, charged costs — and that the
//! claimed state size stays put instead of accumulating per restart.

use datalog_sched::dag::{random, NodeId};
use datalog_sched::sched::{CostMeter, Instance, Scheduler, SchedulerKind};
use std::sync::Arc;

const ALL_KINDS: [SchedulerKind; 7] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(4),
    SchedulerKind::LogicBlox,
    SchedulerKind::LogicBloxFaithful,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
    SchedulerKind::ExactGreedy,
];

/// A mid-size instance with partial firing so restarts exercise both the
/// touched and untouched regions of every per-level side table.
fn instance(seed: u64) -> Instance {
    let dag = Arc::new(random::layered(random::LayeredParams {
        layers: 8,
        width: 9,
        max_in: 3,
        back_span: 2,
        seed,
    }));
    let mut inst = Instance::unit(dag.clone(), dag.sources().take(3).collect());
    for v in dag.nodes() {
        inst.fired[v.index()] = dag
            .children(v)
            .iter()
            .copied()
            .filter(|c| !(c.0 ^ seed as u32).is_multiple_of(3))
            .collect();
    }
    inst
}

/// Serial drive to quiescence; returns the executed order.
fn drive(s: &mut dyn Scheduler, inst: &Instance) -> Vec<NodeId> {
    s.start(&inst.initial_active);
    let mut order = Vec::new();
    while let Some(t) = s.pop_ready() {
        order.push(t);
        s.on_completed(t, &inst.fired[t.index()]);
    }
    assert!(s.is_quiescent(), "{} stalled", s.name());
    order
}

/// 1000 consecutive updates through one scheduler object: every run must
/// repeat the first run's decisions and charges exactly.
#[test]
fn thousand_restarts_are_observably_identical() {
    let inst = instance(0xC0FFEE);
    for kind in ALL_KINDS {
        let mut s = kind.build(inst.dag.clone());
        let first = drive(s.as_mut(), &inst);
        let first_cost: CostMeter = s.cost();
        assert!(!first.is_empty(), "{kind:?}: empty baseline run");
        for i in 1..1000 {
            let run = drive(s.as_mut(), &inst);
            assert_eq!(run, first, "{kind:?}: decisions drifted at restart {i}");
            assert_eq!(s.cost(), first_cost, "{kind:?}: cost drifted at restart {i}");
        }
    }
}

/// Alternating between two different dirty sets must not leak state from
/// one update shape into the other (stale buckets, stale queued flags).
#[test]
fn alternating_updates_do_not_contaminate_each_other() {
    let a = instance(0xA11CE);
    let mut b = a.clone();
    b.initial_active = a.dag.sources().skip(3).take(3).collect();
    if b.initial_active.is_empty() {
        b.initial_active = vec![NodeId(0)];
    }
    for kind in ALL_KINDS {
        let mut s = kind.build(a.dag.clone());
        let first_a = drive(s.as_mut(), &a);
        let first_b = drive(s.as_mut(), &b);
        for i in 0..200 {
            assert_eq!(drive(s.as_mut(), &a), first_a, "{kind:?}: A drifted at cycle {i}");
            assert_eq!(drive(s.as_mut(), &b), first_b, "{kind:?}: B drifted at cycle {i}");
        }
    }
}

/// Restarting must not grow the scheduler's claimed run state: the
/// reported byte count after 1000 updates matches the first update's
/// (quiescent states claim the same space they started with).
#[test]
fn space_claim_is_stable_across_restarts() {
    let inst = instance(0xBEEF);
    for kind in ALL_KINDS {
        let mut s = kind.build(inst.dag.clone());
        drive(s.as_mut(), &inst);
        let baseline = s.space_bytes();
        for _ in 1..1000 {
            drive(s.as_mut(), &inst);
        }
        assert_eq!(
            s.space_bytes(),
            baseline,
            "{kind:?}: state accumulated across restarts"
        );
    }
}

/// An aborted threaded update (injected panic and cancellation, the two
/// fault-tolerance abort paths) leaves every scheduler restartable:
/// `start()` after the abort behaves exactly like a fresh update — the
/// generation-stamped state tables make the abandoned generation inert.
#[test]
fn aborted_updates_restart_identically() {
    use datalog_sched::runtime::executor::{
        CancelToken, ExecConfig, ExecError, Executor, TryTaskFn,
    };
    use datalog_sched::runtime::faults::silence_injected_panics;
    use datalog_sched::runtime::TaskOutcome;
    use std::sync::atomic::{AtomicU32, Ordering};

    silence_injected_panics();
    let inst = instance(0xAB0B7);
    let fired_sets = Arc::new(inst.fired.clone());
    for kind in ALL_KINDS {
        let mut s = kind.build(inst.dag.clone());
        let baseline = drive(s.as_mut(), &inst);

        // Abort path 1: a task panic partway through the update.
        let panicking: TryTaskFn = {
            let fired_sets = fired_sets.clone();
            let budget = AtomicU32::new(4);
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                if budget.fetch_sub(1, Ordering::SeqCst) == 1 {
                    panic!("fault-injected panic: restart regression");
                }
                fired.extend_from_slice(&fired_sets[v.index()]);
                TaskOutcome::Done
            })
        };
        let err = Executor::new(4)
            .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, panicking, None)
            .unwrap_err();
        assert!(
            matches!(err, ExecError::TaskPanicked { .. }),
            "{kind:?}: {err:?}"
        );
        assert_eq!(
            drive(s.as_mut(), &inst),
            baseline,
            "{kind:?}: decisions drifted after panic-aborted update"
        );

        // Abort path 2: cooperative cancellation mid-update.
        let token = CancelToken::new();
        let cancelling: TryTaskFn = {
            let fired_sets = fired_sets.clone();
            let token = token.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                token.cancel();
                fired.extend_from_slice(&fired_sets[v.index()]);
                TaskOutcome::Done
            })
        };
        let mut cfg = ExecConfig::new(4);
        cfg.cancel = Some(token);
        let err = Executor::with_config(cfg)
            .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, cancelling, None)
            .unwrap_err();
        assert!(matches!(err, ExecError::Cancelled { .. }), "{kind:?}: {err:?}");
        assert_eq!(
            drive(s.as_mut(), &inst),
            baseline,
            "{kind:?}: decisions drifted after cancelled update"
        );
    }
}

/// An empty update between real updates is a no-op: nothing executes and
/// the following real update is unaffected.
#[test]
fn empty_updates_between_real_ones_are_noops() {
    let inst = instance(0xD00D);
    for kind in ALL_KINDS {
        let mut s = kind.build(inst.dag.clone());
        let first = drive(s.as_mut(), &inst);
        for _ in 0..5 {
            s.start(&[]);
            assert!(s.is_quiescent(), "{kind:?}: empty update not quiescent");
            assert!(s.pop_ready().is_none(), "{kind:?}: empty update offered work");
            assert_eq!(drive(s.as_mut(), &inst), first, "{kind:?}: drift after empty update");
        }
    }
}
