//! End-to-end Datalog correctness: randomized edit sequences maintained
//! incrementally (through every scheduler) must always agree with full
//! recomputation from scratch.

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::sched::{Scheduler, SchedulerKind};
use proptest::prelude::*;

const RULES: &str = "
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    node(X) :- edge(X, Y).
    node(Y) :- edge(X, Y).
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    cut(X) :- node(X), !reach(X).
    start(n0).
";

const VERTS: usize = 6;

fn vname(i: usize) -> String {
    format!("n{i}")
}

/// Build engine with the rule base plus the given edge facts.
fn engine_with(edges: &[(usize, usize)]) -> IncrementalEngine {
    let mut src = String::from(RULES);
    for &(a, b) in edges {
        src.push_str(&format!("edge({}, {}).\n", vname(a), vname(b)));
    }
    IncrementalEngine::new(&src).expect("valid program")
}

/// Canonical state of all derived predicates.
fn snapshot(e: &IncrementalEngine) -> Vec<(String, usize)> {
    ["path", "node", "reach", "cut", "edge"]
        .iter()
        .map(|p| (p.to_string(), e.count(p)))
        .collect()
}

/// Detailed membership check between two engines.
fn assert_same_facts(incr: &IncrementalEngine, full: &IncrementalEngine) {
    for p in ["path", "reach", "cut"] {
        assert_eq!(incr.count(p), full.count(p), "size mismatch on {p}");
    }
    for a in 0..VERTS {
        for b in 0..VERTS {
            assert_eq!(
                incr.has("path", &[&vname(a), &vname(b)]),
                full.has("path", &[&vname(a), &vname(b)]),
                "path({a},{b})"
            );
        }
        assert_eq!(
            incr.has("cut", &[&vname(a)]),
            full.has("cut", &[&vname(a)]),
            "cut({a})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Apply a random sequence of edge insertions/deletions incrementally
    /// and compare with recomputation, for each scheduler kind.
    #[test]
    fn incremental_equals_recompute(
        initial_edges in proptest::collection::vec((0..VERTS, 0..VERTS), 0..8),
        edits in proptest::collection::vec((any::<bool>(), 0..VERTS, 0..VERTS), 1..10),
        sched_pick in 0usize..4,
    ) {
        let initial: Vec<(usize, usize)> = initial_edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .collect();
        let mut engine = engine_with(&initial);
        let kind = [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(4),
            SchedulerKind::LogicBlox,
            SchedulerKind::Hybrid,
        ][sched_pick];
        let mut sched: Box<dyn Scheduler> = kind.build(engine.dag().clone());

        // Mirror of the base table for ground-truth reconstruction.
        let mut edges: Vec<(usize, usize)> = initial.clone();
        edges.sort_unstable();
        edges.dedup();

        for (add, a, b) in edits {
            if a == b {
                continue; // self-loops are not in the model
            }
            let edit = if add {
                if !edges.contains(&(a, b)) {
                    edges.push((a, b));
                }
                FactEdit::add("edge", &[&vname(a), &vname(b)])
            } else {
                edges.retain(|&e| e != (a, b));
                FactEdit::remove("edge", &[&vname(a), &vname(b)])
            };
            engine.update(sched.as_mut(), &[edit]).expect("update applies");

            let full = engine_with(&edges);
            prop_assert_eq!(snapshot(&engine), snapshot(&full), "{:?}", kind);
            assert_same_facts(&engine, &full);
        }
    }
}

/// The activation cascade stops where outputs stop changing: updating a
/// redundant edge re-runs the path clique but not its consumers.
#[test]
fn cascade_stops_at_unchanged_output() {
    let src = format!("{RULES} edge(n0, n1). edge(n1, n2). edge(n0, n2). consumer(X) :- cut(X).");
    let mut engine = IncrementalEngine::new(&src).expect("valid");
    let mut sched = SchedulerKind::LevelBased.build(engine.dag().clone());
    // Removing the redundant shortcut edge(n0, n2) changes `edge` and
    // re-runs `path`, but path/reach/cut outputs are unchanged, so the
    // deeper cliques must not activate.
    let rep = engine
        .update(&mut *sched, &[FactEdit::remove("edge", &["n0", "n2"])])
        .expect("update");
    // edge base + path clique + node clique + reach clique run (they all
    // read `edge` directly); path/node/reach outputs... node changes?
    // node set unchanged (n0, n1, n2 all still endpoints). cut unchanged.
    // So `cut` (reads node+reach) and `consumer` must not run.
    let executed = rep.tasks_executed;
    assert!(
        executed <= 4,
        "cascade must stop at unchanged outputs (ran {executed} tasks)"
    );
    assert!(engine.has("path", &["n0", "n2"]), "still derivable via n1");
}

/// A bigger program: same-generation (classic non-linear recursion).
#[test]
fn same_generation_program() {
    let src = "
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        up(a, p1). up(b, p2).
        flat(p1, p2).
        down(p1, x). down(p2, y).
    ";
    let mut engine = IncrementalEngine::new(src).expect("valid");
    assert!(engine.has("sg", &["a", "y"]), "a and b are same-generation via parents");
    let mut sched = SchedulerKind::Hybrid.build(engine.dag().clone());
    engine
        .update(&mut *sched, &[FactEdit::remove("flat", &["p1", "p2"])])
        .expect("update");
    assert!(!engine.has("sg", &["a", "y"]));
    assert_eq!(engine.count("sg"), 0);
}

/// Deep stratified program exercising multi-level task graphs.
#[test]
fn deep_strata_pipeline() {
    let mut src = String::from("l0(X) :- base(X).\n");
    for i in 1..12 {
        src.push_str(&format!("l{i}(X) :- l{}(X).\n", i - 1));
    }
    src.push_str("base(seed).\n");
    let mut engine = IncrementalEngine::new(&src).expect("valid");
    assert!(engine.has("l11", &["seed"]));
    let dag = engine.dag().clone();
    assert_eq!(dag.num_levels(), 13, "base + 12 strata");
    let mut sched = SchedulerKind::LevelBased.build(dag);
    let rep = engine
        .update(&mut *sched, &[FactEdit::add("base", &["extra"])])
        .expect("update");
    assert_eq!(rep.tasks_executed, 13, "every stratum re-derives");
    assert!(engine.has("l11", &["extra"]));
}
