//! End-to-end observability: run instrumented components with tracing
//! enabled, export, and validate the Chrome trace — including a real
//! multi-threaded executor run whose events land in per-worker shards.
//!
//! Trace state is process-global, so every test here serializes on one
//! lock and drains the buffers before starting.

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::runtime::executor::{ExecConfig, ExecError, TaskOutcome, TryTaskFn};
use datalog_sched::runtime::faults::silence_injected_panics;
use datalog_sched::runtime::{analyze, flow_events, Executor, TaskFn};
use datalog_sched::sched::{Observed, SchedulerKind};
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset};
use incr_obs::export::{chrome_trace_json, chrome_trace_with, jsonl, validate_chrome_trace};
use incr_obs::flight::{self, FlightCode};
use incr_obs::{trace, Json};
use std::sync::{Arc, Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Categories present in a validated export.
fn run_and_validate(f: impl FnOnce()) -> (incr_obs::export::TraceStats, String) {
    trace::clear();
    trace::enable();
    f();
    trace::disable();
    let threads = trace::drain();
    let text = chrome_trace_json(&threads);
    let stats = validate_chrome_trace(&text).expect("emitted trace must validate");
    (stats, text)
}

#[test]
fn executor_run_produces_balanced_multithreaded_trace() {
    let _guard = serial();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let (stats, text) = run_and_validate(|| {
        let mut s = Observed::new(SchedulerKind::Hybrid.build(inst.dag.clone()));
        let fired = Arc::new(inst.fired.clone());
        let task: TaskFn = Arc::new(move |v, out: &mut Vec<_>| {
            out.extend_from_slice(&fired[v.index()]);
        });
        let report = Executor::new(4).run_or_panic(&mut s, &inst.dag, &inst.initial_active, task);
        assert_eq!(report.executed, inst.active_count());
    });
    assert!(stats.spans > 0, "executor run must record spans");
    assert!(
        stats.categories.iter().any(|c| c == "exec"),
        "worker/coordinator spans missing: {:?}",
        stats.categories
    );
    assert!(
        stats.categories.iter().any(|c| c == "sched"),
        "Observed scheduler spans missing: {:?}",
        stats.categories
    );
    // Several distinct real-time tracks: coordinator + ≥2 workers.
    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(1))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 3,
        "expected events from several threads, saw tracks {tids:?}"
    );
}

#[test]
fn simulated_run_exports_both_time_domains() {
    let _guard = serial();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let (stats, text) = run_and_validate(|| {
        let mut s = Observed::new(SchedulerKind::LevelBased.build(inst.dag.clone()));
        let r = simulate_event(&mut s, &inst, &EventSimConfig::default());
        assert!(r.makespan > 0.0);
    });
    assert!(stats.categories.iter().any(|c| c == "sim"));
    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let pid_of = |e: &Json| e.get("pid").and_then(Json::as_u64);
    assert!(
        events.iter().any(|e| pid_of(e) == Some(1)),
        "real-time events missing"
    );
    assert!(
        events.iter().any(|e| pid_of(e) == Some(2)),
        "simulated-time events missing"
    );
}

#[test]
fn datalog_update_emits_dred_phase_spans() {
    let _guard = serial();
    let program = "\
        path(X, Y) :- edge(X, Y).\n\
        path(X, Z) :- path(X, Y), edge(Y, Z).\n\
        edge(a, b). edge(b, c). edge(c, d).\n";
    let (stats, text) = run_and_validate(|| {
        let mut engine = IncrementalEngine::new(program).expect("valid program");
        let mut sched = SchedulerKind::Hybrid.build(engine.dag().clone());
        engine
            .update(
                &mut *sched,
                &[FactEdit::remove("edge", &["b", "c"]), FactEdit::add("edge", &["b", "d"])],
            )
            .expect("edit applies");
    });
    assert!(stats.categories.iter().any(|c| c == "datalog"));
    for phase in ["dred.overdelete", "dred.rederive", "dred.insert"] {
        assert!(
            text.contains(phase),
            "missing DRed phase span {phase} in exported trace"
        );
    }
    assert!(text.contains("eval "), "missing per-stratum eval span");
}

#[test]
fn jsonl_export_is_one_valid_object_per_line() {
    let _guard = serial();
    trace::clear();
    trace::enable();
    {
        let _s = trace::span("test", "outer");
        trace::instant("test", "tick", vec![("k", 1u64.into())]);
    }
    trace::disable();
    let threads = trace::drain();
    let text = jsonl(&threads);
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = Json::parse(line).expect("each JSONL line parses");
        assert!(v.get("name").is_some());
        assert!(v.get("ph").is_some());
    }
}

/// A flight ring that wrapped (more events than capacity) must still dump
/// to a structurally valid Chrome trace, with the loss accounted.
#[test]
fn flight_dump_validates_including_ring_wraparound() {
    let _guard = serial();
    flight::set_enabled(true);
    flight::clear();
    flight::set_thread_name("flight-wrap-e2e");
    for i in 0..(flight::RING_CAPACITY * 2 + 17) {
        flight::instant(FlightCode::PopBatch, i as u64);
    }
    let lanes = flight::snapshot();
    let lane = lanes
        .iter()
        .find(|l| l.name.as_deref() == Some("flight-wrap-e2e"))
        .expect("this thread's lane");
    assert!(lane.overwritten > 0, "ring must have wrapped");
    assert!(lane.events.len() <= flight::RING_CAPACITY);
    let text = flight::chrome_dump(&lanes, &[("scenario", "wraparound".into())]).to_json();
    let stats = validate_chrome_trace(&text).expect("wrapped dump must validate");
    assert!(stats.total_events > 0);
    assert!(text.contains("flight.context"), "context instant missing");
    assert!(text.contains("events_lost"), "wraparound loss not reported");
    flight::clear();
}

/// The executor's black box: a worker panic with tracing OFF must still
/// leave a validator-clean dump naming the error, stitched from the
/// always-on flight rings.
#[test]
fn executor_error_dumps_black_box_without_tracing() {
    let _guard = serial();
    silence_injected_panics();
    trace::clear();
    trace::disable();
    flight::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("dlsched-blackbox-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (inst, _) = generate(&preset(5));
    let fired = Arc::new(inst.fired.clone());
    let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let task: TryTaskFn = {
        let hits = hits.clone();
        Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
            if hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 40 {
                panic!("injected: flight-dump e2e");
            }
            out.extend_from_slice(&fired[v.index()]);
            TaskOutcome::Done
        })
    };
    let mut s = SchedulerKind::Hybrid.build(inst.dag.clone());
    let mut cfg = ExecConfig::new(4);
    cfg.black_box = Some(dir.clone());
    let err = Executor::with_config(cfg)
        .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, task, None)
        .unwrap_err();
    assert!(matches!(err, ExecError::TaskPanicked { .. }), "got {err:?}");

    let path = flight::last_dump().expect("error path must record a dump");
    assert!(path.starts_with(&dir), "dump {path:?} not under {dir:?}");
    assert!(
        path.file_name().unwrap().to_string_lossy().contains("panic"),
        "dump name should carry the error kind: {path:?}"
    );
    let text = std::fs::read_to_string(&path).expect("dump readable");
    validate_chrome_trace(&text).expect("black box must be a valid Chrome trace");
    assert!(text.contains("exec.error"), "error marker missing from dump");
    assert!(text.contains("flight.context"), "context missing from dump");
    assert!(text.contains("injected: flight-dump e2e"), "panic text missing");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `dlsched explain` pipeline: per-task tracing, attribution whose
/// components sum to the wall within 5%, a chain that follows real DAG
/// edges, and flow annotations that keep the trace valid.
#[test]
fn attribution_components_sum_and_chain_follows_edges() {
    let _guard = serial();
    let (inst, _) = generate(&preset(5));
    trace::clear();
    trace::enable();
    let mut s = Observed::new(SchedulerKind::Hybrid.build(inst.dag.clone()));
    let fired = Arc::new(inst.fired.clone());
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<_>| {
        out.extend_from_slice(&fired[v.index()]);
    });
    let mut cfg = ExecConfig::new(4);
    cfg.record_tasks = true;
    cfg.black_box = None;
    let report = Executor::with_config(cfg)
        .run(&mut s, &inst.dag, &inst.initial_active, task)
        .expect("run completes");
    trace::disable();
    let threads = trace::drain();

    let attrs = analyze(&inst.dag, &threads);
    assert_eq!(attrs.len(), 1, "one update span expected");
    let a = &attrs[0];
    assert_eq!(a.executed, report.executed, "every task span must be attributed");
    let wall = a.wall_us();
    assert!(wall > 0.0);
    assert!(
        (a.components_us() - wall).abs() <= 0.05 * wall,
        "components {:.1} us vs wall {wall:.1} us",
        a.components_us()
    );
    assert!((a.run_us + a.eval_us - a.wait_us).abs() <= 1e-6 * wall.max(1.0));
    assert!(!a.chain.is_empty(), "an executed update must yield a chain");
    for w in a.chain.windows(2) {
        assert!(
            inst.dag.parents(w[1].node).contains(&w[0].node),
            "chain hop {:?} -> {:?} is not a DAG edge",
            w[0].node,
            w[1].node
        );
    }
    let flows = flow_events(&attrs);
    let text = chrome_trace_with(&threads, flows).to_json();
    validate_chrome_trace(&text).expect("flow-annotated trace must validate");
}

#[test]
fn tracing_disabled_records_nothing_across_layers() {
    let _guard = serial();
    trace::clear();
    trace::disable();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let mut s = Observed::new(SchedulerKind::Hybrid.build(inst.dag.clone()));
    let r = simulate_event(&mut s, &inst, &EventSimConfig::default());
    assert!(r.makespan > 0.0);
    let total: usize = trace::drain().iter().map(|t| t.events.len()).sum();
    assert_eq!(total, 0, "disabled tracing must be a no-op");
}
