//! End-to-end observability: run instrumented components with tracing
//! enabled, export, and validate the Chrome trace — including a real
//! multi-threaded executor run whose events land in per-worker shards.
//!
//! Trace state is process-global, so every test here serializes on one
//! lock and drains the buffers before starting.

use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::runtime::{Executor, TaskFn};
use datalog_sched::sched::{Observed, SchedulerKind};
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset};
use incr_obs::export::{chrome_trace_json, jsonl, validate_chrome_trace};
use incr_obs::{trace, Json};
use std::sync::{Arc, Mutex, MutexGuard};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Categories present in a validated export.
fn run_and_validate(f: impl FnOnce()) -> (incr_obs::export::TraceStats, String) {
    trace::clear();
    trace::enable();
    f();
    trace::disable();
    let threads = trace::drain();
    let text = chrome_trace_json(&threads);
    let stats = validate_chrome_trace(&text).expect("emitted trace must validate");
    (stats, text)
}

#[test]
fn executor_run_produces_balanced_multithreaded_trace() {
    let _guard = serial();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let (stats, text) = run_and_validate(|| {
        let mut s = Observed::new(SchedulerKind::Hybrid.build(inst.dag.clone()));
        let fired = Arc::new(inst.fired.clone());
        let task: TaskFn = Arc::new(move |v, out: &mut Vec<_>| {
            out.extend_from_slice(&fired[v.index()]);
        });
        let report = Executor::new(4).run_or_panic(&mut s, &inst.dag, &inst.initial_active, task);
        assert_eq!(report.executed, inst.active_count());
    });
    assert!(stats.spans > 0, "executor run must record spans");
    assert!(
        stats.categories.iter().any(|c| c == "exec"),
        "worker/coordinator spans missing: {:?}",
        stats.categories
    );
    assert!(
        stats.categories.iter().any(|c| c == "sched"),
        "Observed scheduler spans missing: {:?}",
        stats.categories
    );
    // Several distinct real-time tracks: coordinator + ≥2 workers.
    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let mut tids: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(1))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(
        tids.len() >= 3,
        "expected events from several threads, saw tracks {tids:?}"
    );
}

#[test]
fn simulated_run_exports_both_time_domains() {
    let _guard = serial();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let (stats, text) = run_and_validate(|| {
        let mut s = Observed::new(SchedulerKind::LevelBased.build(inst.dag.clone()));
        let r = simulate_event(&mut s, &inst, &EventSimConfig::default());
        assert!(r.makespan > 0.0);
    });
    assert!(stats.categories.iter().any(|c| c == "sim"));
    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let pid_of = |e: &Json| e.get("pid").and_then(Json::as_u64);
    assert!(
        events.iter().any(|e| pid_of(e) == Some(1)),
        "real-time events missing"
    );
    assert!(
        events.iter().any(|e| pid_of(e) == Some(2)),
        "simulated-time events missing"
    );
}

#[test]
fn datalog_update_emits_dred_phase_spans() {
    let _guard = serial();
    let program = "\
        path(X, Y) :- edge(X, Y).\n\
        path(X, Z) :- path(X, Y), edge(Y, Z).\n\
        edge(a, b). edge(b, c). edge(c, d).\n";
    let (stats, text) = run_and_validate(|| {
        let mut engine = IncrementalEngine::new(program).expect("valid program");
        let mut sched = SchedulerKind::Hybrid.build(engine.dag().clone());
        engine
            .update(
                &mut *sched,
                &[FactEdit::remove("edge", &["b", "c"]), FactEdit::add("edge", &["b", "d"])],
            )
            .expect("edit applies");
    });
    assert!(stats.categories.iter().any(|c| c == "datalog"));
    for phase in ["dred.overdelete", "dred.rederive", "dred.insert"] {
        assert!(
            text.contains(phase),
            "missing DRed phase span {phase} in exported trace"
        );
    }
    assert!(text.contains("eval "), "missing per-stratum eval span");
}

#[test]
fn jsonl_export_is_one_valid_object_per_line() {
    let _guard = serial();
    trace::clear();
    trace::enable();
    {
        let _s = trace::span("test", "outer");
        trace::instant("test", "tick", vec![("k", 1u64.into())]);
    }
    trace::disable();
    let threads = trace::drain();
    let text = jsonl(&threads);
    assert!(!text.is_empty());
    for line in text.lines() {
        let v = Json::parse(line).expect("each JSONL line parses");
        assert!(v.get("name").is_some());
        assert!(v.get("ph").is_some());
    }
}

#[test]
fn tracing_disabled_records_nothing_across_layers() {
    let _guard = serial();
    trace::clear();
    trace::disable();
    let spec = preset(5);
    let (inst, _) = generate(&spec);
    let mut s = Observed::new(SchedulerKind::Hybrid.build(inst.dag.clone()));
    let r = simulate_event(&mut s, &inst, &EventSimConfig::default());
    assert!(r.makespan > 0.0);
    let total: usize = trace::drain().iter().map(|t| t.events.len()).sum();
    assert_eq!(total, 0, "disabled tracing must be a no-op");
}
