//! Breadth tests: secondary claims and stress paths not covered by the
//! per-crate suites — LBL's cost envelope, generator exactness on
//! arbitrary feasible specs, threaded execution at scale, and the Duo
//! combinator under the executor.

use datalog_sched::dag::{DagBuilder, NodeId};
use datalog_sched::runtime::{Executor, TaskFn};
use datalog_sched::sched::{
    CostPrices, Duo, LevelBased, LevelBasedLookahead, LogicBlox, Scheduler, SchedulerKind,
};
use datalog_sched::sim::{simulate_event, EventSimConfig};
use datalog_sched::traces::spec::CompClass;
use datalog_sched::traces::{generate, TraceSpec};
use proptest::prelude::*;
use std::sync::Arc;

/// LBL's scheduling work stays within its O(n²) envelope even when the
/// look-ahead fires on every pop (paper §VI-B: "the worst-case running
/// time of the LBL algorithm is O(n²)").
#[test]
fn lbl_cost_within_quadratic_envelope() {
    // Chain of n: every pop past the first stalls at the barrier with one
    // candidate in the next level — maximal look-ahead invocations.
    for n in [50u32, 100, 200] {
        let mut b = DagBuilder::new(n as usize);
        for i in 1..n {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBasedLookahead::new(dag, 8);
        s.start(&[NodeId(0)]);
        let mut done = 0;
        while let Some(t) = s.pop_ready() {
            let fired: Vec<NodeId> = if t.0 + 1 < n { vec![NodeId(t.0 + 1)] } else { vec![] };
            s.on_completed(t, &fired);
            done += 1;
        }
        assert_eq!(done, n);
        let c = s.cost();
        let bound = 4 * (n as u64) * (n as u64) + 100;
        assert!(
            c.bfs_steps + c.scan_steps <= bound,
            "n={n}: {} + {} exceeds O(n²) envelope {bound}",
            c.bfs_steps,
            c.scan_steps
        );
    }
}

/// LBL makespan sits between LevelBased and ExactGreedy on the barrier
/// stress instance, monotone in k.
#[test]
fn lbl_monotone_in_k_on_figure2() {
    let inst = datalog_sched::traces::adversarial::figure2(32);
    let cfg = EventSimConfig {
        processors: 32,
        prices: CostPrices::free(),
        audit: false,
        space_budget: None,
    };
    let run = |kind: SchedulerKind| {
        let mut s = kind.build(inst.dag.clone());
        simulate_event(s.as_mut(), &inst, &cfg).makespan
    };
    let lb = run(SchedulerKind::LevelBased);
    let mut prev = lb;
    for k in [1u32, 2, 4, 8, 16] {
        let m = run(SchedulerKind::Lookahead(k));
        assert!(
            m <= prev * 1.001,
            "LBL({k}) makespan {m} worse than shallower look-ahead {prev}"
        );
        prev = m;
    }
    let exact = run(SchedulerKind::ExactGreedy);
    assert!(prev >= exact - 1e-9, "no scheduler beats exact greedy here");
    assert!(lb > 2.0 * exact, "the instance separates LB from exact");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary feasible specs generate with exact structural counts.
    #[test]
    fn generator_is_exact_on_arbitrary_specs(
        comps in 1u32..20,
        depth in 2u32..10,
        width in 1u32..4,
        extra_levels in 0u32..20,
        filler_nodes in 0u32..2000,
        density_pct in 40u32..220,
        seed in any::<u64>(),
    ) {
        let levels = depth + extra_levels;
        let comp_nodes = comps * (1 + (depth - 1) * width);
        let nodes = comp_nodes + levels + filler_nodes;
        // Edge budget: anchors + spine, plus density-scaled filler.
        let min_edges = comps * ((depth - 1) * width) + (levels - 1);
        let max_extra = (filler_nodes / 2).pow(2).min(10_000);
        let edges = min_edges + (max_extra * density_pct / 220).min(max_extra);
        let active = (comp_nodes as f64 * 0.6) as u32 + comps; // reachable target
        let spec = TraceSpec {
            name: "prop",
            id: 77,
            seed,
            nodes,
            edges,
            initial: comps,
            active: active.min(comp_nodes),
            levels,
            classes: vec![CompClass { count: comps, depth, width, dirty: true }],
            second_parent: 0.0,
            comp_scale_sigma: 0.0,
            duration: datalog_sched::traces::durations::DurationModel::new(1.0, 0.5),
            paper: Default::default(),
        };
        prop_assume!(spec.validate().is_ok());
        let (inst, rep) = generate(&spec);
        prop_assert_eq!(inst.dag.node_count() as u32, nodes);
        prop_assert_eq!(inst.dag.edge_count() as u32, edges);
        prop_assert_eq!(inst.dag.num_levels(), levels);
        prop_assert_eq!(inst.initial_active.len() as u32, comps);
        // The closure always covers at least the initial set.
        prop_assert!(rep.achieved_active >= comps as usize);
    }
}

/// Threaded executor at moderate scale: 5000 tasks across LevelBased,
/// Hybrid, and Duo(LBL, LogicBlox).
#[test]
fn executor_stress_five_thousand_tasks() {
    let pipes = 1000u32;
    let depth = 5u32;
    let mut b = DagBuilder::new((pipes * depth) as usize);
    let node = |p: u32, d: u32| NodeId(p * depth + d);
    for p in 0..pipes {
        for d in 1..depth {
            b.add_edge(node(p, d - 1), node(p, d));
        }
    }
    let dag = Arc::new(b.build().unwrap());
    let initial: Vec<NodeId> = (0..pipes).map(|p| node(p, 0)).collect();
    let task: TaskFn = {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| fired.extend_from_slice(dag.children(v)))
    };
    let expected = (pipes * depth) as usize;

    let mut lb = LevelBased::new(dag.clone());
    let r = Executor::new(8).run_or_panic(&mut lb, &dag, &initial, task.clone());
    assert_eq!(r.executed, expected);

    let mut duo = Duo::new(
        LevelBasedLookahead::new(dag.clone(), 3),
        LogicBlox::new(dag.clone()),
    );
    let r = Executor::new(8).run_or_panic(&mut duo, &dag, &initial, task.clone());
    assert_eq!(r.executed, expected);
}

/// Event and step simulators agree on the makespan *bound* for unit
/// instances (both are greedy; both must respect w/P + L).
#[test]
fn event_and_step_agree_on_unit_bounds() {
    use datalog_sched::sched::{Instance, TaskShape};
    use datalog_sched::sim::{simulate_step, StepSimConfig};
    for seed in 0..8u64 {
        let dag = Arc::new(datalog_sched::dag::random::layered(
            datalog_sched::dag::random::LayeredParams {
                layers: 6,
                width: 5,
                max_in: 2,
                back_span: 2,
                seed,
            },
        ));
        let mut inst = Instance::unit(dag.clone(), dag.sources().collect());
        for v in dag.nodes() {
            inst.fired[v.index()] = dag.children(v).to_vec();
            inst.shapes[v.index()] = TaskShape::Unit;
        }
        let w = inst.active_work_units();
        let l = dag.num_levels() as u64;
        for p in [2usize, 4] {
            let bound = w.div_ceil(p as u64) + l;
            let mut s1 = LevelBased::new(dag.clone());
            let ev = simulate_event(
                &mut s1,
                &inst,
                &EventSimConfig {
                    processors: p,
                    prices: CostPrices::free(),
                    audit: false,
                    space_budget: None,
                },
            );
            let mut s2 = LevelBased::new(dag.clone());
            let st = simulate_step(
                &mut s2,
                &inst,
                &StepSimConfig {
                    processors: p,
                    audit: false,
                    batch_pops: false,
                },
            );
            assert!(ev.makespan as u64 <= bound, "event sim broke the bound");
            assert!(st.makespan <= bound, "step sim broke the bound");
            assert_eq!(ev.executed, st.executed);
        }
    }
}

/// The Duo combinator preserves safety under the event simulator with
/// auditing, for several pairings.
#[test]
fn duo_pairings_audited() {
    let spec = TraceSpec {
        name: "duo",
        id: 78,
        seed: 99,
        nodes: 1_500,
        edges: 2_200,
        initial: 8,
        active: 150,
        levels: 25,
        classes: vec![CompClass {
            count: 8,
            depth: 10,
            width: 2,
            dirty: true,
        }],
        second_parent: 0.5,
        comp_scale_sigma: 0.0,
        duration: datalog_sched::traces::durations::DurationModel::new(0.5, 1.0),
        paper: Default::default(),
    };
    let (inst, _) = generate(&spec);
    let expected = inst.active_count();
    let cfg = EventSimConfig {
        processors: 4,
        prices: CostPrices::free(),
        audit: true,
        space_budget: None,
    };
    let mut a = Duo::new(
        LevelBased::new(inst.dag.clone()),
        LogicBlox::new(inst.dag.clone()),
    );
    assert_eq!(simulate_event(&mut a, &inst, &cfg).executed, expected);
    let mut b = Duo::new(
        LogicBlox::new(inst.dag.clone()),
        LevelBased::new(inst.dag.clone()),
    );
    assert_eq!(simulate_event(&mut b, &inst, &cfg).executed, expected);
    let mut c = Duo::new(
        LevelBasedLookahead::new(inst.dag.clone(), 6),
        datalog_sched::sched::SignalPropagation::new(inst.dag.clone()),
    );
    assert_eq!(simulate_event(&mut c, &inst, &cfg).executed, expected);
}
