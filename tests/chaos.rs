//! The chaos suite: deterministic fault injection against the threaded
//! executor, across all five paper schedulers.
//!
//! Every scenario asserts the full fault-model contract, not just "no
//! crash":
//!
//! * **zero double-executions** — a node's task body succeeds at most
//!   once across the whole scenario, including across failed attempts
//!   and journal-driven resumes (the paper's run-once safety invariant,
//!   extended over failure);
//! * **safety audit** — every pop is checked by [`SafetyChecker`]
//!   against ground-truth reachability (no active-uncompleted ancestor,
//!   no task popped twice within an attempt);
//! * **eventual completion** — bounded retry/resume rounds drive every
//!   scenario to quiescence;
//! * **output equivalence** — the set of successful executions is
//!   bit-identical to the fault-free run: exactly the active closure,
//!   each node exactly once.
//!
//! Fault plans are seeded and deterministic (`faults.rs`), so the suite
//! covers 200+ distinct scenarios (panic-at-nth / transient failure /
//! delay × five schedulers × many seeds) with exact assertions.

use datalog_sched::dag::{random, NodeId};
use datalog_sched::runtime::executor::{ExecConfig, ExecError, Executor, RetryPolicy, TryTaskFn, UpdateJournal};
use datalog_sched::runtime::faults::{silence_injected_panics, Fault, FaultPlan};
use datalog_sched::runtime::TaskOutcome;
use datalog_sched::sched::{
    CostMeter, Instance, SafetyChecker, Scheduler, SchedulerKind,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The five paper schedulers under test (ISSUE 4 acceptance set).
const SCHEDS: [SchedulerKind; 5] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(4),
    SchedulerKind::LogicBlox,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
];

/// Mid-size layered instance with partial firing — the same shape the
/// restart regressions use, so chaos runs exercise the generation-stamped
/// state the resumes depend on.
fn instance(seed: u64) -> Instance {
    let dag = Arc::new(random::layered(random::LayeredParams {
        layers: 6,
        width: 7,
        max_in: 3,
        back_span: 2,
        seed,
    }));
    let mut inst = Instance::unit(dag.clone(), dag.sources().take(3).collect());
    for v in dag.nodes() {
        inst.fired[v.index()] = dag
            .children(v)
            .iter()
            .copied()
            .filter(|c| !(c.0 ^ seed as u32).is_multiple_of(3))
            .collect();
    }
    inst
}

/// Wrap any scheduler with the ground-truth safety auditor: every pop is
/// checked against reachability, every completion feeds the audit state.
/// Panics (failing the test) on any safety violation.
struct Audited {
    inner: Box<dyn Scheduler>,
    check: SafetyChecker,
}

impl Audited {
    fn new(kind: SchedulerKind, inst: &Instance) -> Audited {
        Audited {
            inner: kind.build(inst.dag.clone()),
            check: SafetyChecker::new(inst.dag.clone()),
        }
    }
}

impl Scheduler for Audited {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn start(&mut self, initial_active: &[NodeId]) {
        self.check.on_start(initial_active);
        self.inner.start(initial_active);
    }
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.check.on_complete(v, fired);
        self.inner.on_completed(v, fired);
    }
    // pop_batch/complete_batch use the trait defaults, which route through
    // pop_ready/on_completed — every dispatch passes the audit.
    fn pop_ready(&mut self) -> Option<NodeId> {
        let t = self.inner.pop_ready();
        if let Some(v) = t {
            self.check.on_pop(v);
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

/// A task body that counts successful executions per node and fires the
/// instance's ground-truth fired sets. The count only increments when the
/// body actually runs to completion, so `counts` is exactly the
/// double-execution ledger.
fn counting_task(inst: &Instance, counts: Arc<Vec<AtomicU32>>) -> TryTaskFn {
    let fired_sets: Arc<Vec<Vec<NodeId>>> = Arc::new(inst.fired.clone());
    Arc::new(move |v, fired: &mut Vec<NodeId>| {
        counts[v.index()].fetch_add(1, Ordering::SeqCst);
        fired.extend_from_slice(&fired_sets[v.index()]);
        TaskOutcome::Done
    })
}

/// Drive one faulted scenario to completion: run, and on failure resume
/// from the journal, up to `max_rounds` attempts. Asserts the full
/// contract (see module docs) and returns how many rounds it took.
fn run_chaos_scenario(
    kind: SchedulerKind,
    inst: &Instance,
    plan: &FaultPlan,
    retry: RetryPolicy,
    max_rounds: usize,
) -> usize {
    silence_injected_panics();
    let counts: Arc<Vec<AtomicU32>> = Arc::new(
        (0..inst.dag.node_count()).map(|_| AtomicU32::new(0)).collect(),
    );
    // Wrap ONCE: the armed plan's disarm flags and attempt counters must
    // persist across resume rounds, exactly like real-world flaky state.
    let task = plan.wrap(counting_task(inst, counts.clone()));
    let mut scheduler = Audited::new(kind, inst);
    let mut journal = UpdateJournal::new();
    let mut cfg = ExecConfig::new(4);
    cfg.retry = retry;
    let exec = Executor::with_config(cfg);

    let mut rounds = 0;
    loop {
        rounds += 1;
        assert!(
            rounds <= max_rounds,
            "{kind:?} seed {}: no completion within {max_rounds} rounds",
            plan.seed
        );
        match exec.run_fallible(
            &mut scheduler,
            &inst.dag,
            &inst.initial_active,
            task.clone(),
            Some(&mut journal),
        ) {
            Ok(_) => break,
            Err(
                ExecError::TaskPanicked { .. }
                | ExecError::TaskFailed { .. }
                | ExecError::Cancelled { .. },
            ) => continue,
            Err(other) => panic!("{kind:?} seed {}: unexpected {other}", plan.seed),
        }
    }

    // Output equivalence with the fault-free run: the successful-execution
    // ledger is exactly the active closure, each node exactly once.
    let closure = inst.active_closure();
    for v in inst.dag.nodes() {
        let n = counts[v.index()].load(Ordering::SeqCst);
        let expect = u32::from(closure.contains(v));
        assert_eq!(
            n,
            expect,
            "{kind:?} seed {}: node {v} executed {n}× (expected {expect})",
            plan.seed
        );
    }
    rounds
}

/// ≥ 75 scenarios: a one-shot panic lands on the nth execution (victim
/// node varies with interleaving), the run fails typed, and the journaled
/// resume finishes without re-running anything that succeeded.
#[test]
fn chaos_panic_at_nth_execution() {
    for seed in 0..15u64 {
        let inst = instance(0x9A1C ^ seed);
        for kind in SCHEDS {
            let plan = FaultPlan::new(seed).with(Fault::PanicAtNth { n: seed % 23 });
            let rounds =
                run_chaos_scenario(kind, &inst, &plan, RetryPolicy::default(), 3);
            assert!(rounds <= 2, "{kind:?} seed {seed}: one panic, at most one resume");
        }
    }
}

/// ≥ 75 scenarios: a panic targets a specific hash-chosen node, plus a
/// second panic by count — two failure rounds max, then completion.
#[test]
fn chaos_panic_on_node_and_nth_combined() {
    for seed in 0..15u64 {
        let inst = instance(0xB0DE ^ seed);
        let victim = NodeId((seed as u32 * 7) % inst.dag.node_count() as u32);
        for kind in SCHEDS {
            let plan = FaultPlan::new(seed)
                .with(Fault::PanicOnNode { node: victim })
                .with(Fault::PanicAtNth { n: 11 + seed % 17 });
            run_chaos_scenario(kind, &inst, &plan, RetryPolicy::default(), 4);
        }
    }
}

/// ≥ 75 scenarios: 1-in-3 of the nodes fail transiently `k` times and
/// then succeed; with a retry budget of `k` the run completes in ONE
/// round — retries re-run only failed attempts, never successes.
#[test]
fn chaos_transient_failures_absorbed_by_retry() {
    for seed in 0..15u64 {
        let inst = instance(0x7124 ^ seed);
        let k = 1 + (seed % 3) as u32;
        for kind in SCHEDS {
            let plan = FaultPlan::new(seed).with(Fault::FailKThenSucceed { k, every: 3 });
            let rounds = run_chaos_scenario(kind, &inst, &plan, RetryPolicy::retries(k), 2);
            assert_eq!(
                rounds, 1,
                "{kind:?} seed {seed}: retry budget {k} must absorb k={k} transients"
            );
        }
    }
}

/// ≥ 50 scenarios: transient failures with an *insufficient* retry budget
/// — the run fails with `TaskFailed`, and resumes still converge because
/// per-node attempt counts persist across rounds.
#[test]
fn chaos_exhausted_retries_recover_via_resume() {
    for seed in 0..10u64 {
        let inst = instance(0xE4A0 ^ seed);
        for kind in SCHEDS {
            let plan = FaultPlan::new(seed).with(Fault::FailKThenSucceed { k: 3, every: 4 });
            // Budget 1 retry per round against k=3: each failing node needs
            // up to two rounds of attempts; bounded resume converges.
            run_chaos_scenario(kind, &inst, &plan, RetryPolicy::retries(1), 12);
        }
    }
}

/// ≥ 50 scenarios: injected delays jitter the interleaving (shaking out
/// ordering assumptions) without changing any outcome — completion in one
/// round, outputs identical.
#[test]
fn chaos_delays_change_interleaving_not_outcomes() {
    for seed in 0..10u64 {
        let inst = instance(0xDE1A ^ seed);
        for kind in SCHEDS {
            let plan = FaultPlan::new(seed).with(Fault::DelayTask {
                micros: 200,
                every: 4,
            });
            let rounds =
                run_chaos_scenario(kind, &inst, &plan, RetryPolicy::default(), 2);
            assert_eq!(rounds, 1, "{kind:?} seed {seed}: delays must not fail the run");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized compositions of all three fault families over random
    /// instances: the full contract must hold for any mix.
    #[test]
    fn chaos_random_fault_compositions(
        seed in 0u64..1_000_000,
        n in 0u64..40,
        k in 1u32..4,
        every in 2u32..6,
        sched_idx in 0usize..5,
    ) {
        let inst = instance(seed);
        let plan = FaultPlan::new(seed)
            .with(Fault::PanicAtNth { n })
            .with(Fault::FailKThenSucceed { k, every })
            .with(Fault::DelayTask { micros: 50, every });
        run_chaos_scenario(SCHEDS[sched_idx], &inst, &plan, RetryPolicy::retries(k), 8);
    }
}

/// ISSUE 4 acceptance: an injected worker panic on preset 5 returns
/// `Err(ExecError::TaskPanicked)` within the watchdog deadline (no hang),
/// and a subsequent `start()` on the same scheduler object passes the
/// restart-identical regression.
#[test]
fn preset5_worker_panic_fails_fast_and_restarts_identically() {
    silence_injected_panics();
    let (inst, _) = datalog_sched::traces::generate(&datalog_sched::traces::preset(5));
    let fired_sets: Arc<Vec<Vec<NodeId>>> = Arc::new(inst.fired.clone());
    let inner: TryTaskFn = {
        let fired_sets = fired_sets.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| {
            fired.extend_from_slice(&fired_sets[v.index()]);
            TaskOutcome::Done
        })
    };
    let deadline = Duration::from_secs(30);

    for kind in SCHEDS {
        let plan = FaultPlan::new(5).with(Fault::PanicAtNth { n: 100 });
        let task = plan.wrap(inner.clone());
        let mut s = kind.build(inst.dag.clone());
        let mut cfg = ExecConfig::new(8);
        cfg.deadline = Some(deadline);
        let t0 = Instant::now();
        let err = Executor::with_config(cfg)
            .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, task, None)
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(
            matches!(err, ExecError::TaskPanicked { .. }),
            "{kind:?}: expected TaskPanicked, got {err:?}"
        );
        assert!(
            elapsed < deadline,
            "{kind:?}: failed run took {elapsed:?}, watchdog deadline is {deadline:?}"
        );

        // Restart-identical: the aborted scheduler object, serially
        // driven, makes exactly the decisions of a never-aborted twin.
        let serial = |s: &mut dyn Scheduler| -> Vec<NodeId> {
            s.start(&inst.initial_active);
            let mut order = Vec::new();
            while let Some(t) = s.pop_ready() {
                order.push(t);
                s.on_completed(t, &fired_sets[t.index()]);
            }
            assert!(s.is_quiescent(), "{} stalled after abort", s.name());
            order
        };
        let after_abort = serial(s.as_mut());
        let mut fresh = kind.build(inst.dag.clone());
        let fresh_order = serial(fresh.as_mut());
        assert_eq!(
            after_abort, fresh_order,
            "{kind:?}: post-abort decisions differ from a fresh scheduler"
        );
    }
}

/// A scheduler that goes mute after `allow` pops while refusing to report
/// quiescence — the executor's stall detector must fire. This models a
/// buggy scheduler losing track of activations, which no task-level fault
/// can reproduce.
struct Mute {
    inner: Box<dyn Scheduler>,
    allow: usize,
}

impl Scheduler for Mute {
    fn name(&self) -> &str {
        "mute"
    }
    fn start(&mut self, initial_active: &[NodeId]) {
        self.inner.start(initial_active);
    }
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<NodeId> {
        if self.allow == 0 {
            return None;
        }
        self.allow -= 1;
        self.inner.pop_ready()
    }
    fn is_quiescent(&self) -> bool {
        false // never admits it is done: a pop drought here is a stall
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

/// ISSUE 6 acceptance: an injected executor stall — and, for contrast, a
/// worker panic — each leave a validator-clean flight-recorder black box
/// on disk with tracing NEVER enabled. The dump is stitched from the
/// always-on per-thread rings alone.
#[test]
fn injected_stall_and_panic_leave_validator_clean_flight_dumps() {
    use incr_obs::export::validate_chrome_trace;
    use incr_obs::{flight, trace};
    silence_injected_panics();
    trace::disable();
    flight::set_enabled(true);
    let dir = std::env::temp_dir().join(format!("dlsched-chaos-blackbox-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let inst = instance(0xB1AC);
    let fired_sets: Arc<Vec<Vec<NodeId>>> = Arc::new(inst.fired.clone());
    let inner: TryTaskFn = {
        let fired_sets = fired_sets.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| {
            fired.extend_from_slice(&fired_sets[v.index()]);
            TaskOutcome::Done
        })
    };
    let mut cfg = ExecConfig::new(4);
    cfg.black_box = Some(dir.clone());

    // Scenario 1: the scheduler stops yielding work mid-update.
    let mut s = Mute {
        inner: SchedulerKind::Hybrid.build(inst.dag.clone()),
        allow: 5,
    };
    let err = Executor::with_config(cfg.clone())
        .run_fallible(&mut s, &inst.dag, &inst.initial_active, inner.clone(), None)
        .unwrap_err();
    assert!(matches!(err, ExecError::Stall { .. }), "got {err:?}");

    // Scenario 2: a worker panic through the fault plan.
    let plan = FaultPlan::new(7).with(Fault::PanicAtNth { n: 3 });
    let task = plan.wrap(inner);
    let mut s = SchedulerKind::LevelBased.build(inst.dag.clone());
    let err = Executor::with_config(cfg)
        .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, task, None)
        .unwrap_err();
    assert!(matches!(err, ExecError::TaskPanicked { .. }), "got {err:?}");

    // Both dumps exist (names carry the error kind), validate as Chrome
    // traces, and mark the failure instant.
    for kind in ["stall", "panic"] {
        let path = std::fs::read_dir(&dir)
            .expect("black-box dir created")
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().contains(kind))
            .unwrap_or_else(|| panic!("no {kind} dump in {dir:?}"));
        let text = std::fs::read_to_string(&path).unwrap();
        validate_chrome_trace(&text)
            .unwrap_or_else(|e| panic!("{kind} dump invalid: {e}"));
        assert!(text.contains("exec.error"), "{kind}: failure instant missing");
        assert!(text.contains("flight.context"), "{kind}: context record missing");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cancelled update leaves the scheduler restartable too — the
/// CancelToken path through the same restart-identical yardstick.
#[test]
fn cancelled_update_leaves_scheduler_restartable() {
    use datalog_sched::runtime::executor::CancelToken;
    let inst = instance(0xCA9CE1);
    let fired_sets: Arc<Vec<Vec<NodeId>>> = Arc::new(inst.fired.clone());
    for kind in SCHEDS {
        let token = CancelToken::new();
        let task: TryTaskFn = {
            let fired_sets = fired_sets.clone();
            let token = token.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                token.cancel(); // first execution requests the abort
                fired.extend_from_slice(&fired_sets[v.index()]);
                TaskOutcome::Done
            })
        };
        let mut s = kind.build(inst.dag.clone());
        let mut cfg = ExecConfig::new(4);
        cfg.cancel = Some(token);
        let err = Executor::with_config(cfg)
            .run_fallible(s.as_mut(), &inst.dag, &inst.initial_active, task, None)
            .unwrap_err();
        assert!(
            matches!(err, ExecError::Cancelled { .. }),
            "{kind:?}: expected Cancelled, got {err:?}"
        );

        let serial = |s: &mut dyn Scheduler| -> Vec<NodeId> {
            s.start(&inst.initial_active);
            let mut order = Vec::new();
            while let Some(t) = s.pop_ready() {
                order.push(t);
                s.on_completed(t, &fired_sets[t.index()]);
            }
            order
        };
        let after_cancel = serial(s.as_mut());
        let mut fresh = kind.build(inst.dag.clone());
        assert_eq!(
            after_cancel,
            serial(fresh.as_mut()),
            "{kind:?}: post-cancel decisions differ from a fresh scheduler"
        );
    }
}

/// ISSUE 9: a shard whose stream fails with a real error must surface as
/// a typed per-shard failure AND cancel its sibling shards mid-stream —
/// no hang, no lost diagnostics, no sibling left driving a stream whose
/// result is already unusable. Swept across all five schedulers.
#[test]
fn sharded_stream_failure_is_typed_and_cancels_siblings() {
    use datalog_sched::runtime::executor::TaskFn;
    use datalog_sched::runtime::ShardedExecutor;
    silence_injected_panics();

    let dag = Arc::new(random::layered(random::LayeredParams {
        layers: 6,
        width: 32,
        max_in: 3,
        back_span: 2,
        seed: 9,
    }));
    // Every update touches all three shards (9 % 3 == 0, 10 % 3 == 1,
    // 11 % 3 == 2); spinning tasks keep siblings mid-stream when the
    // victim dies.
    let updates: Vec<Vec<NodeId>> =
        (0..400).map(|_| vec![NodeId(9), NodeId(10), NodeId(11)]).collect();

    for kind in SCHEDS {
        let task: TaskFn = {
            let hits = Arc::new(AtomicU32::new(0));
            Arc::new(move |v: NodeId, _out: &mut Vec<NodeId>| {
                let t0 = Instant::now();
                while t0.elapsed().as_micros() < 100 {
                    std::hint::spin_loop();
                }
                if v == NodeId(9) && hits.fetch_add(1, Ordering::SeqCst) == 50 {
                    panic!(
                        "{}: shard 0 victim",
                        datalog_sched::runtime::faults::INJECTED_PANIC
                    );
                }
            })
        };
        let mut cfg = ExecConfig::new(2);
        cfg.black_box = None;
        let t0 = Instant::now();
        let err = ShardedExecutor::with_config(3, cfg)
            .run_stream(|_| kind.build(dag.clone()), &dag, &updates, task)
            .expect_err("injected panic must fail the sharded stream");
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "{kind:?}: sharded failure must not hang"
        );
        let victim = &err.failures[0];
        assert_eq!(victim.shard, 0, "{kind:?}: node 9's owner fails");
        assert!(
            matches!(victim.error.error, ExecError::TaskPanicked { node: NodeId(9), .. }),
            "{kind:?}: typed panic, got {:?}",
            victim.error.error
        );
        assert!(
            err.cancelled >= 1,
            "{kind:?}: cancellation must reach at least one sibling: {err:?}"
        );
        for line in err.shard_lines() {
            assert!(!line.contains('\n'), "{kind:?}: one line per shard: {line}");
        }
    }
}
