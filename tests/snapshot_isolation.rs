//! End-to-end snapshot isolation over the epoch-versioned database.
//!
//! The contracts under test:
//!
//! * **No aliased reads** — a pinned snapshot blocks arena row reuse,
//!   so delete+insert churn after the pin can never make the snapshot
//!   observe a different tuple through a recycled row id (the
//!   regression the free-list watermark exists for).
//! * **Publish-point atomicity** — a snapshot pinned at any moment
//!   before an update's publish (including mid-cascade, from inside the
//!   driving scheduler) reads the pre-update materialization
//!   bit-for-bit; a snapshot pinned after reads the post-update one.
//! * **Failed updates publish nothing** — after a scheduler stall and
//!   rollback, new snapshots still read the last committed cut.
//! * **Readers run concurrently** — snapshot queries from other threads
//!   make progress while the engine churns through updates.

use datalog_sched::dag::{Dag, NodeId};
use datalog_sched::datalog::mvcc::{ReaderHandle, Snapshot};
use datalog_sched::datalog::{FactEdit, IncrementalEngine};
use datalog_sched::sched::{CostMeter, Hybrid, LevelBased, LogicBlox, Scheduler, SignalPropagation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const TC: &str = "path(X, Y) :- edge(X, Y).\n\
                  path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                  edge(a, b). edge(b, c).";

fn head_image(e: &IncrementalEngine) -> Vec<String> {
    e.database().image_at(None)
}

fn schedulers(e: &IncrementalEngine) -> Vec<Box<dyn Scheduler>> {
    let dag = e.dag().clone();
    vec![
        Box::new(LevelBased::new(dag.clone())),
        Box::new(LogicBlox::new(dag.clone())),
        Box::new(Hybrid::new(dag.clone())),
        Box::new(SignalPropagation::new(dag)),
    ]
}

/// Satellite regression: pin a snapshot, delete + insert (which recycles
/// the freed arena slot once nothing pins it), and assert the pinned
/// read is unchanged — the snapshot watermark must block row reuse.
#[test]
fn pinned_snapshot_unchanged_by_delete_insert_churn() {
    let mut e = IncrementalEngine::new(TC).unwrap();
    let snap = e.begin_snapshot();
    let before = snap.image();
    assert_eq!(before, head_image(&e), "fresh snapshot matches head");
    assert!(snap.has("edge", &["a", "b"]));
    assert!(snap.has("path", &["a", "c"]));

    // Delete then insert across several published updates: without the
    // watermark the freed rows of edge(a,b)/its paths would be recycled
    // for edge(x,y) and the pinned reader could see aliased tuples.
    let dag = e.dag().clone();
    let mut s = LevelBased::new(dag.clone());
    e.update(&mut s, &[FactEdit::remove("edge", &["a", "b"])])
        .unwrap();
    let mut s = LevelBased::new(dag.clone());
    e.update(&mut s, &[FactEdit::add("edge", &["x", "y"])])
        .unwrap();

    assert_eq!(snap.image(), before, "pinned read must be unchanged");
    assert!(snap.has("edge", &["a", "b"]), "deleted fact still pinned");
    assert!(!snap.has("edge", &["x", "y"]), "new fact invisible");
    assert!(e.has("edge", &["x", "y"]), "head sees the new fact");
    assert!(!e.has("edge", &["a", "b"]));
    {
        let db = e.database();
        assert!(db.rows_retained() > 0, "tombstones retained for the pin");
    }

    // Release the pin: the next committed update vacuums the retained
    // rows, and a fresh snapshot reads the current head.
    drop(snap);
    let mut s = LevelBased::new(dag);
    e.update(&mut s, &[FactEdit::add("edge", &["x", "z"])])
        .unwrap();
    assert_eq!(e.database().rows_retained(), 0, "vacuumed after unpin");
    let fresh = e.begin_snapshot();
    assert_eq!(fresh.image(), head_image(&e));
}

/// A scheduler wrapper that opens a snapshot after the `at`-th task pops
/// — i.e. genuinely mid-cascade, between two write-lock tenures of the
/// driving update.
struct PinMidCascade {
    inner: LevelBased,
    reader: ReaderHandle,
    at: usize,
    popped: usize,
    snap: Option<Snapshot>,
}

impl PinMidCascade {
    fn new(dag: Arc<Dag>, reader: ReaderHandle, at: usize) -> Self {
        PinMidCascade {
            inner: LevelBased::new(dag),
            reader,
            at,
            popped: 0,
            snap: None,
        }
    }
}

impl Scheduler for PinMidCascade {
    fn name(&self) -> &str {
        "PinMidCascade"
    }
    fn start(&mut self, initial: &[NodeId]) {
        self.inner.start(initial);
    }
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<NodeId> {
        let t = self.inner.pop_ready();
        if t.is_some() {
            self.popped += 1;
            if self.popped == self.at && self.snap.is_none() {
                self.snap = Some(self.reader.snapshot());
            }
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

#[test]
fn snapshot_pinned_mid_cascade_reads_pre_update_state() {
    let mut e = IncrementalEngine::new(TC).unwrap();
    let before = head_image(&e);
    let pre_epoch = e.epoch();

    // Pin after the first task (the base-table node) has already
    // mutated edge: the cascade is half-applied at head, yet the
    // snapshot must read the pre-update cut.
    let mut s = PinMidCascade::new(e.dag().clone(), e.reader(), 1);
    e.update(&mut s, &[FactEdit::remove("edge", &["a", "b"])])
        .unwrap();
    let snap = s.snap.take().expect("cascade had at least one task");
    assert_eq!(snap.epoch(), pre_epoch, "mid-cascade pin gets the old cut");
    assert_eq!(snap.image(), before, "bit-identical to the pre-update db");

    // A snapshot pinned after the publish sees the update.
    let after = e.begin_snapshot();
    assert_eq!(after.epoch(), pre_epoch + 1);
    assert_eq!(after.image(), head_image(&e));
    assert!(!after.has("path", &["a", "c"]));
}

/// Pops the first `quota` tasks, then refuses — wedges the update so
/// the engine rolls back.
struct QuotaStall {
    inner: LevelBased,
    quota: usize,
    popped: usize,
}

impl Scheduler for QuotaStall {
    fn name(&self) -> &str {
        "QuotaStall"
    }
    fn start(&mut self, initial: &[NodeId]) {
        self.popped = 0;
        self.inner.start(initial);
    }
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<NodeId> {
        if self.popped >= self.quota {
            return None;
        }
        let t = self.inner.pop_ready();
        if t.is_some() {
            self.popped += 1;
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

#[test]
fn failed_update_publishes_no_epoch() {
    let mut e = IncrementalEngine::new(TC).unwrap();
    let before = head_image(&e);
    let epoch = e.epoch();

    let mut broken = QuotaStall {
        inner: LevelBased::new(e.dag().clone()),
        quota: 1,
        popped: 0,
    };
    e.update(&mut broken, &[FactEdit::remove("edge", &["a", "b"])])
        .unwrap_err();

    assert_eq!(e.epoch(), epoch, "stalled update must not publish");
    assert_eq!(head_image(&e), before, "rolled back");
    let snap = e.begin_snapshot();
    assert_eq!(snap.epoch(), epoch);
    assert_eq!(snap.image(), before, "snapshot reads the committed cut");
}

/// Post-publish snapshots match the sequential head across every
/// scheduler (the scheduler choice must be invisible to readers).
#[test]
fn post_publish_snapshot_matches_head_for_all_schedulers() {
    for (i, _) in schedulers(&IncrementalEngine::new(TC).unwrap())
        .iter()
        .enumerate()
    {
        let mut e = IncrementalEngine::new(TC).unwrap();
        let mut s = schedulers(&e).remove(i);
        e.update(
            s.as_mut(),
            &[
                FactEdit::add("edge", &["c", "d"]),
                FactEdit::remove("edge", &["a", "b"]),
            ],
        )
        .unwrap();
        let snap = e.begin_snapshot();
        assert_eq!(snap.image(), head_image(&e), "scheduler #{i}");
        assert_eq!(snap.count("path"), e.count("path"));
    }
}

/// Four reader threads keep opening snapshots and querying while the
/// writer churns: every read must be internally consistent (the same
/// snapshot answers identically twice) and correspond to a committed
/// cut (`path` is the closure of `edge` — sizes must be consistent).
#[test]
fn readers_progress_and_stay_consistent_during_update_stream() {
    let mut e = IncrementalEngine::new(TC).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let reader = e.reader();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut reads = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    let a = snap.image();
                    let paths = snap.query("path(?, ?)").unwrap();
                    let b = snap.image();
                    assert_eq!(a, b, "snapshot view drifted between reads");
                    assert_eq!(paths.len(), snap.count("path"));
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    let dag = e.dag().clone();
    let hosts = ["d", "e", "f", "g", "h"];
    for round in 0..40 {
        let h = hosts[round % hosts.len()];
        let mut s = Hybrid::new(dag.clone());
        e.update(&mut s, &[FactEdit::add("edge", &["c", h])]).unwrap();
        let mut s = Hybrid::new(dag.clone());
        e.update(&mut s, &[FactEdit::remove("edge", &["c", h])])
            .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let reads = r.join().expect("reader thread");
        assert!(reads > 0, "reader made no progress during the stream");
    }
    // All pins released: the next committed update reclaims everything.
    let mut s = Hybrid::new(dag);
    e.update(&mut s, &[FactEdit::add("edge", &["c", "z"])]).unwrap();
    assert_eq!(e.database().rows_retained(), 0);
}
