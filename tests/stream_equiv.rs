//! Stream-fast-path equivalence suite: coalescing queued updates into
//! one net delta / one scheduler run must be *observationally invisible*.
//!
//! Three layers, each across all five paper schedulers:
//!
//! * **Datalog level** — a churny edit stream applied through
//!   [`DeltaQueue`] + `apply_queue` yields the same final database as the
//!   same updates applied one `engine.update` at a time, even though the
//!   queue cancels opposing pairs and dedupes restatements.
//! * **Executor level** — a coalesced `run_stream_with` executes exactly
//!   the union of the serial runs' execution sets, with every pop checked
//!   by [`SafetyChecker`] against ground-truth reachability, and never
//!   executes more tasks than the serial baseline.
//! * **Fault model** — a mid-stream worker panic inside a coalesced batch
//!   fails typed, journals the batch's committed executions, and the
//!   documented resume recipe (re-run `failed_initial` with the same
//!   journal, continue the stream past the absorbed updates) converges to
//!   the fault-free execution ledger: each closure node exactly once.

use datalog_sched::dag::{random, NodeId};
use datalog_sched::datalog::{DeltaQueue, FactEdit, IncrementalEngine};
use datalog_sched::runtime::executor::{ExecConfig, Executor, StreamPolicy, StreamUpdate, UpdateJournal};
use datalog_sched::runtime::faults::{silence_injected_panics, Fault, FaultPlan};
use datalog_sched::runtime::TaskOutcome;
use datalog_sched::runtime::TryTaskFn;
use datalog_sched::sched::{CostMeter, Instance, SafetyChecker, Scheduler, SchedulerKind};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// The five paper schedulers (ISSUE 5 acceptance set — same as chaos.rs).
const SCHEDS: [SchedulerKind; 5] = [
    SchedulerKind::LevelBased,
    SchedulerKind::Lookahead(4),
    SchedulerKind::LogicBlox,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
];

// ---------------------------------------------------------------------------
// Datalog level: DeltaQueue + apply_queue ≡ serial engine.update calls.
// ---------------------------------------------------------------------------

/// Ring of `n` nodes under transitive closure — every edge edit cascades.
fn ring_tc(n: usize) -> String {
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(v{i}, v{}).\n", (i + 1) % n));
    }
    src
}

/// A churny update stream: net-zero insert/delete pairs, duplicate
/// restatements, plus genuine edits — the shapes coalescing must get right.
fn churn_updates() -> Vec<Vec<FactEdit>> {
    vec![
        // Genuinely new chord.
        vec![FactEdit::add("edge", &["v2", "v7"])],
        // Net-zero churn: inserted then deleted before any drain.
        vec![FactEdit::add("edge", &["v4", "v9"])],
        vec![FactEdit::remove("edge", &["v4", "v9"])],
        // Delete a ring edge, breaking the cycle...
        vec![FactEdit::remove("edge", &["v0", "v1"])],
        // ...and restore it in a later queued update (cancels again).
        vec![FactEdit::add("edge", &["v0", "v1"])],
        // Restating an already-present fact and an absent one (no-ops).
        vec![
            FactEdit::add("edge", &["v2", "v3"]),
            FactEdit::remove("edge", &["v5", "v11"]),
        ],
        // Duplicate of the first update's chord (dedupes in the queue).
        vec![FactEdit::add("edge", &["v2", "v7"])],
        // A real deletion that must survive all the cancelling above.
        vec![FactEdit::remove("edge", &["v6", "v7"])],
    ]
}

/// Full rendered image of both relations, order-normalized.
fn db_image(e: &IncrementalEngine) -> BTreeSet<String> {
    let mut img = BTreeSet::new();
    for pat in ["edge(X, Y)", "path(X, Y)"] {
        for row in e.query(pat).expect("valid pattern") {
            img.insert(format!("{pat}: {row}"));
        }
    }
    img
}

#[test]
fn coalesced_queue_matches_serial_updates_for_all_schedulers() {
    let src = ring_tc(12);
    let updates = churn_updates();

    for kind in SCHEDS {
        // Serial baseline: one engine.update per stream update.
        let mut serial = IncrementalEngine::new(&src).expect("valid program");
        for edits in &updates {
            let mut s = kind.build(serial.dag().clone());
            serial.update(s.as_mut(), edits).expect("serial update applies");
        }

        // Coalesced: everything queued, merged, applied in ONE run.
        let mut merged = IncrementalEngine::new(&src).expect("valid program");
        let mut q = DeltaQueue::new();
        for edits in &updates {
            merged.enqueue(&mut q, edits).expect("edits enqueue");
        }
        assert_eq!(q.updates_queued(), updates.len());
        assert!(
            q.cancelled_pairs() >= 2,
            "{kind:?}: the net-zero churn must annihilate in the queue \
             (saw {} cancelled pairs)",
            q.cancelled_pairs()
        );
        assert!(
            q.deduped() >= 2,
            "{kind:?}: restatements and duplicates must dedupe \
             (saw {} deduped)",
            q.deduped()
        );
        let mut s = kind.build(merged.dag().clone());
        merged.apply_queue(s.as_mut(), &mut q).expect("merged update applies");
        assert!(q.is_empty(), "queue fully drained");

        assert_eq!(
            db_image(&serial),
            db_image(&merged),
            "{kind:?}: coalesced net delta diverged from the serial stream"
        );
    }
}

// ---------------------------------------------------------------------------
// Executor level: coalesced run_stream ≡ union of serial runs, audited.
// ---------------------------------------------------------------------------

/// Mid-size layered instance with partial firing (chaos.rs shape).
fn instance(seed: u64) -> Instance {
    let dag = Arc::new(random::layered(random::LayeredParams {
        layers: 6,
        width: 7,
        max_in: 3,
        back_span: 2,
        seed,
    }));
    let mut inst = Instance::unit(dag.clone(), dag.sources().take(3).collect());
    for v in dag.nodes() {
        inst.fired[v.index()] = dag
            .children(v)
            .iter()
            .copied()
            .filter(|c| !(c.0 ^ seed as u32).is_multiple_of(3))
            .collect();
    }
    inst
}

/// Ground-truth safety auditor around any scheduler (chaos.rs pattern):
/// every pop is checked against reachability, across all stream restarts.
struct Audited {
    inner: Box<dyn Scheduler>,
    check: SafetyChecker,
}

impl Audited {
    fn new(kind: SchedulerKind, inst: &Instance) -> Audited {
        Audited {
            inner: kind.build(inst.dag.clone()),
            check: SafetyChecker::new(inst.dag.clone()),
        }
    }
}

impl Scheduler for Audited {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn start(&mut self, initial_active: &[NodeId]) {
        self.check.on_start(initial_active);
        self.inner.start(initial_active);
    }
    fn on_completed(&mut self, v: NodeId, fired: &[NodeId]) {
        self.check.on_complete(v, fired);
        self.inner.on_completed(v, fired);
    }
    fn pop_ready(&mut self) -> Option<NodeId> {
        let t = self.inner.pop_ready();
        if let Some(v) = t {
            self.check.on_pop(v);
        }
        t
    }
    fn is_quiescent(&self) -> bool {
        self.inner.is_quiescent()
    }
    fn cost(&self) -> CostMeter {
        self.inner.cost()
    }
    fn space_bytes(&self) -> usize {
        self.inner.space_bytes()
    }
    fn precompute_bytes(&self) -> usize {
        self.inner.precompute_bytes()
    }
    fn on_external_dispatch(&mut self, v: NodeId) {
        self.inner.on_external_dispatch(v);
    }
}

/// Counting task over the instance's ground-truth fired sets: `counts`
/// is the execution ledger.
fn counting_task(inst: &Instance, counts: Arc<Vec<AtomicU32>>) -> TryTaskFn {
    let fired_sets: Arc<Vec<Vec<NodeId>>> = Arc::new(inst.fired.clone());
    Arc::new(move |v, fired: &mut Vec<NodeId>| {
        counts[v.index()].fetch_add(1, Ordering::SeqCst);
        fired.extend_from_slice(&fired_sets[v.index()]);
        TaskOutcome::Done
    })
}

/// `k` deterministic pseudo-random dirty sets over the instance's dag.
fn dirty_sets(inst: &Instance, seed: u64, k: usize) -> Vec<Vec<NodeId>> {
    let n = inst.dag.node_count() as u32;
    (0..k as u32)
        .map(|i| {
            let mut set: Vec<NodeId> = inst
                .dag
                .nodes()
                .filter(|v| (v.0.wrapping_mul(131) ^ (seed as u32) ^ (i * 977)) % n.max(4) < 2)
                .collect();
            if set.is_empty() {
                set.push(NodeId((seed as u32 ^ i) % n));
            }
            set
        })
        .collect()
}

fn ledger(counts: &[AtomicU32]) -> (BTreeSet<u32>, u32) {
    let mut set = BTreeSet::new();
    let mut total = 0;
    for (i, c) in counts.iter().enumerate() {
        let n = c.load(Ordering::SeqCst);
        if n > 0 {
            set.insert(i as u32);
        }
        total += n;
    }
    (set, total)
}

fn fresh_counts(n: usize) -> Arc<Vec<AtomicU32>> {
    Arc::new((0..n).map(|_| AtomicU32::new(0)).collect())
}

#[test]
fn coalesced_stream_executes_union_of_serial_runs_for_all_schedulers() {
    for seed in [0x51u64, 0xE21, 0x90F] {
        let inst = instance(seed);
        let n = inst.dag.node_count();
        let updates: Vec<StreamUpdate> = dirty_sets(&inst, seed, 4)
            .into_iter()
            .map(StreamUpdate::now)
            .collect();
        let exec = Executor::with_config(ExecConfig::new(4));

        for kind in SCHEDS {
            // Serial: one audited scheduler across the whole stream.
            let serial_counts = fresh_counts(n);
            let mut s = Audited::new(kind, &inst);
            let serial_report = exec
                .run_stream_with(
                    &mut s,
                    &inst.dag,
                    &updates,
                    counting_task(&inst, serial_counts.clone()),
                    &StreamPolicy::serial(),
                    None,
                )
                .unwrap_or_else(|e| panic!("{kind:?} seed {seed:#x}: serial stream failed: {e}"));
            let (serial_set, serial_total) = ledger(&serial_counts);
            assert_eq!(serial_report.executed as u32, serial_total);

            // Coalesced: the whole backlog merges into one audited run.
            let merged_counts = fresh_counts(n);
            let mut s = Audited::new(kind, &inst);
            let merged_report = exec
                .run_stream_with(
                    &mut s,
                    &inst.dag,
                    &updates,
                    counting_task(&inst, merged_counts.clone()),
                    &StreamPolicy::coalesced(updates.len()),
                    None,
                )
                .unwrap_or_else(|e| panic!("{kind:?} seed {seed:#x}: coalesced stream failed: {e}"));
            let (merged_set, merged_total) = ledger(&merged_counts);

            assert_eq!(
                serial_set, merged_set,
                "{kind:?} seed {seed:#x}: coalesced execution set ≠ union of serial runs"
            );
            assert_eq!(
                merged_total, merged_set.len() as u32,
                "{kind:?} seed {seed:#x}: a single coalesced batch must run each node once"
            );
            assert!(
                merged_total <= serial_total,
                "{kind:?} seed {seed:#x}: coalescing must never execute more \
                 ({merged_total} vs serial {serial_total})"
            );
            assert_eq!(merged_report.batches, 1, "whole backlog fits one batch");
            assert_eq!(merged_report.coalesced, updates.len());
        }
    }
}

// ---------------------------------------------------------------------------
// Fault model: mid-stream panic inside a coalesced batch, journal resume.
// ---------------------------------------------------------------------------

#[test]
fn coalesced_stream_panic_resumes_to_serial_ledger_for_all_schedulers() {
    silence_injected_panics();
    for kind in SCHEDS {
        let seed = 0xFA11;
        let inst = instance(seed);
        let n = inst.dag.node_count();
        let updates: Vec<StreamUpdate> = dirty_sets(&inst, seed, 6)
            .into_iter()
            .map(StreamUpdate::now)
            .collect();
        let exec = Executor::with_config(ExecConfig::new(4));

        // Fault-free baselines: the serial stream pins the execution
        // *set*; a fault-free coalesced(3) run pins exact per-node counts
        // (batching is deterministic — all arrivals are at t=0, so both
        // the failed run and this baseline absorb 3 updates per batch).
        let policy = StreamPolicy::coalesced(3);
        let serial_counts = fresh_counts(n);
        let mut s = Audited::new(kind, &inst);
        exec.run_stream_with(
            &mut s,
            &inst.dag,
            &updates,
            counting_task(&inst, serial_counts.clone()),
            &StreamPolicy::serial(),
            None,
        )
        .expect("fault-free serial stream completes");
        let (expect_set, _) = ledger(&serial_counts);
        let base_counts = fresh_counts(n);
        let mut s = Audited::new(kind, &inst);
        exec.run_stream_with(
            &mut s,
            &inst.dag,
            &updates,
            counting_task(&inst, base_counts.clone()),
            &policy,
            None,
        )
        .expect("fault-free coalesced stream completes");
        let (base_set, _) = ledger(&base_counts);
        assert_eq!(base_set, expect_set, "{kind:?}: coalesced set ≠ serial set");

        // Panic the first execution of a node every scheduler must reach:
        // a node from the first update's dirty set.
        let victim = updates[0].initial[0];
        let counts = fresh_counts(n);
        let task = FaultPlan::new(seed)
            .with(Fault::PanicOnNode { node: victim })
            .wrap(counting_task(&inst, counts.clone()));
        let mut s = Audited::new(kind, &inst);
        let mut journal = UpdateJournal::new();

        let err = exec
            .run_stream_with(&mut s, &inst.dag, &updates, task.clone(), &policy, Some(&mut journal))
            .expect_err("injected panic must fail the stream");
        assert!(
            !journal.contains(victim),
            "{kind:?}: the panicking node must not be journaled as committed"
        );

        // Resume recipe from the StreamError docs: re-run the failing
        // batch's merged initial with the same journal and scheduler...
        exec.run_fallible(&mut s, &inst.dag, &err.failed_initial, task.clone(), Some(&mut journal))
            .unwrap_or_else(|e| panic!("{kind:?}: resume failed: {e}"));
        // ...then continue the stream after the absorbed updates.
        let next = err.completed.updates + err.failed_updates;
        assert!(next <= updates.len());
        exec.run_stream_with(
            &mut s,
            &inst.dag,
            &updates[next..],
            task,
            &policy,
            Some(&mut journal),
        )
        .unwrap_or_else(|e| panic!("{kind:?}: post-resume stream failed: {e}"));

        // The recovered ledger is bit-identical to the fault-free
        // coalesced run: same batching, same execution counts — nothing
        // lost to the panic, nothing double-run past the journal.
        let (got_set, _) = ledger(&counts);
        assert_eq!(
            got_set, expect_set,
            "{kind:?}: recovered stream diverged from the fault-free ledger"
        );
        for v in inst.dag.nodes() {
            assert_eq!(
                counts[v.index()].load(Ordering::SeqCst),
                base_counts[v.index()].load(Ordering::SeqCst),
                "{kind:?}: node {v} execution count diverged from the fault-free run"
            );
        }
    }
}
