//! Integration tests for the paper's theory (Lemmas 3/5/7, Theorems 2
//! and 9) on randomized instances, using the unit-step simulator.

use datalog_sched::dag::{random, NodeId};
use datalog_sched::sched::{Instance, LevelBased, Scheduler, SchedulerKind, TaskShape};
use datalog_sched::sim::{simulate_step, StepSimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Random layered instance with the requested task shapes.
fn random_instance(seed: u64, shape_mode: u8) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = Arc::new(random::layered(random::LayeredParams {
        layers: rng.gen_range(3..9),
        width: rng.gen_range(2..7),
        max_in: 3,
        back_span: 2,
        seed: seed ^ 0xABCD,
    }));
    let initial: Vec<NodeId> = dag.sources().collect();
    let mut inst = Instance::unit(dag.clone(), initial);
    for v in dag.nodes() {
        inst.fired[v.index()] = dag
            .children(v)
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.7))
            .collect();
        inst.shapes[v.index()] = match shape_mode {
            0 => TaskShape::Unit,
            1 => TaskShape::Parallel {
                work: rng.gen_range(1..20),
            },
            _ => {
                let work = rng.gen_range(1..20);
                let span = rng.gen_range(1..=work);
                TaskShape::WorkSpan { work, span }
            }
        };
    }
    inst
}

/// Lemma 3: unit tasks — LevelBased makespan <= w/P + L.
#[test]
fn lemma3_unit_tasks() {
    for seed in 0..25u64 {
        let inst = random_instance(seed, 0);
        let w = inst.active_work_units();
        let l = inst.dag.num_levels() as u64;
        for p in [1usize, 2, 3, 8] {
            let mut s = LevelBased::new(inst.dag.clone());
            let r = simulate_step(
                &mut s,
                &inst,
                &StepSimConfig {
                    processors: p,
                    audit: true,
                    batch_pops: false,
                },
            );
            let bound = w.div_ceil(p as u64) + l;
            assert!(
                r.makespan <= bound,
                "seed {seed} P={p}: {} > {bound}",
                r.makespan
            );
        }
    }
}

/// Lemma 5: fully parallelizable tasks — makespan <= w/P + L.
#[test]
fn lemma5_fully_parallel_tasks() {
    for seed in 100..120u64 {
        let inst = random_instance(seed, 1);
        let w = inst.active_work_units();
        let l = inst.dag.num_levels() as u64;
        for p in [1usize, 4, 16] {
            let mut s = LevelBased::new(inst.dag.clone());
            let r = simulate_step(
                &mut s,
                &inst,
                &StepSimConfig {
                    processors: p,
                    audit: true,
                    batch_pops: false,
                },
            );
            let bound = w.div_ceil(p as u64) + l;
            assert!(
                r.makespan <= bound,
                "seed {seed} P={p}: {} > {bound}",
                r.makespan
            );
        }
    }
}

/// Lemma 7: arbitrary tasks — makespan <= w/P + sum_i S_i.
#[test]
fn lemma7_arbitrary_tasks() {
    for seed in 200..220u64 {
        let inst = random_instance(seed, 2);
        let w = inst.active_work_units();
        let sum_spans: u64 = inst.level_spans().iter().sum();
        for p in [1usize, 4, 8] {
            let mut s = LevelBased::new(inst.dag.clone());
            let r = simulate_step(
                &mut s,
                &inst,
                &StepSimConfig {
                    processors: p,
                    audit: true,
                    batch_pops: false,
                },
            );
            let bound = w.div_ceil(p as u64) + sum_spans;
            assert!(
                r.makespan <= bound,
                "seed {seed} P={p}: {} > {bound}",
                r.makespan
            );
        }
    }
}

/// Theorem 9: on the Figure 2 instance the LB/exact ratio grows with L,
/// and the analytic forms hold exactly.
#[test]
fn theorem9_tight_example() {
    use datalog_sched::traces::adversarial::figure2;
    let mut last_ratio = 0.0;
    for l in [8u32, 16, 32, 64] {
        let inst = figure2(l);
        let cfg = StepSimConfig {
            processors: l as usize,
            audit: true,
            batch_pops: false,
        };
        let mut lb = LevelBased::new(inst.dag.clone());
        let m_lb = simulate_step(&mut lb, &inst, &cfg).makespan;
        let mut ex = SchedulerKind::ExactGreedy.build(inst.dag.clone());
        let m_ex = simulate_step(ex.as_mut(), &inst, &cfg).makespan;
        // LevelBased: level i waits for k_i (span L-i+1): total
        // L + sum_{i=2..L}(L-i+1) ... lower-bounded by the sum alone.
        assert!(
            m_lb as f64 >= (l as f64) * (l as f64 - 1.0) / 2.0,
            "L={l}: LB {m_lb} below the Θ(L²) floor"
        );
        // Exact greedy achieves Θ(L + M) = Θ(2L).
        assert!(
            m_ex <= 2 * l as u64,
            "L={l}: exact {m_ex} above the Θ(L) schedule"
        );
        let ratio = m_lb as f64 / m_ex as f64;
        assert!(ratio > last_ratio, "ratio must grow with L");
        last_ratio = ratio;
    }
}

/// Theorem 2: LevelBased scheduling cost O(n + L) and tracked space O(n),
/// across the random instances.
#[test]
fn theorem2_cost_and_space() {
    for seed in 300..330u64 {
        let inst = random_instance(seed, 0);
        let mut s = LevelBased::new(inst.dag.clone());
        let r = simulate_step(
            &mut s,
            &inst,
            &StepSimConfig {
                processors: 4,
                audit: false,
                batch_pops: false,
            },
        );
        let n = r.executed as u64;
        let l = inst.dag.num_levels() as u64;
        let c = s.cost();
        assert!(
            c.bucket_ops <= 3 * n + l + 1,
            "seed {seed}: {} bucket ops for n={n}, L={l}",
            c.bucket_ops
        );
        assert!(s.peak_tracked() as u64 <= n.max(1));
        assert_eq!(c.ancestor_queries, 0, "LevelBased never queries ancestry");
    }
}
