//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen_range`,
//! `gen_bool` and `gen`. The generator is xoshiro256** (public-domain
//! reference by Blackman/Vigna) seeded through SplitMix64 — deterministic
//! per seed, which is all the trace generators and property tests need.
//! Streams differ from upstream `rand`, so any goldens derived from seeds
//! are internal to this repository.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native output.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the output type
/// (rather than an associated type) so the expected result type drives
/// integer-literal inference, matching upstream `rand`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` via the widening-multiply trick.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// The high-level sampling helpers, blanket-implemented for any core rng.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }

    #[allow(clippy::should_implement_trait)] // upstream rand's method name
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the workspace's deterministic standard generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(1u32..=5);
            assert!((1..=5).contains(&y));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_f64_in_unit_interval_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "skewed: {below_half}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
