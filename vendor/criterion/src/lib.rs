//! Offline stand-in for the `criterion` crate.
//!
//! The bench files (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`/`iter_with_setup`) compile and run against this
//! harness unchanged. Measurement is deliberately simple: after a warm-up,
//! each sample times a fixed iteration batch and the harness reports
//! min / mean / max nanoseconds per iteration on stdout — enough to
//! compare configurations on one machine, with none of criterion's
//! statistics, HTML reports, or baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration, one entry per sample.
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            per_iter_ns: Vec::with_capacity(samples),
        }
    }

    /// Time `routine` repeatedly. Batch size is chosen so one sample takes
    /// roughly a millisecond, bounding total harness time per benchmark.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + batch sizing: run until ~1 ms or 1000 iterations.
        let t0 = Instant::now();
        let mut warmup_iters = 0u64;
        while t0.elapsed() < Duration::from_millis(1) && warmup_iters < 1000 {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = t0.elapsed().as_nanos() as f64 / warmup_iters as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 10_000);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.per_iter_ns
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Time `routine` on fresh state from `setup`; setup time is excluded.
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        for _ in 0..self.samples.max(2) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.per_iter_ns.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.per_iter_ns.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let min = self.per_iter_ns.iter().cloned().fold(f64::MAX, f64::min);
        let max = self.per_iter_ns.iter().cloned().fold(f64::MIN, f64::max);
        let mean = self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len() as f64;
        println!(
            "{label:<50} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "criterion requires sample_size >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    pub fn finish(self) {}
}

/// Harness entry point; one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(20);
        f(&mut b);
        b.report(&id.id);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u64;
        g.bench_function(BenchmarkId::from_parameter("id"), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.bench_function("setup", |b| {
            b.iter_with_setup(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| black_box(v.len()),
            )
        });
        assert!(setups >= 2);
    }
}
