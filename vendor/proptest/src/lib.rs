//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `any::<T>()`, [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Cases are
//! generated from a deterministic per-test seed (FNV of the test name ×
//! case index) so CI failures reproduce locally. There is **no shrinking**:
//! a failing case reports its case number and message as-is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run aborts with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject,
}

pub mod test_runner {
    /// Runner configuration (only the knob the workspace sets).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

/// A generator of test inputs. Object-safe so `prop_oneof!` can box
/// alternatives; combinators require `Self: Sized`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!` so its
    /// arms unify without casts that defeat inference).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

/// Uniform choice among boxed alternatives — built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `Vec` strategy with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi_exclusive: usize,
    }

    pub fn vec<S: Strategy>(
        element: S,
        size: impl std::ops::RangeBounds<usize>,
    ) -> VecStrategy<S> {
        use std::ops::Bound;
        let lo = match size.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi_exclusive = match size.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => lo.max(1) * 16,
        };
        assert!(lo < hi_exclusive, "empty vec size range");
        VecStrategy {
            element,
            lo,
            hi_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lo..self.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drive one `proptest!` test body: draw cases, retry rejects, panic on
/// the first failure with its case number.
pub fn run_cases<F>(config: &test_runner::Config, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // FNV-1a over the test name: per-test deterministic stream.
    let mut seed = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let mut successes = 0u32;
    let mut attempts = 0u64;
    let max_attempts = config.cases as u64 * 64;
    while successes < config.cases {
        let mut rng = StdRng::seed_from_u64(seed ^ attempts.wrapping_mul(0x9E3779B97F4A7C15));
        match body(&mut rng) {
            Ok(()) => successes += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at attempt {attempts}: {msg}")
            }
        }
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "proptest {name}: too many rejects ({successes}/{} cases after {attempts} attempts)",
            config.cases
        );
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Strategy,
    };
    pub use crate::{Arbitrary, TestCaseError};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(&$cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..9), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_oneof(v in prop_oneof![
            (1usize..4).prop_map(|n| vec![0u8; n]),
            (4usize..8).prop_map(|n| vec![1u8; n]),
        ]) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x == v[0]));
        }

        #[test]
        fn assume_rejects_and_still_converges(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn collection_vec_obeys_bounds(v in crate::collection::vec((0usize..6, any::<bool>()), 0..8)) {
            prop_assert!(v.len() < 8);
            for (x, _) in v {
                prop_assert!(x < 6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_context() {
        crate::run_cases(
            &crate::test_runner::Config::with_cases(4),
            "always_fails",
            |_| Err(crate::TestCaseError::Fail("boom".into())),
        );
    }
}
