//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — MPMC channels with cloneable senders
//! *and* receivers plus disconnect semantics, which is what the
//! executor's work/completion queues need and what `std::sync::mpsc`
//! cannot give (its receiver is single-consumer). Two flavours:
//!
//! * [`channel::unbounded`] — never blocks the sender.
//! * [`channel::bounded`] — a capacity-limited queue whose `send` blocks
//!   while the queue is full: the backpressure primitive the batched
//!   executor uses so a fast coordinator cannot run arbitrarily far
//!   ahead of slow workers.
//!
//! Built on `Mutex<VecDeque>` + two `Condvar`s; throughput is adequate
//! for work queues whose items are whole task batches.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or the channel disconnects.
        ready: Condvar,
        /// Signalled when space frees up in a bounded channel.
        vacancy: Condvar,
        /// `usize::MAX` encodes "unbounded".
        cap: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable. The channel disconnects for receivers when
    /// the last sender drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC). The channel disconnects for
    /// senders when the last receiver drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error on send: all receivers dropped. Carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error on recv: channel empty and all senders dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on [`Receiver::recv_timeout`]: either nothing arrived within
    /// the timeout, or the channel disconnected while waiting.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Error on [`Sender::send_timeout`]: the queue stayed full for the
    /// whole timeout, or every receiver dropped. Carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        Timeout(T),
        Disconnected(T),
    }

    fn with_cap<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
            vacancy: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(usize::MAX)
    }

    /// A bounded MPMC channel holding at most `cap` items; `send` blocks
    /// while the queue is full (backpressure). `cap` must be ≥ 1 —
    /// rendezvous (zero-capacity) channels are not supported.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        with_cap(cap)
    }

    impl<T> Sender<T> {
        /// Queue `value`, blocking while a bounded channel is at capacity.
        /// Fails (returning the value) once every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.items.len() < self.shared.cap {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                state = self.shared.vacancy.wait(state).unwrap();
            }
        }

        /// Block until the queue has room, every receiver is gone, or
        /// `timeout` elapses — lets a deadline-armed producer keep the
        /// cheap condvar-based backpressure path instead of degrading to
        /// a sleep-poll loop.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if state.items.len() < self.shared.cap {
                    state.items.push_back(value);
                    drop(state);
                    self.shared.ready.notify_one();
                    return Ok(());
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(SendTimeoutError::Timeout(value));
                };
                state = self.shared.vacancy.wait_timeout(state, remaining).unwrap().0;
            }
        }

        /// Non-blocking send: `Err` with the value when the queue is full
        /// or every receiver dropped.
        pub fn try_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 || state.items.len() >= self.shared.cap {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.vacancy.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Block until an item arrives, every sender is gone, or `timeout`
        /// elapses — the primitive behind the executor's stall watchdog,
        /// which must never wait on a wedged pipeline forever.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.vacancy.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                state = self.shared.ready.wait_timeout(state, remaining).unwrap().0;
            }
        }

        /// Non-blocking pop, `None` when currently empty (even if senders
        /// remain).
        pub fn try_recv(&self) -> Option<T> {
            let item = self.shared.queue.lock().unwrap().items.pop_front();
            if item.is_some() {
                self.shared.vacancy.notify_one();
            }
            item
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                // Wake blocked senders so they observe the disconnect.
                self.shared.vacancy.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = channel::unbounded::<u32>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_send_from_other_thread() {
        let (tx, rx) = channel::unbounded::<u32>();
        let h = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let (tx, rx) = channel::unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn recv_fails_after_senders_drop_and_drain() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = channel::bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(channel::SendError(3)));
        // A blocked send completes once the consumer makes room.
        let producer = thread::spawn(move || tx.send(3).map_err(|_| ()));
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        producer.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_blocked_sender_unblocks_on_receiver_drop() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let producer = thread::spawn(move || tx.send(2));
        thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(channel::SendError(2)));
    }

    #[test]
    fn send_timeout_times_out_full_then_succeeds_on_room() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(
            tx.send_timeout(2, std::time::Duration::from_millis(30)),
            Err(channel::SendTimeoutError::Timeout(2))
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(25));
        // A waiting send completes as soon as the consumer makes room.
        let producer = {
            let tx = tx.clone();
            thread::spawn(move || tx.send_timeout(2, std::time::Duration::from_secs(10)))
        };
        thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(producer.join().unwrap(), Ok(()));
        drop(rx);
        assert_eq!(
            tx.send_timeout(3, std::time::Duration::from_secs(5)),
            Err(channel::SendTimeoutError::Disconnected(3))
        );
    }

    #[test]
    fn bounded_capacity_is_enforced() {
        let (tx, rx) = channel::bounded(3);
        for i in 0..3 {
            tx.try_send(i).unwrap();
        }
        assert!(tx.try_send(99).is_err());
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.try_recv(), Some(0));
        tx.try_send(99).unwrap();
    }
}
