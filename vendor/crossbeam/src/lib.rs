//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — an unbounded MPMC channel with cloneable
//! senders *and* receivers plus disconnect semantics, which is what the
//! executor's work/completion queues need and what `std::sync::mpsc`
//! cannot give (its receiver is single-consumer). Built on
//! `Mutex<VecDeque>` + `Condvar`; throughput is adequate for a work queue
//! whose items are whole tasks.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable. The channel disconnects for receivers when
    /// the last sender drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC). The channel disconnects for
    /// senders when the last receiver drops.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error on send: all receivers dropped. Carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error on recv: channel empty and all senders dropped.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking pop, `None` when currently empty (even if senders
        /// remain).
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fifo_within_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn multi_producer_multi_consumer_delivers_everything() {
        let (tx, rx) = channel::unbounded();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn recv_fails_after_senders_drop_and_drain() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }
}
