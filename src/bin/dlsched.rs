//! `dlsched` — the command-line face of the library.
//!
//! ```text
//! dlsched gen <id|all> [dir]          regenerate Table-I trace JSON files
//! dlsched stats <trace.json>          Table-I statistics of a trace file
//! dlsched simulate <trace.json|#id> [--sched S] [--procs P]
//!                                     simulate a trace and report
//!                                     makespan/overhead/utilization
//! dlsched gantt <#id|figure2:L> <out.svg> [--sched S] [--procs P]
//!                                     render a schedule timeline
//! ```
//!
//! Scheduler names: `levelbased`, `lbl:<k>`, `logicblox`, `signal`,
//! `hybrid`, `hybrid-bg:<slice>`, `exact`.

use datalog_sched::sched::{CostPrices, SchedulerKind};
use datalog_sched::sim::{record_timeline, simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset, trace_stats, JobTrace};
use incr_sched::Instance;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("gantt") => cmd_gantt(&args[1..]),
        _ => {
            eprintln!(
                "usage: dlsched <gen|stats|simulate|gantt> ...\n\
                 see the crate docs (src/bin/dlsched.rs) for details"
            );
            2
        }
    };
    std::process::exit(code);
}

fn parse_sched(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s {
        "levelbased" | "lb" => SchedulerKind::LevelBased,
        "logicblox" | "lbx" => SchedulerKind::LogicBlox,
        "signal" => SchedulerKind::SignalPropagation,
        "hybrid" => SchedulerKind::Hybrid,
        "exact" => SchedulerKind::ExactGreedy,
        _ if s.starts_with("lbl:") => SchedulerKind::Lookahead(
            s[4..].parse().map_err(|e| format!("bad k in {s:?}: {e}"))?,
        ),
        _ if s.starts_with("hybrid-bg:") => SchedulerKind::HybridBackground(
            s[10..].parse().map_err(|e| format!("bad slice in {s:?}: {e}"))?,
        ),
        _ => return Err(format!("unknown scheduler {s:?}")),
    })
}

/// `#id`, `figure2:L`, or a JSON trace path.
fn load_instance(spec: &str) -> Result<(String, Instance), String> {
    if let Some(id) = spec.strip_prefix('#') {
        let id: u32 = id.parse().map_err(|e| format!("bad trace id: {e}"))?;
        if !(1..=11).contains(&id) {
            return Err(format!("no preset trace #{id} (valid: #1-#11)"));
        }
        let (inst, _) = generate(&preset(id));
        return Ok((format!("trace {spec}"), inst));
    }
    if let Some(l) = spec.strip_prefix("figure2:") {
        let l: u32 = l.parse().map_err(|e| format!("bad L: {e}"))?;
        return Ok((
            format!("figure2({l})"),
            datalog_sched::traces::adversarial::figure2(l),
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("read {spec}: {e}"))?;
    let inst = JobTrace::from_json(&text)
        .map_err(|e| e.to_string())?
        .to_instance()
        .map_err(|e| e.to_string())?;
    Ok((spec.to_string(), inst))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_gen(args: &[String]) -> i32 {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let dir = args.get(1).map(String::as_str).unwrap_or("traces");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create {dir}");
        return 1;
    }
    let ids: Vec<u32> = if which == "all" {
        (1..=11).collect()
    } else {
        match which.trim_start_matches('#').parse() {
            Ok(i) if (1..=11).contains(&i) => vec![i],
            Ok(i) => {
                eprintln!("no preset trace #{i} (valid: #1-#11)");
                return 2;
            }
            Err(e) => {
                eprintln!("bad id {which:?}: {e}");
                return 2;
            }
        }
    };
    for id in ids {
        let spec = preset(id);
        let (inst, rep) = generate(&spec);
        let path = format!("{dir}/trace{id:02}.json");
        if let Err(e) = std::fs::write(&path, JobTrace::from_instance(spec.name, &inst).to_json())
        {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!(
            "{path}: {} nodes, {} active (target {})",
            spec.nodes, rep.achieved_active, spec.active
        );
    }
    0
}

fn cmd_stats(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched stats <trace.json|#id>");
        return 2;
    };
    match load_instance(spec) {
        Ok((name, inst)) => {
            let st = trace_stats(&inst);
            println!("{name}:");
            println!("  nodes {}  edges {}  levels {}", st.nodes, st.edges, st.levels);
            println!(
                "  initial {}  active {}  descendant pool {} ({} activated)",
                st.initial_tasks, st.active_jobs, st.total_descendants, st.activated_descendants
            );
            println!("  widest level: {} nodes", st.max_level_width);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched simulate <trace.json|#id> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_event(
                s.as_mut(),
                &inst,
                &EventSimConfig {
                    processors: procs,
                    ..Default::default()
                },
            );
            println!("{name} under {} on {procs} processors:", kind.label());
            println!("  makespan        {:.6} s", r.makespan);
            println!("  sched overhead  {:.6} s", r.sched_overhead);
            println!("  tasks executed  {}", r.executed);
            println!("  utilization     {:.1}%", r.utilization(procs) * 100.0);
            println!("  peak run state  {} B", r.peak_space);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_gantt(args: &[String]) -> i32 {
    let (Some(spec), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: dlsched gantt <#id|figure2:L|trace.json> <out.svg> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let t = record_timeline(s.as_mut(), &inst, procs, &CostPrices::default());
            let title = format!("{} on {name} (P={procs})", kind.label());
            if std::fs::write(out, t.to_svg(&title)).is_err() {
                eprintln!("cannot write {out}");
                return 1;
            }
            println!("{out}: makespan {:.4}, {} spans", t.makespan, t.spans.len());
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}
