//! `dlsched` — the command-line face of the library.
//!
//! ```text
//! dlsched gen <id|all> [dir]          regenerate Table-I trace JSON files
//! dlsched stats <trace.json>          Table-I statistics of a trace file
//! dlsched simulate <trace.json|#id> [--sched S] [--procs P]
//!                                     simulate a trace and report
//!                                     makespan/overhead/utilization
//! dlsched gantt <#id|figure2:L> <out.svg> [--sched S] [--procs P]
//!                                     render a schedule timeline
//! dlsched trace [--preset N|<spec>] [--sched S] [--procs P] [-o out.trace.json]
//!                                     record a Perfetto-loadable trace of a
//!                                     simulated run plus a real threaded
//!                                     replay (scheduler + simulator +
//!                                     executor layers)
//! dlsched stream [--nodes V] [--sched S] [--updates U] [--update-size K]
//!                [--procs P] [--batch B] [--task-us D] [--shards N]
//!                                     drive a stream of K-node updates over a
//!                                     V-node DAG through one warm worker pool
//!                                     and report updates/sec + tasks/sec;
//!                                     --shards N hash-partitions the stream
//!                                     across N scheduler+executor instances
//!                                     (P workers each) running concurrently
//! dlsched stream --datalog [--maintenance dred|fbf] [--updates U]
//!                [--update-size K] [--delete-pct D] [--coalesce C]
//!                [--sched S] [--shards N]
//!                                     drive the MulVAL-style attack-graph
//!                                     workload through a real engine with the
//!                                     chosen maintenance backend and report
//!                                     sustained updates/sec (+ deletions
//!                                     absorbed by derivation counts)
//! dlsched explain [--preset N|<spec>] [--sched S] [--procs P]
//!                 [-o explain.json] [--trace-out out.trace.json]
//!                                     run an update with per-task tracing and
//!                                     attribute its latency: scheduler vs
//!                                     wait (run/eval) vs commit vs other,
//!                                     plus the concrete critical chain and a
//!                                     flow-annotated Perfetto trace
//! dlsched top [--nodes V] [--updates U] [--update-size K] [--procs P]
//!             [--coalesce C] [--budget-us B] [--period-us T]
//!             [--interval-ms I] [--frames N] [--plain]
//!                                     drive an open-loop stream and render a
//!                                     live text view of queue depth, SLO
//!                                     percentiles, burn rate, coalesce rate,
//!                                     worker occupancy and retries
//! dlsched query <program.dl|-> <pattern> [--add F]* [--remove F]* [--sched S]
//!               [--shards N] [--maintenance dred|fbf]
//!                                     materialize a Datalog program, pin a
//!                                     snapshot, optionally run edits, then
//!                                     answer a point/scan query (`path(a, ?)`)
//!                                     against both the pinned snapshot and the
//!                                     head, printing rows + their epochs;
//!                                     --shards N hash-partitions the relations
//!                                     across N engine instances and answers
//!                                     from the ownership-filtered union
//! ```
//!
//! Scheduler names: `levelbased`, `lbl:<k>`, `logicblox`, `signal`,
//! `hybrid`, `hybrid-bg:<slice>`, `exact`.

use datalog_sched::datalog::MaintenanceStrategy;
use datalog_sched::runtime::executor::{infallible, StreamPolicy, StreamUpdate};
use datalog_sched::runtime::{analyze, flow_events, ExecConfig, Executor, ShardedExecutor, TaskFn};
use datalog_sched::sched::{CostPrices, Observed, SchedulerKind};
use datalog_sched::sim::{record_timeline, simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset, trace_stats, JobTrace};
use incr_obs::export::{chrome_trace_json, chrome_trace_with, validate_chrome_trace};
use incr_obs::json::obj;
use incr_obs::trace;
use incr_obs::Json;
use incr_sched::Instance;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("gantt") => cmd_gantt(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => {
            eprintln!(
                "usage: dlsched <gen|stats|simulate|gantt|trace|stream|explain|top|query> ...\n\
                 see the crate docs (src/bin/dlsched.rs) for details"
            );
            2
        }
    };
    std::process::exit(code);
}

fn parse_sched(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s {
        "levelbased" | "lb" => SchedulerKind::LevelBased,
        "logicblox" | "lbx" => SchedulerKind::LogicBlox,
        "signal" => SchedulerKind::SignalPropagation,
        "hybrid" => SchedulerKind::Hybrid,
        "exact" => SchedulerKind::ExactGreedy,
        _ if s.starts_with("lbl:") => SchedulerKind::Lookahead(
            s[4..].parse().map_err(|e| format!("bad k in {s:?}: {e}"))?,
        ),
        _ if s.starts_with("hybrid-bg:") => SchedulerKind::HybridBackground(
            s[10..].parse().map_err(|e| format!("bad slice in {s:?}: {e}"))?,
        ),
        _ => return Err(format!("unknown scheduler {s:?}")),
    })
}

/// `#id`, `figure2:L`, or a JSON trace path.
fn load_instance(spec: &str) -> Result<(String, Instance), String> {
    if let Some(id) = spec.strip_prefix('#') {
        let id: u32 = id.parse().map_err(|e| format!("bad trace id: {e}"))?;
        if !(1..=11).contains(&id) {
            return Err(format!("no preset trace #{id} (valid: #1-#11)"));
        }
        let (inst, _) = generate(&preset(id));
        return Ok((format!("trace {spec}"), inst));
    }
    if let Some(l) = spec.strip_prefix("figure2:") {
        let l: u32 = l.parse().map_err(|e| format!("bad L: {e}"))?;
        return Ok((
            format!("figure2({l})"),
            datalog_sched::traces::adversarial::figure2(l),
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("read {spec}: {e}"))?;
    let inst = JobTrace::from_json(&text)
        .map_err(|e| e.to_string())?
        .to_instance()
        .map_err(|e| e.to_string())?;
    Ok((spec.to_string(), inst))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_gen(args: &[String]) -> i32 {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let dir = args.get(1).map(String::as_str).unwrap_or("traces");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create {dir}");
        return 1;
    }
    let ids: Vec<u32> = if which == "all" {
        (1..=11).collect()
    } else {
        match which.trim_start_matches('#').parse() {
            Ok(i) if (1..=11).contains(&i) => vec![i],
            Ok(i) => {
                eprintln!("no preset trace #{i} (valid: #1-#11)");
                return 2;
            }
            Err(e) => {
                eprintln!("bad id {which:?}: {e}");
                return 2;
            }
        }
    };
    for id in ids {
        let spec = preset(id);
        let (inst, rep) = generate(&spec);
        let path = format!("{dir}/trace{id:02}.json");
        if let Err(e) = std::fs::write(&path, JobTrace::from_instance(spec.name, &inst).to_json())
        {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!(
            "{path}: {} nodes, {} active (target {})",
            spec.nodes, rep.achieved_active, spec.active
        );
    }
    0
}

fn cmd_stats(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched stats <trace.json|#id>");
        return 2;
    };
    match load_instance(spec) {
        Ok((name, inst)) => {
            let st = trace_stats(&inst);
            println!("{name}:");
            println!("  nodes {}  edges {}  levels {}", st.nodes, st.edges, st.levels);
            println!(
                "  initial {}  active {}  descendant pool {} ({} activated)",
                st.initial_tasks, st.active_jobs, st.total_descendants, st.activated_descendants
            );
            println!("  widest level: {} nodes", st.max_level_width);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched simulate <trace.json|#id> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_event(
                s.as_mut(),
                &inst,
                &EventSimConfig {
                    processors: procs,
                    ..Default::default()
                },
            );
            println!("{name} under {} on {procs} processors:", kind.label());
            println!("  makespan        {:.6} s", r.makespan);
            println!("  sched overhead  {:.6} s", r.sched_overhead);
            println!("  tasks executed  {}", r.executed);
            println!("  utilization     {:.1}%", r.utilization(procs) * 100.0);
            println!("  peak run state  {} B", r.peak_space);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Record one instance end to end: a discrete-event simulation (simulated
/// time, `sim` + `sched` categories) followed by a real thread-pool
/// replay of the same instance (`exec` + `sched` categories), exported as
/// one Chrome trace-event file. Perfetto then shows the simulated
/// makespan and the real wall-clock run side by side.
fn cmd_trace(args: &[String]) -> i32 {
    let spec = if let Some(p) = flag(args, "--preset") {
        format!("#{}", p.trim_start_matches('#'))
    } else if let Some(first) = args.first().filter(|a| !a.starts_with('-')) {
        first.to_string()
    } else {
        eprintln!(
            "usage: dlsched trace [--preset N|<trace.json|#id|figure2:L>] \
             [--sched S] [--procs P] [-o out.trace.json]"
        );
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    let out = flag(args, "-o")
        .or_else(|| flag(args, "--out"))
        .map(String::from)
        .unwrap_or_else(|| {
            format!(
                "results/{}.trace.json",
                spec.trim_start_matches('#').replace([':', '/'], "_")
            )
        });

    let (name, inst) = match load_instance(&spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    trace::clear();
    incr_obs::registry().reset();
    trace::enable();
    trace::set_thread_name("simulation-driver");

    // Pass 1: discrete-event simulation under the observed scheduler —
    // `sim` events on simulated lanes, `sched` spans on this thread.
    let mut sim_sched = Observed::new(kind.build(inst.dag.clone()));
    let sim = simulate_event(
        &mut sim_sched,
        &inst,
        &EventSimConfig {
            processors: procs,
            ..Default::default()
        },
    );

    // Pass 2: real threaded replay of the same active graph — `exec`
    // spans on worker threads, more `sched` spans on the coordinator.
    let mut exec_sched = Observed::new(kind.build(inst.dag.clone()));
    let fired: Arc<Vec<Vec<incr_dag::NodeId>>> = Arc::new(inst.fired.clone());
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        out.extend_from_slice(&fired[v.index()]);
    });
    let report = match Executor::new(procs).run(&mut exec_sched, &inst.dag, &inst.initial_active, task)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return 1;
        }
    };

    trace::disable();
    let threads = trace::drain();
    let dropped: u64 = threads.iter().map(|t| t.dropped).sum();
    let text = chrome_trace_json(&threads);
    let stats = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("internal error: emitted trace failed validation: {e}");
            return 1;
        }
    };

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create {}", dir.display());
            return 1;
        }
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }

    println!("{name} under {} on {procs} processors:", kind.label());
    println!("  simulated makespan  {:.6} s", sim.makespan);
    println!("  simulated overhead  {:.6} s", sim.sched_overhead);
    println!("  replay wall-clock   {:.6} s ({} tasks)", report.wall_seconds, report.executed);
    println!(
        "  trace               {} events ({} spans, {} counters, {} instants)",
        stats.total_events, stats.spans, stats.counters, stats.instants
    );
    println!("  categories          {}", stats.categories.join(", "));
    if dropped > 0 {
        println!("  dropped             {dropped} events (per-thread buffer cap)");
    }
    println!("  wrote {out} — open in https://ui.perfetto.dev");
    0
}

/// Drive a stream of small updates over a big DAG through one warm worker
/// pool — the sustained-throughput scenario the batched dispatch core is
/// built for. Per-update dispatch cost should track the update's active
/// set, not the DAG size.
/// The `stream --datalog` mode: instead of the synthetic DAG simulator,
/// drive the MulVAL-style dynamic attack-graph workload through a real
/// engine — coalescing queue, incremental maintenance under the chosen
/// backend (`--maintenance dred|fbf`), optional sharding — and report
/// sustained updates/sec plus the counting backend's absorption
/// counters.
fn run_datalog_stream(args: &[String]) -> i32 {
    use datalog_sched::datalog::{DeltaQueue, EvalOptions, IncrementalEngine, ShardedEngine};
    use incr_bench::{AttackConfig, AttackWorkload};

    let updates: usize = flag(args, "--updates").and_then(|v| v.parse().ok()).unwrap_or(200);
    let update_size: usize =
        flag(args, "--update-size").and_then(|v| v.parse().ok()).unwrap_or(20);
    let delete_pct: u64 = flag(args, "--delete-pct").and_then(|v| v.parse().ok()).unwrap_or(70);
    let coalesce: usize =
        flag(args, "--coalesce").and_then(|v| v.parse().ok()).unwrap_or(4).max(1);
    let shards: usize = flag(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(1);
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let strategy = match MaintenanceStrategy::parse(flag(args, "--maintenance").unwrap_or("dred"))
    {
        Some(s) => s,
        None => {
            eprintln!("unknown maintenance strategy (expected dred|fbf)");
            return 2;
        }
    };

    let mut w = AttackWorkload::new(&AttackConfig::smoke());
    let opts = EvalOptions::sequential().with_maintenance(strategy);
    let reg = incr_obs::registry();
    let saved0 = reg.counter("datalog.fbf.count_saved_deletes").get();

    let (wall, applied, tasks) = if shards > 1 {
        let mut e = match ShardedEngine::with_options(w.program(), shards, opts, |d| kind.build(d))
        {
            Ok(e) => e,
            Err(err) => {
                eprintln!("attack program failed to materialize: {err}");
                return 1;
            }
        };
        let t0 = std::time::Instant::now();
        let mut applied = 0usize;
        for _ in 0..updates {
            let edits = w.batch(update_size, delete_pct);
            if let Err(err) = e.update(&edits) {
                eprintln!("sharded update failed: {err}");
                return 1;
            }
            applied += 1;
        }
        (t0.elapsed().as_secs_f64(), applied, 0usize)
    } else {
        let mut e = match IncrementalEngine::with_options(w.program(), opts) {
            Ok(e) => e,
            Err(err) => {
                eprintln!("attack program failed to materialize: {err}");
                return 1;
            }
        };
        let mut sched = kind.build(e.dag().clone());
        let mut q = DeltaQueue::new();
        let t0 = std::time::Instant::now();
        let mut applied = 0usize;
        let mut tasks = 0usize;
        for u in 0..updates {
            let edits = w.batch(update_size, delete_pct);
            if let Err(err) = e.enqueue(&mut q, &edits) {
                eprintln!("enqueue failed: {err}");
                return 1;
            }
            if (u + 1) % coalesce == 0 || u + 1 == updates {
                match e.apply_queue(sched.as_mut(), &mut q) {
                    Ok(rep) => tasks += rep.tasks_executed,
                    Err(err) => {
                        eprintln!("update failed: {err}");
                        return 1;
                    }
                }
                applied += 1;
            }
        }
        (t0.elapsed().as_secs_f64(), applied, tasks)
    };

    println!(
        "attack-graph stream: {updates} updates x {update_size} edits ({delete_pct}% deletes), \
         coalesce {coalesce}, {} maintenance, {} shard(s) under {}:",
        strategy,
        shards,
        kind.label()
    );
    println!("  batches applied  {applied}");
    if tasks > 0 {
        println!("  tasks executed   {tasks}");
    }
    println!("  wall time        {wall:.4} s");
    println!("  updates/sec      {:.0}", updates as f64 / wall.max(f64::MIN_POSITIVE));
    let saved = reg.counter("datalog.fbf.count_saved_deletes").get() - saved0;
    if strategy == MaintenanceStrategy::Fbf {
        println!("  deletions absorbed by counts  {saved}");
    }
    0
}

fn cmd_stream(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--datalog") {
        return run_datalog_stream(args);
    }
    let nodes: usize = flag(args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let updates: usize = flag(args, "--updates").and_then(|v| v.parse().ok()).unwrap_or(100);
    let update_size: usize = flag(args, "--update-size").and_then(|v| v.parse().ok()).unwrap_or(10);
    let procs: usize = flag(args, "--procs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let batch: usize = flag(args, "--batch").and_then(|v| v.parse().ok()).unwrap_or(256);
    let task_us: u64 = flag(args, "--task-us").and_then(|v| v.parse().ok()).unwrap_or(0);
    let shards: usize = flag(args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(1);
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    // Fixed-depth layered DAG: growing V grows the width, not the depth,
    // so a K-node update touches a V-independent slice of the graph.
    let layers = 20u32;
    let width = (nodes as u32 / layers).max(1);
    let dag = Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
        layers,
        width,
        max_in: 4,
        back_span: 2,
        seed: 42,
    }));
    let n = dag.node_count();

    // Deterministic per-update dirty sets drawn from the first layer.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut lcg = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let stream: Vec<Vec<incr_dag::NodeId>> = (0..updates)
        .map(|_| {
            (0..update_size)
                .map(|_| incr_dag::NodeId((lcg() % width.min(n as u32) as usize) as u32))
                .collect()
        })
        .collect();

    let dag2 = dag.clone();
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        if task_us > 0 {
            let t0 = std::time::Instant::now();
            while t0.elapsed().as_micros() < task_us as u128 {
                std::hint::spin_loop();
            }
        }
        // Fire roughly half the out-edges: partial incremental change.
        for (i, &c) in dag2.children(v).iter().enumerate() {
            if i % 2 == 0 {
                out.push(c);
            }
        }
    });

    let mut cfg = ExecConfig::new(procs);
    cfg.batch_max = batch.max(1);

    if shards > 1 {
        let exec = ShardedExecutor::with_config(shards, cfg);
        let report = match exec.run_stream(|_| kind.build(dag.clone()), &dag, &stream, task) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("sharded stream failed:");
                for line in e.shard_lines() {
                    eprintln!("  {line}");
                }
                return 1;
            }
        };
        println!(
            "{} nodes, {} updates x {} dirty, {} shards x {} workers under {} (batch {}):",
            n, updates, update_size, shards, procs, kind.label(), batch
        );
        println!("  tasks executed   {}", report.executed());
        println!("  wall time        {:.4} s", report.wall_seconds());
        println!("  updates/sec      {:.0}", report.updates_per_sec());
        println!(
            "  tasks/sec        {:.0}",
            report.executed() as f64 / report.wall_seconds().max(f64::MIN_POSITIVE)
        );
        for (s, r) in report.shards.iter().enumerate() {
            println!(
                "  shard {s}:        {} tasks in {:.4} s (coord busy {:.1}%)",
                r.executed,
                r.wall_seconds,
                r.coord_busy_fraction * 100.0
            );
        }
        return 0;
    }

    let mut sched = kind.build(dag.clone());
    let report = match Executor::with_config(cfg).run_stream(sched.as_mut(), &dag, &stream, task) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stream failed: {e}");
            return 1;
        }
    };

    let mean_update = report.update_seconds.iter().sum::<f64>() / report.updates.max(1) as f64;
    println!(
        "{} nodes, {} updates x {} dirty, {} under {} (batch {}):",
        n, updates, update_size, procs, kind.label(), batch
    );
    println!("  tasks executed   {}", report.executed);
    println!("  wall time        {:.4} s", report.wall_seconds);
    println!("  updates/sec      {:.0}", report.updates as f64 / report.wall_seconds);
    println!("  tasks/sec        {:.0}", report.executed as f64 / report.wall_seconds);
    println!("  mean update      {:.1} us", mean_update * 1e6);
    println!("  coord busy       {:.1}%", report.coord_busy_fraction * 100.0);
    0
}

/// Run one update with per-task tracing and attribute its end-to-end
/// latency: scheduler calls vs coordinator wait (split into plain run and
/// join/DRed eval) vs commit vs everything else, plus the concrete
/// critical chain. Emits `results/explain.json` and a Perfetto trace with
/// flow arrows along the chain.
fn cmd_explain(args: &[String]) -> i32 {
    let spec = if let Some(p) = flag(args, "--preset") {
        format!("#{}", p.trim_start_matches('#'))
    } else if let Some(first) = args.first().filter(|a| !a.starts_with('-')) {
        first.to_string()
    } else {
        eprintln!(
            "usage: dlsched explain [--preset N|<trace.json|#id|figure2:L>] \
             [--sched S] [--procs P] [-o explain.json] [--trace-out out.trace.json]"
        );
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    let out = flag(args, "-o")
        .or_else(|| flag(args, "--out"))
        .unwrap_or("results/explain.json")
        .to_string();
    let trace_out = flag(args, "--trace-out").unwrap_or("results/explain.trace.json").to_string();

    let (name, inst) = match load_instance(&spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    trace::clear();
    incr_obs::registry().reset();
    trace::enable();
    trace::set_thread_name("explain-driver");

    let mut sched = Observed::new(kind.build(inst.dag.clone()));
    let fired: Arc<Vec<Vec<incr_dag::NodeId>>> = Arc::new(inst.fired.clone());
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        out.extend_from_slice(&fired[v.index()]);
    });
    let mut cfg = ExecConfig::new(procs);
    cfg.record_tasks = true;
    let report =
        match Executor::with_config(cfg).run(&mut sched, &inst.dag, &inst.initial_active, task) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("run failed: {e}");
                return 1;
            }
        };
    trace::disable();
    let threads = trace::drain();

    let attrs = analyze(&inst.dag, &threads);
    if attrs.is_empty() {
        eprintln!("internal error: no exec.update span in the drained trace");
        return 1;
    }

    // Annotated trace: the run's events plus critical-path flow arrows.
    let flows = flow_events(&attrs);
    let n_flows = flows.len();
    let trace_text = chrome_trace_with(&threads, flows).to_json();
    if let Err(e) = validate_chrome_trace(&trace_text) {
        eprintln!("internal error: annotated trace failed validation: {e}");
        return 1;
    }

    let doc = obj([
        ("instance", name.clone().into()),
        ("scheduler", kind.label().into()),
        ("procs", procs.into()),
        ("executed", report.executed.into()),
        ("wall_seconds", report.wall_seconds.into()),
        (
            "updates",
            Json::Arr(attrs.iter().map(|a| a.to_json()).collect()),
        ),
    ]);
    for (path, text) in [(&out, doc.to_json()), (&trace_out, trace_text)] {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
                eprintln!("cannot create {}", dir.display());
                return 1;
            }
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
    }

    println!("{name} under {} on {procs} processors:", kind.label());
    let mut ok = true;
    for a in &attrs {
        let wall = a.wall_us();
        let covered = if wall > 0.0 { a.components_us() / wall } else { 1.0 };
        ok &= (covered - 1.0).abs() <= 0.05;
        let pct = |c: f64| if wall > 0.0 { 100.0 * c / wall } else { 0.0 };
        println!(
            "  update {}: wall {:.0} us ({} tasks), accounted {:.1}%",
            a.update,
            wall,
            a.executed,
            covered * 100.0
        );
        println!(
            "    sched {:5.1}%  run {:5.1}%  eval {:5.1}%  commit {:5.1}%  other {:5.1}%",
            pct(a.sched_us),
            pct(a.run_us),
            pct(a.eval_us),
            pct(a.commit_us),
            pct(a.other_us)
        );
        println!(
            "    critical chain: {} tasks, {:.0} us on-chain ({:.1}% of wall)",
            a.chain.len(),
            a.chain_us(),
            pct(a.chain_us())
        );
        // Sharded runs tag task spans with their shard id; split the
        // parallel task time per shard when any tag is present.
        for (s, us) in &a.shard_task_us {
            let share = if a.task_us > 0.0 { 100.0 * us / a.task_us } else { 0.0 };
            println!("    shard {s}: {us:.0} us task time ({share:.1}% of task time)");
        }
    }
    println!("  wrote {out}");
    println!("  wrote {trace_out} ({n_flows} flow events) — open in https://ui.perfetto.dev");
    if !ok {
        eprintln!("attribution components do not sum to wall time (>5% off)");
        return 1;
    }
    0
}

/// Drive an open-loop stream on the main thread while a background thread
/// repaints a `top`-style text view from the metrics registry and the SLO
/// tracker: queue depth, p50/p95/p99 sojourn vs budget, burn rate,
/// coalesce rate, worker occupancy, retries.
fn cmd_top(args: &[String]) -> i32 {
    let nodes: usize = flag(args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let updates: usize = flag(args, "--updates").and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let update_size: usize = flag(args, "--update-size").and_then(|v| v.parse().ok()).unwrap_or(8);
    let procs: usize = flag(args, "--procs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let coalesce: usize = flag(args, "--coalesce").and_then(|v| v.parse().ok()).unwrap_or(8);
    let budget_us: u64 = flag(args, "--budget-us").and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let period_us: u64 = flag(args, "--period-us").and_then(|v| v.parse().ok()).unwrap_or(500);
    let interval_ms: u64 = flag(args, "--interval-ms").and_then(|v| v.parse().ok()).unwrap_or(200);
    let frames: usize = flag(args, "--frames").and_then(|v| v.parse().ok()).unwrap_or(usize::MAX);
    let plain = args.iter().any(|a| a == "--plain");
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let layers = 20u32;
    let width = (nodes as u32 / layers).max(1);
    let dag = Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
        layers,
        width,
        max_in: 4,
        back_span: 2,
        seed: 42,
    }));
    let n = dag.node_count();

    let mut state = 0x9e3779b97f4a7c15u64;
    let mut lcg = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    // Open loop: update i arrives at i * period, regardless of progress.
    let stream: Vec<StreamUpdate> = (0..updates)
        .map(|i| {
            let initial = (0..update_size)
                .map(|_| incr_dag::NodeId((lcg() % width.min(n as u32) as usize) as u32))
                .collect();
            StreamUpdate::at(initial, Duration::from_micros(i as u64 * period_us))
        })
        .collect();

    let dag2 = dag.clone();
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        for (i, &c) in dag2.children(v).iter().enumerate() {
            if i % 2 == 0 {
                out.push(c);
            }
        }
    });

    incr_obs::registry().reset();
    incr_obs::slo::stream_tracker().reset();

    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let render_done = done.clone();
    let budget = Duration::from_micros(budget_us);
    let render = std::thread::spawn(move || {
        use std::sync::atomic::Ordering;
        let r = incr_obs::registry();
        let slo = incr_obs::slo::stream_tracker();
        let mut frame = 0usize;
        let mut last_busy = 0u64;
        let mut last_samples = 0u64;
        let mut last = std::time::Instant::now();
        while frame < frames && !render_done.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(interval_ms));
            let now = std::time::Instant::now();
            let dt = now.duration_since(last).as_secs_f64();
            last = now;

            let busy = r.counter("exec.worker_busy_ns").get();
            let samples = r.counter("stream.slo.samples").get();
            let occupancy = if dt > 0.0 {
                (busy.saturating_sub(last_busy) as f64 / 1e9) / (dt * procs as f64)
            } else {
                0.0
            };
            let rate = if dt > 0.0 {
                samples.saturating_sub(last_samples) as f64 / dt
            } else {
                0.0
            };
            last_busy = busy;
            last_samples = samples;

            let s = slo.snapshot();
            let coalesced = r.counter("stream.coalesced").get();
            let over = r.counter("stream.slo.over_budget").get();
            // Admission (numerator) runs ahead of completion (denominator);
            // cap so the readout never exceeds 100%.
            let coalesce_rate = if samples > 0 {
                (100.0 * coalesced as f64 / samples as f64).min(100.0)
            } else {
                0.0
            };
            if !plain {
                print!("\x1b[2J\x1b[H");
            }
            println!("dlsched top — frame {frame}  ({rate:.0} updates/s)");
            println!(
                "  queue depth     {:>8}   (peak {})",
                r.gauge("stream.queue_depth").get(),
                r.gauge("stream.queue_depth").peak()
            );
            println!(
                "  sojourn p50     {:>8.0} us   p95 {:.0} us   p99 {:.0} us   max {:.0} us",
                s.p50_ns as f64 / 1e3,
                s.p95_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3
            );
            println!(
                "  SLO budget      {:>8.0} us   burn {:.1}%   over-budget {} / {}",
                budget.as_micros() as f64,
                s.burn_rate * 100.0,
                over,
                samples
            );
            println!("  coalesce rate   {coalesce_rate:>7.1}%   ({coalesced} updates shared a batch)");
            println!(
                "  worker occupancy{:>7.1}%   in-flight {}   exec queue {}",
                occupancy * 100.0,
                r.gauge("exec.in_flight").get(),
                r.gauge("exec.queue_depth").get()
            );
            println!(
                "  retries         {:>8}   task failures {}",
                r.counter("exec.retries").get(),
                r.counter("exec.task_failures").get()
            );
            frame += 1;
        }
    });

    let policy = StreamPolicy {
        max_coalesce: coalesce.max(1),
        latency_budget: budget,
        pipeline: true,
    };
    let mut sched = kind.build(dag.clone());
    let result = Executor::with_config(ExecConfig::new(procs)).run_stream_with(
        sched.as_mut(),
        &dag,
        &stream,
        infallible(task),
        &policy,
        None,
    );
    done.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = render.join();

    match result {
        Ok(report) => {
            let s = incr_obs::slo::stream_tracker().snapshot();
            println!(
                "stream done: {} updates ({} batches) in {:.3} s — p50 {:.0} us  p95 {:.0} us  p99 {:.0} us  burn {:.1}%",
                report.updates,
                report.batches,
                report.wall_seconds,
                s.p50_ns as f64 / 1e3,
                s.p95_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.burn_rate * 100.0
            );
            0
        }
        Err(e) => {
            eprintln!("stream failed: {e}");
            1
        }
    }
}

fn cmd_gantt(args: &[String]) -> i32 {
    let (Some(spec), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: dlsched gantt <#id|figure2:L|trace.json> <out.svg> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let t = record_timeline(s.as_mut(), &inst, procs, &CostPrices::default());
            let title = format!("{} on {name} (P={procs})", kind.label());
            if std::fs::write(out, t.to_svg(&title)).is_err() {
                eprintln!("cannot write {out}");
                return 1;
            }
            println!("{out}: makespan {:.4}, {} spans", t.makespan, t.spans.len());
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Parse `--add`/`--remove` facts (`edge(a, b)`, symbols only) into
/// engine edits.
fn parse_fact_edits(
    edits: &[(bool, String)],
) -> Result<Vec<datalog_sched::datalog::FactEdit>, String> {
    use datalog_sched::datalog::{parse_pattern, FactEdit, Pat};
    edits
        .iter()
        .map(|(add, fact)| {
            let (pred, pats) = parse_pattern(fact)?;
            let args = pats
                .iter()
                .map(|p| match p {
                    Pat::Sym(s) => Ok(s.clone()),
                    _ => Err(format!("edit fact {fact:?} must be all symbols")),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let args: Vec<&str> = args.iter().map(String::as_str).collect();
            Ok(if *add {
                FactEdit::add(&pred, &args)
            } else {
                FactEdit::remove(&pred, &args)
            })
        })
        .collect()
}

/// The `query` subcommand body, separated so the smoke test can drive
/// it without a subprocess. Pins a snapshot of the freshly-materialized
/// program, applies the edits (which publish new epochs), then answers
/// the pattern against both the pinned snapshot and the head.
fn run_snapshot_query(
    src: &str,
    pattern: &str,
    edits: &[(bool, String)],
    kind: SchedulerKind,
    strategy: MaintenanceStrategy,
) -> Result<String, String> {
    use datalog_sched::datalog::{EvalOptions, IncrementalEngine};

    let opts = EvalOptions::sequential().with_maintenance(strategy);
    let mut e = IncrementalEngine::with_options(src, opts).map_err(|e| e.to_string())?;
    let snap = e.begin_snapshot();

    if !edits.is_empty() {
        let fe = parse_fact_edits(edits)?;
        let mut s = kind.build(e.dag().clone());
        e.update(s.as_mut(), &fe).map_err(|e| e.to_string())?;
    }

    let snap_rows = snap.query(pattern)?;
    let head_rows = e.query(pattern).map_err(|e| e.to_string())?;
    let mut out = String::new();
    out.push_str(&format!(
        "pinned snapshot @ epoch {}: {} rows\n",
        snap.epoch(),
        snap_rows.len()
    ));
    for r in &snap_rows {
        out.push_str(&format!("  {r}\n"));
    }
    out.push_str(&format!(
        "head @ epoch {}: {} rows\n",
        e.epoch(),
        head_rows.len()
    ));
    for r in &head_rows {
        out.push_str(&format!("  {r}\n"));
    }
    Ok(out)
}

/// The sharded `query` path: hash-partition the program's relations
/// across `shards` engine instances, apply the edits through the
/// cross-shard exchange, then answer the pattern from the
/// ownership-filtered union of the shard heads. (No snapshot pinning —
/// each shard publishes its own epochs, one per committed batch.)
fn run_sharded_query(
    src: &str,
    pattern: &str,
    edits: &[(bool, String)],
    kind: SchedulerKind,
    shards: usize,
    strategy: MaintenanceStrategy,
) -> Result<String, String> {
    use datalog_sched::datalog::{EvalOptions, ShardedEngine};

    let opts = EvalOptions::sequential().with_maintenance(strategy);
    let mut e = ShardedEngine::with_options(src, shards, opts, |d| kind.build(d))
        .map_err(|e| e.to_string())?;
    let mut exchange = None;
    if !edits.is_empty() {
        let fe = parse_fact_edits(edits)?;
        exchange = Some(e.update(&fe).map_err(|e| e.to_string())?);
    }
    let rows = e.query(pattern).map_err(|e| e.to_string())?;
    let mut out = format!(
        "{} shards, head @ epoch {}: {} rows\n",
        shards,
        e.epoch(),
        rows.len()
    );
    for r in &rows {
        out.push_str(&format!("  {r}\n"));
    }
    if let Some(rep) = exchange {
        out.push_str(&format!(
            "  (update ran {} rounds, {} tuples exchanged between shards)\n",
            rep.rounds, rep.exchanged_tuples
        ));
    }
    Ok(out)
}

fn cmd_query(args: &[String]) -> i32 {
    let usage = "usage: dlsched query <program.dl|-> <pattern> \
                 [--add fact]* [--remove fact]* [--sched S] [--shards N] \
                 [--maintenance dred|fbf]";
    let mut positional: Vec<&str> = Vec::new();
    let mut edits: Vec<(bool, String)> = Vec::new();
    let mut sched = "levelbased";
    let mut shards = 1usize;
    let mut strategy = MaintenanceStrategy::DRed;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            f @ ("--add" | "--remove" | "--sched" | "--shards" | "--maintenance") => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("{f} needs a value\n{usage}");
                    return 2;
                };
                match f {
                    "--add" => edits.push((true, v.clone())),
                    "--remove" => edits.push((false, v.clone())),
                    "--shards" => match v.parse() {
                        Ok(n) if n >= 1 => shards = n,
                        _ => {
                            eprintln!("bad shard count {v:?}\n{usage}");
                            return 2;
                        }
                    },
                    "--maintenance" => match MaintenanceStrategy::parse(v) {
                        Some(s) => strategy = s,
                        None => {
                            eprintln!("unknown maintenance strategy {v:?}\n{usage}");
                            return 2;
                        }
                    },
                    _ => sched = v,
                }
                i += 2;
            }
            p => {
                positional.push(p);
                i += 1;
            }
        }
    }
    let [path, pattern] = positional[..] else {
        eprintln!("{usage}");
        return 2;
    };
    let src = if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("cannot read program from stdin");
            return 1;
        }
        s
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("read {path}: {e}");
                return 1;
            }
        }
    };
    let kind = match parse_sched(sched) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let result = if shards > 1 {
        run_sharded_query(&src, pattern, &edits, kind, shards, strategy)
    } else {
        run_snapshot_query(&src, pattern, &edits, kind, strategy)
    };
    match result {
        Ok(out) => {
            print!("{out}");
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

#[cfg(test)]
mod query_tests {
    use super::*;

    const PROGRAM: &str = "path(X, Y) :- edge(X, Y).\n\
                           path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                           edge(a, b). edge(b, c).";

    #[test]
    fn snapshot_query_smoke() {
        let out = run_snapshot_query(
            PROGRAM,
            "path(a, ?)",
            &[(false, "edge(a, b)".into()), (true, "edge(a, d)".into())],
            SchedulerKind::Hybrid,
            MaintenanceStrategy::DRed,
        )
        .expect("query runs");
        // The snapshot (epoch 1) still answers with the pre-edit closure;
        // the head (epoch 2, post-publish) reflects the edits.
        assert!(out.contains("pinned snapshot @ epoch 1: 2 rows"), "{out}");
        assert!(out.contains("head @ epoch 2: 1 rows"), "{out}");
        assert!(out.contains("(a, d)"), "{out}");
    }

    #[test]
    fn sharded_query_smoke() {
        let out = run_sharded_query(
            PROGRAM,
            "path(a, ?)",
            &[(false, "edge(a, b)".into()), (true, "edge(a, d)".into())],
            SchedulerKind::Hybrid,
            3,
            MaintenanceStrategy::Fbf,
        )
        .expect("sharded query runs");
        assert!(out.contains("3 shards"), "{out}");
        assert!(out.contains("1 rows"), "{out}");
        assert!(out.contains("(a, d)"), "{out}");
    }

    #[test]
    fn bad_edit_fact_is_an_error() {
        let err = run_snapshot_query(
            PROGRAM,
            "path(a, ?)",
            &[(true, "edge(a, ?)".into())],
            SchedulerKind::LevelBased,
            MaintenanceStrategy::Fbf,
        )
        .unwrap_err();
        assert!(err.contains("must be all symbols"), "{err}");
    }
}
