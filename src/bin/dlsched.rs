//! `dlsched` — the command-line face of the library.
//!
//! ```text
//! dlsched gen <id|all> [dir]          regenerate Table-I trace JSON files
//! dlsched stats <trace.json>          Table-I statistics of a trace file
//! dlsched simulate <trace.json|#id> [--sched S] [--procs P]
//!                                     simulate a trace and report
//!                                     makespan/overhead/utilization
//! dlsched gantt <#id|figure2:L> <out.svg> [--sched S] [--procs P]
//!                                     render a schedule timeline
//! dlsched trace [--preset N|<spec>] [--sched S] [--procs P] [-o out.trace.json]
//!                                     record a Perfetto-loadable trace of a
//!                                     simulated run plus a real threaded
//!                                     replay (scheduler + simulator +
//!                                     executor layers)
//! dlsched stream [--nodes V] [--sched S] [--updates U] [--update-size K]
//!                [--procs P] [--batch B] [--task-us D]
//!                                     drive a stream of K-node updates over a
//!                                     V-node DAG through one warm worker pool
//!                                     and report updates/sec + tasks/sec
//! ```
//!
//! Scheduler names: `levelbased`, `lbl:<k>`, `logicblox`, `signal`,
//! `hybrid`, `hybrid-bg:<slice>`, `exact`.

use datalog_sched::runtime::{ExecConfig, Executor, TaskFn};
use datalog_sched::sched::{CostPrices, Observed, SchedulerKind};
use datalog_sched::sim::{record_timeline, simulate_event, EventSimConfig};
use datalog_sched::traces::{generate, preset, trace_stats, JobTrace};
use incr_obs::export::{chrome_trace_json, validate_chrome_trace};
use incr_obs::trace;
use incr_sched::Instance;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("gantt") => cmd_gantt(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("stream") => cmd_stream(&args[1..]),
        _ => {
            eprintln!(
                "usage: dlsched <gen|stats|simulate|gantt|trace|stream> ...\n\
                 see the crate docs (src/bin/dlsched.rs) for details"
            );
            2
        }
    };
    std::process::exit(code);
}

fn parse_sched(s: &str) -> Result<SchedulerKind, String> {
    Ok(match s {
        "levelbased" | "lb" => SchedulerKind::LevelBased,
        "logicblox" | "lbx" => SchedulerKind::LogicBlox,
        "signal" => SchedulerKind::SignalPropagation,
        "hybrid" => SchedulerKind::Hybrid,
        "exact" => SchedulerKind::ExactGreedy,
        _ if s.starts_with("lbl:") => SchedulerKind::Lookahead(
            s[4..].parse().map_err(|e| format!("bad k in {s:?}: {e}"))?,
        ),
        _ if s.starts_with("hybrid-bg:") => SchedulerKind::HybridBackground(
            s[10..].parse().map_err(|e| format!("bad slice in {s:?}: {e}"))?,
        ),
        _ => return Err(format!("unknown scheduler {s:?}")),
    })
}

/// `#id`, `figure2:L`, or a JSON trace path.
fn load_instance(spec: &str) -> Result<(String, Instance), String> {
    if let Some(id) = spec.strip_prefix('#') {
        let id: u32 = id.parse().map_err(|e| format!("bad trace id: {e}"))?;
        if !(1..=11).contains(&id) {
            return Err(format!("no preset trace #{id} (valid: #1-#11)"));
        }
        let (inst, _) = generate(&preset(id));
        return Ok((format!("trace {spec}"), inst));
    }
    if let Some(l) = spec.strip_prefix("figure2:") {
        let l: u32 = l.parse().map_err(|e| format!("bad L: {e}"))?;
        return Ok((
            format!("figure2({l})"),
            datalog_sched::traces::adversarial::figure2(l),
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("read {spec}: {e}"))?;
    let inst = JobTrace::from_json(&text)
        .map_err(|e| e.to_string())?
        .to_instance()
        .map_err(|e| e.to_string())?;
    Ok((spec.to_string(), inst))
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_gen(args: &[String]) -> i32 {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let dir = args.get(1).map(String::as_str).unwrap_or("traces");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("cannot create {dir}");
        return 1;
    }
    let ids: Vec<u32> = if which == "all" {
        (1..=11).collect()
    } else {
        match which.trim_start_matches('#').parse() {
            Ok(i) if (1..=11).contains(&i) => vec![i],
            Ok(i) => {
                eprintln!("no preset trace #{i} (valid: #1-#11)");
                return 2;
            }
            Err(e) => {
                eprintln!("bad id {which:?}: {e}");
                return 2;
            }
        }
    };
    for id in ids {
        let spec = preset(id);
        let (inst, rep) = generate(&spec);
        let path = format!("{dir}/trace{id:02}.json");
        if let Err(e) = std::fs::write(&path, JobTrace::from_instance(spec.name, &inst).to_json())
        {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!(
            "{path}: {} nodes, {} active (target {})",
            spec.nodes, rep.achieved_active, spec.active
        );
    }
    0
}

fn cmd_stats(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched stats <trace.json|#id>");
        return 2;
    };
    match load_instance(spec) {
        Ok((name, inst)) => {
            let st = trace_stats(&inst);
            println!("{name}:");
            println!("  nodes {}  edges {}  levels {}", st.nodes, st.edges, st.levels);
            println!(
                "  initial {}  active {}  descendant pool {} ({} activated)",
                st.initial_tasks, st.active_jobs, st.total_descendants, st.activated_descendants
            );
            println!("  widest level: {} nodes", st.max_level_width);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

fn cmd_simulate(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: dlsched simulate <trace.json|#id> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_event(
                s.as_mut(),
                &inst,
                &EventSimConfig {
                    processors: procs,
                    ..Default::default()
                },
            );
            println!("{name} under {} on {procs} processors:", kind.label());
            println!("  makespan        {:.6} s", r.makespan);
            println!("  sched overhead  {:.6} s", r.sched_overhead);
            println!("  tasks executed  {}", r.executed);
            println!("  utilization     {:.1}%", r.utilization(procs) * 100.0);
            println!("  peak run state  {} B", r.peak_space);
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}

/// Record one instance end to end: a discrete-event simulation (simulated
/// time, `sim` + `sched` categories) followed by a real thread-pool
/// replay of the same instance (`exec` + `sched` categories), exported as
/// one Chrome trace-event file. Perfetto then shows the simulated
/// makespan and the real wall-clock run side by side.
fn cmd_trace(args: &[String]) -> i32 {
    let spec = if let Some(p) = flag(args, "--preset") {
        format!("#{}", p.trim_start_matches('#'))
    } else if let Some(first) = args.first().filter(|a| !a.starts_with('-')) {
        first.to_string()
    } else {
        eprintln!(
            "usage: dlsched trace [--preset N|<trace.json|#id|figure2:L>] \
             [--sched S] [--procs P] [-o out.trace.json]"
        );
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("hybrid")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    let out = flag(args, "-o")
        .or_else(|| flag(args, "--out"))
        .map(String::from)
        .unwrap_or_else(|| {
            format!(
                "results/{}.trace.json",
                spec.trim_start_matches('#').replace([':', '/'], "_")
            )
        });

    let (name, inst) = match load_instance(&spec) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };

    trace::clear();
    incr_obs::registry().reset();
    trace::enable();
    trace::set_thread_name("simulation-driver");

    // Pass 1: discrete-event simulation under the observed scheduler —
    // `sim` events on simulated lanes, `sched` spans on this thread.
    let mut sim_sched = Observed::new(kind.build(inst.dag.clone()));
    let sim = simulate_event(
        &mut sim_sched,
        &inst,
        &EventSimConfig {
            processors: procs,
            ..Default::default()
        },
    );

    // Pass 2: real threaded replay of the same active graph — `exec`
    // spans on worker threads, more `sched` spans on the coordinator.
    let mut exec_sched = Observed::new(kind.build(inst.dag.clone()));
    let fired: Arc<Vec<Vec<incr_dag::NodeId>>> = Arc::new(inst.fired.clone());
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        out.extend_from_slice(&fired[v.index()]);
    });
    let report = match Executor::new(procs).run(&mut exec_sched, &inst.dag, &inst.initial_active, task)
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return 1;
        }
    };

    trace::disable();
    let threads = trace::drain();
    let dropped: u64 = threads.iter().map(|t| t.dropped).sum();
    let text = chrome_trace_json(&threads);
    let stats = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("internal error: emitted trace failed validation: {e}");
            return 1;
        }
    };

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() && std::fs::create_dir_all(dir).is_err() {
            eprintln!("cannot create {}", dir.display());
            return 1;
        }
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {out}: {e}");
        return 1;
    }

    println!("{name} under {} on {procs} processors:", kind.label());
    println!("  simulated makespan  {:.6} s", sim.makespan);
    println!("  simulated overhead  {:.6} s", sim.sched_overhead);
    println!("  replay wall-clock   {:.6} s ({} tasks)", report.wall_seconds, report.executed);
    println!(
        "  trace               {} events ({} spans, {} counters, {} instants)",
        stats.total_events, stats.spans, stats.counters, stats.instants
    );
    println!("  categories          {}", stats.categories.join(", "));
    if dropped > 0 {
        println!("  dropped             {dropped} events (per-thread buffer cap)");
    }
    println!("  wrote {out} — open in https://ui.perfetto.dev");
    0
}

/// Drive a stream of small updates over a big DAG through one warm worker
/// pool — the sustained-throughput scenario the batched dispatch core is
/// built for. Per-update dispatch cost should track the update's active
/// set, not the DAG size.
fn cmd_stream(args: &[String]) -> i32 {
    let nodes: usize = flag(args, "--nodes").and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let updates: usize = flag(args, "--updates").and_then(|v| v.parse().ok()).unwrap_or(100);
    let update_size: usize = flag(args, "--update-size").and_then(|v| v.parse().ok()).unwrap_or(10);
    let procs: usize = flag(args, "--procs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let batch: usize = flag(args, "--batch").and_then(|v| v.parse().ok()).unwrap_or(256);
    let task_us: u64 = flag(args, "--task-us").and_then(|v| v.parse().ok()).unwrap_or(0);
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };

    // Fixed-depth layered DAG: growing V grows the width, not the depth,
    // so a K-node update touches a V-independent slice of the graph.
    let layers = 20u32;
    let width = (nodes as u32 / layers).max(1);
    let dag = Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
        layers,
        width,
        max_in: 4,
        back_span: 2,
        seed: 42,
    }));
    let n = dag.node_count();

    // Deterministic per-update dirty sets drawn from the first layer.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut lcg = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let stream: Vec<Vec<incr_dag::NodeId>> = (0..updates)
        .map(|_| {
            (0..update_size)
                .map(|_| incr_dag::NodeId((lcg() % width.min(n as u32) as usize) as u32))
                .collect()
        })
        .collect();

    let dag2 = dag.clone();
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        if task_us > 0 {
            let t0 = std::time::Instant::now();
            while t0.elapsed().as_micros() < task_us as u128 {
                std::hint::spin_loop();
            }
        }
        // Fire roughly half the out-edges: partial incremental change.
        for (i, &c) in dag2.children(v).iter().enumerate() {
            if i % 2 == 0 {
                out.push(c);
            }
        }
    });

    let mut cfg = ExecConfig::new(procs);
    cfg.batch_max = batch.max(1);
    let mut sched = kind.build(dag.clone());
    let report = match Executor::with_config(cfg).run_stream(sched.as_mut(), &dag, &stream, task) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stream failed: {e}");
            return 1;
        }
    };

    let mean_update = report.update_seconds.iter().sum::<f64>() / report.updates.max(1) as f64;
    println!(
        "{} nodes, {} updates x {} dirty, {} under {} (batch {}):",
        n, updates, update_size, procs, kind.label(), batch
    );
    println!("  tasks executed   {}", report.executed);
    println!("  wall time        {:.4} s", report.wall_seconds);
    println!("  updates/sec      {:.0}", report.updates as f64 / report.wall_seconds);
    println!("  tasks/sec        {:.0}", report.executed as f64 / report.wall_seconds);
    println!("  mean update      {:.1} us", mean_update * 1e6);
    println!("  coord busy       {:.1}%", report.coord_busy_fraction * 100.0);
    0
}

fn cmd_gantt(args: &[String]) -> i32 {
    let (Some(spec), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: dlsched gantt <#id|figure2:L|trace.json> <out.svg> [--sched S] [--procs P]");
        return 2;
    };
    let kind = match parse_sched(flag(args, "--sched").unwrap_or("levelbased")) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let procs: usize = flag(args, "--procs").and_then(|p| p.parse().ok()).unwrap_or(8);
    match load_instance(spec) {
        Ok((name, inst)) => {
            let mut s = kind.build(inst.dag.clone());
            let t = record_timeline(s.as_mut(), &inst, procs, &CostPrices::default());
            let title = format!("{} on {name} (P={procs})", kind.label());
            if std::fs::write(out, t.to_svg(&title)).is_err() {
                eprintln!("cannot write {out}");
                return 1;
            }
            println!("{out}: makespan {:.4}, {} spans", t.makespan, t.spans.len());
            0
        }
        Err(e) => {
            eprintln!("{e}");
            1
        }
    }
}
