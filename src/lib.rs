//! # datalog-sched — incremental maintenance of Datalog programs as DAG scheduling
//!
//! Umbrella crate for the workspace reproducing *"A Scheduling Approach to
//! Incremental Maintenance of Datalog Programs"* (IPDPS 2020). It
//! re-exports the member crates so examples, integration tests, and
//! downstream users need a single dependency:
//!
//! * [`dag`] — CSR DAGs, levels, reachability, interval-list transitive
//!   closure (the substrate of every scheduler).
//! * [`sched`] — the paper's schedulers: LevelBased, LBL(k), the
//!   LogicBlox production baseline, signal propagation, and the Hybrid.
//! * [`sim`] — discrete-event and unit-step simulators with the
//!   scheduling-overhead cost model.
//! * [`traces`] — the job-trace corpus: Table-I presets, generators,
//!   adversarial instances, serialization.
//! * [`datalog`] — a from-scratch Datalog engine whose incremental
//!   maintenance compiles to scheduling instances.
//! * [`runtime`] — a real thread-pool executor driven by the schedulers.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use incr_dag as dag;
pub use incr_datalog as datalog;
pub use incr_runtime as runtime;
pub use incr_sched as sched;
pub use incr_sim as sim;
pub use incr_traces as traces;
