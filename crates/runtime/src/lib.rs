//! # incr-runtime — a real multi-threaded executor for the schedulers
//!
//! The simulators in `incr-sim` replay traces; this crate *actually runs*
//! tasks. A pool of worker threads executes user closures per DAG node
//! while a scheduler (any [`incr_sched::Scheduler`]) decides dispatch
//! order under the paper's safety rule. The Datalog engine uses this to
//! re-derive predicates after base-data updates; the examples use it to
//! demonstrate the hybrid's shared ready supply on real threads.
//!
//! * [`executor`] — the batched dispatch pipeline: the coordinator owns
//!   the scheduler and pulls whole wavefronts (`pop_batch`), workers are
//!   fed multi-task chunks over bounded channels (backpressure) and flush
//!   completions in reusable batches with the fired-edge sets the task
//!   functions compute. Execution is fault-tolerant: panics are isolated
//!   per task, transient failures retry under a bounded backoff policy, a
//!   watchdog deadline and a [`executor::CancelToken`] bound every
//!   update's latency, and an [`executor::UpdateJournal`] makes failed
//!   updates resumable without re-running committed work.
//! * [`faults`] — the deterministic chaos harness: seeded fault plans
//!   (panic-at-nth, fail-k-then-succeed, delay) that wrap any task
//!   function, used by the chaos test suite to prove the run-once safety
//!   invariant holds under injected failure.

//! * [`attribution`] — post-hoc critical-path analysis: replay drained
//!   trace events against the DAG to split each update's latency into
//!   scheduler / wait (run + eval) / commit / other components and
//!   recover the concrete critical chain (the `dlsched explain`
//!   subcommand).

//! * [`sharded`] — N scheduler+executor instances over one DAG, each
//!   serving a hash partition of the update stream on its own
//!   coordinator thread (the `dlsched stream --shards N` path).

pub mod attribution;
pub mod executor;
pub mod faults;
pub mod sharded;

pub use attribution::{analyze, flow_events, TaskSpan, UpdateAttribution};
pub use sharded::{
    partition_stream, ShardFailure, ShardStreamError, ShardedExecutor, ShardedStreamReport,
};
pub use executor::{
    infallible, CancelToken, ExecConfig, ExecError, ExecReport, ExecSnapshot, Executor,
    RetryPolicy, StreamError, StreamPolicy, StreamReport, StreamUpdate, TaskFn, TaskOutcome,
    TryTaskFn, UpdateJournal,
};
pub use faults::{Fault, FaultPlan};
