//! # incr-runtime — a real multi-threaded executor for the schedulers
//!
//! The simulators in `incr-sim` replay traces; this crate *actually runs*
//! tasks. A pool of worker threads executes user closures per DAG node
//! while a scheduler (any [`incr_sched::Scheduler`]) decides dispatch
//! order under the paper's safety rule. The Datalog engine uses this to
//! re-derive predicates after base-data updates; the examples use it to
//! demonstrate the hybrid's shared ready supply on real threads.
//!
//! * [`executor`] — the batched dispatch pipeline: the coordinator owns
//!   the scheduler and pulls whole wavefronts (`pop_batch`), workers are
//!   fed multi-task chunks over bounded channels (backpressure) and flush
//!   completions in reusable batches with the fired-edge sets the task
//!   functions compute.

pub mod executor;

pub use executor::{
    ExecConfig, ExecError, ExecReport, Executor, StreamReport, TaskFn,
};
