//! # incr-runtime — a real multi-threaded executor for the schedulers
//!
//! The simulators in `incr-sim` replay traces; this crate *actually runs*
//! tasks. A pool of worker threads executes user closures per DAG node
//! while a scheduler (any [`incr_sched::Scheduler`]) decides dispatch
//! order under the paper's safety rule. The Datalog engine uses this to
//! re-derive predicates after base-data updates; the examples use it to
//! demonstrate the hybrid's shared ready supply on real threads.
//!
//! * [`executor`] — the dispatch loop: scheduler behind a mutex, workers
//!   fed through crossbeam channels, completions reported back with the
//!   fired-edge sets the task functions compute.

pub mod executor;

pub use executor::{ExecReport, Executor, TaskFn, TaskOutcome};
