//! Deterministic fault injection for the execution core.
//!
//! A [`FaultPlan`] wraps any [`TryTaskFn`] and perturbs its execution:
//! panics at a chosen point, transient failures that succeed after `k`
//! attempts, artificial delays. Everything is driven by a seed and pure
//! functions of `(seed, node)` — **never** wall-clock time or a global
//! RNG — so the same plan injects the same faults at the same tasks on
//! every run, regardless of thread interleaving. That determinism is what
//! lets the chaos suite assert exact properties (zero double-executions,
//! output equivalence with the fault-free run) across hundreds of seeded
//! scenarios rather than merely "it didn't crash".
//!
//! Node-targeted selection uses a splitmix-style hash of `(seed, node)`,
//! so which tasks a plan hits varies with the seed but not with execution
//! order. Count-targeted faults ([`Fault::PanicAtNth`]) use a shared
//! atomic execution counter: which *node* the nth execution lands on is
//! interleaving-dependent, but the plan still fires exactly once, and the
//! suite's invariants are written to hold for any victim.
//!
//! Panic faults disarm after firing so a retried/resumed update can
//! complete — modeling a crash, not a permanently poisoned task. The
//! per-node attempt counters behind [`Fault::FailKThenSucceed`] persist
//! across resumes of the same wrapped task for the same reason.

use crate::executor::{TaskOutcome, TryTaskFn};
use incr_dag::NodeId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Marker embedded in every injected panic message; the chaos suite's
/// panic hook uses it to keep expected unwinds out of test output.
pub const INJECTED_PANIC: &str = "fault-injected panic";

/// One injected failure mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic on the `n`th task execution (0-based, counted across the
    /// whole plan lifetime), whatever node that turns out to be. Fires
    /// once, then disarms.
    PanicAtNth { n: u64 },
    /// Panic the first time `node` executes, then disarm.
    PanicOnNode { node: NodeId },
    /// Selected tasks return [`TaskOutcome::Retryable`] on their first
    /// `k` attempts and succeed on attempt `k + 1`. A task is selected
    /// when `hash(seed, node) % every == 0`.
    FailKThenSucceed { k: u32, every: u32 },
    /// Selected tasks sleep `micros` before executing — jitters the
    /// interleaving to shake out ordering assumptions without changing
    /// any outcome.
    DelayTask { micros: u64, every: u32 },
    /// Shard-targeted: panic shard `shard` at the entry of exchange
    /// round `round` of a sharded batch. Fires once, then disarms.
    ShardPanic { shard: usize, round: usize },
    /// Shard-targeted: delay shard `shard` by `micros` at the entry of
    /// exchange round `round`. Below the round deadline this only
    /// jitters the barrier; above it, it models a stuck shard the
    /// watchdog must catch. Fires on every matching round until the
    /// plan is disarmed.
    ShardDelay { shard: usize, round: usize, micros: u64 },
    /// Shard-targeted: shard `shard` returns a typed error (no panic)
    /// on its first `k` interrogations, then succeeds.
    ShardFailK { shard: usize, k: u32 },
}

/// What a shard-targeted plan injects at one `(shard, round)` site.
/// Task-targeted faults never map to an action — they belong to the
/// executor layer, not the cross-shard exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardAction {
    /// Nothing injected at this site.
    None,
    /// Panic with this message (contains [`INJECTED_PANIC`]).
    Panic(String),
    /// Sleep this many microseconds before evaluating the round.
    Delay(u64),
    /// Return a typed shard error carrying this message.
    Fail(String),
}

/// An armed instantiation of a [`FaultPlan`] for sharded runtimes.
/// Where [`FaultPlan::wrap`] intercepts individual task executions, an
/// armed shard plan is interrogated once per `(shard, round)` at the
/// entry of each exchange round. Selection is purely positional —
/// `(shard, round)` — so the same plan injects the same fault at the
/// same site on every run regardless of barrier interleaving.
///
/// [`ArmedShardPlan::disarm`] turns every remaining fault off at once;
/// the retry-after-failure suite uses it to assert that a rolled-back
/// batch, retried with faults disarmed, converges bit-identically to
/// the fault-free run.
pub struct ArmedShardPlan {
    plan: FaultPlan,
    /// One fire-once flag per fault (indexed like `FaultPlan::faults`);
    /// meaningful only for `ShardPanic`.
    armed: Vec<AtomicBool>,
    /// Interrogation counts per shard, for `ShardFailK`.
    attempts: Mutex<HashMap<usize, u32>>,
    disarmed: AtomicBool,
}

impl ArmedShardPlan {
    /// What this plan injects at `(shard, round)`. The first matching
    /// fault wins; panic faults disarm after firing so a retried batch
    /// can complete.
    pub fn action(&self, shard: usize, round: usize) -> ShardAction {
        if self.disarmed.load(Ordering::SeqCst) {
            return ShardAction::None;
        }
        for (i, fault) in self.plan.faults.iter().enumerate() {
            match *fault {
                Fault::ShardPanic {
                    shard: victim,
                    round: at,
                } => {
                    if shard == victim
                        && round == at
                        && self.armed[i].swap(false, Ordering::SeqCst)
                    {
                        return ShardAction::Panic(format!(
                            "{INJECTED_PANIC}: shard {shard} at round {round}"
                        ));
                    }
                }
                Fault::ShardDelay {
                    shard: victim,
                    round: at,
                    micros,
                } => {
                    if shard == victim && round == at {
                        return ShardAction::Delay(micros);
                    }
                }
                Fault::ShardFailK { shard: victim, k } => {
                    if shard == victim {
                        let mut attempts = self
                            .attempts
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        let a = attempts.entry(shard).or_insert(0);
                        if *a < k {
                            *a += 1;
                            return ShardAction::Fail(format!(
                                "injected shard fault: shard {shard} attempt {a} of {k}"
                            ));
                        }
                    }
                }
                Fault::PanicAtNth { .. }
                | Fault::PanicOnNode { .. }
                | Fault::FailKThenSucceed { .. }
                | Fault::DelayTask { .. } => {}
            }
        }
        ShardAction::None
    }

    /// Turn every remaining fault off. Subsequent interrogations return
    /// [`ShardAction::None`] — the disarmed-retry path of the chaos
    /// suite.
    pub fn disarm(&self) {
        self.disarmed.store(true, Ordering::SeqCst);
    }
}

/// Shared mutable state of an armed plan. Lives behind an `Arc` inside
/// the wrapped closure, so state survives as long as the closure does —
/// including across resume attempts that reuse the same wrapped task.
struct PlanState {
    /// Total executions observed (successful or not).
    executions: AtomicU64,
    /// One disarm flag per fault (indexed like `FaultPlan::faults`);
    /// meaningful only for the panic faults.
    armed: Vec<AtomicBool>,
    /// Attempt counts per node, for `FailKThenSucceed`.
    attempts: Mutex<HashMap<NodeId, u32>>,
}

/// A seeded, deterministic set of faults to inject into a task function.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Is `node` selected by a `1-in-every` node-targeted fault under
    /// this plan's seed? Pure — same answer on every call.
    pub fn selects(&self, node: NodeId, every: u32) -> bool {
        mix(self.seed, node.0 as u64).is_multiple_of(every.max(1) as u64)
    }

    /// Arm this plan for a sharded runtime. The result is interrogated
    /// with [`ArmedShardPlan::action`] at each `(shard, round)` site;
    /// task-targeted faults in the plan are ignored. Each call arms a
    /// fresh state (counters at zero, everything re-armed).
    pub fn arm_sharded(&self) -> Arc<ArmedShardPlan> {
        Arc::new(ArmedShardPlan {
            plan: self.clone(),
            armed: self.faults.iter().map(|_| AtomicBool::new(true)).collect(),
            attempts: Mutex::new(HashMap::new()),
            disarmed: AtomicBool::new(false),
        })
    }

    /// Wrap `inner` with this plan's faults. The returned task is what
    /// you hand to the executor; `inner` only runs when no panic fault
    /// claims the execution, so its side effects count *successful*
    /// executions. Each call to `wrap` arms a fresh state (counters at
    /// zero); clone the returned closure — don't re-wrap — to share one
    /// armed plan across runs.
    pub fn wrap(&self, inner: TryTaskFn) -> TryTaskFn {
        let plan = self.clone();
        let state = Arc::new(PlanState {
            executions: AtomicU64::new(0),
            armed: plan.faults.iter().map(|_| AtomicBool::new(true)).collect(),
            attempts: Mutex::new(HashMap::new()),
        });
        Arc::new(move |node, fired: &mut Vec<NodeId>| {
            let exec_no = state.executions.fetch_add(1, Ordering::SeqCst);
            for (i, fault) in plan.faults.iter().enumerate() {
                match *fault {
                    Fault::PanicAtNth { n } => {
                        if exec_no == n && state.armed[i].swap(false, Ordering::SeqCst) {
                            panic!("{INJECTED_PANIC}: execution {n} at {node}");
                        }
                    }
                    Fault::PanicOnNode { node: victim } => {
                        if node == victim && state.armed[i].swap(false, Ordering::SeqCst) {
                            panic!("{INJECTED_PANIC}: node {node}");
                        }
                    }
                    Fault::FailKThenSucceed { k, every } => {
                        if plan.selects(node, every) {
                            let mut attempts = state
                                .attempts
                                .lock()
                                .expect("fault plan attempt table poisoned");
                            let a = attempts.entry(node).or_insert(0);
                            if *a < k {
                                *a += 1;
                                return TaskOutcome::Retryable;
                            }
                        }
                    }
                    Fault::DelayTask { micros, every } => {
                        if plan.selects(node, every) {
                            std::thread::sleep(std::time::Duration::from_micros(micros));
                        }
                    }
                    // Shard-targeted faults fire at exchange-round
                    // entry via `arm_sharded`, never per task.
                    Fault::ShardPanic { .. }
                    | Fault::ShardDelay { .. }
                    | Fault::ShardFailK { .. } => {}
                }
            }
            inner(node, fired)
        })
    }
}

/// splitmix64-style mixer: avalanche `seed ⊕ node` into uniform bits.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed ^ x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Install a process-wide panic hook that silences injected-fault panics
/// (identified by [`INJECTED_PANIC`] in the payload) while chaining to
/// the previous hook for everything else. Idempotent; call it at the top
/// of chaos tests so hundreds of expected unwinds don't bury real output.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn counting_inner(counter: Arc<AtomicU32>) -> TryTaskFn {
        Arc::new(move |_node, _fired: &mut Vec<NodeId>| {
            counter.fetch_add(1, Ordering::SeqCst);
            TaskOutcome::Done
        })
    }

    #[test]
    fn selection_is_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let picks = |p: &FaultPlan| -> Vec<bool> {
            (0..64).map(|i| p.selects(NodeId(i), 3)).collect()
        };
        assert_eq!(picks(&a), picks(&a), "same seed, same picks");
        assert_ne!(picks(&a), picks(&b), "different seed, different picks");
        let hit = picks(&a).iter().filter(|&&x| x).count();
        assert!((8..=40).contains(&hit), "1-in-3 selection wildly off: {hit}/64");
    }

    #[test]
    fn panic_on_node_fires_once_then_disarms() {
        silence_injected_panics();
        let count = Arc::new(AtomicU32::new(0));
        let task = FaultPlan::new(7)
            .with(Fault::PanicOnNode { node: NodeId(3) })
            .wrap(counting_inner(count.clone()));
        let mut fired = Vec::new();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            task(NodeId(3), &mut fired)
        }));
        assert!(unwound.is_err());
        assert_eq!(count.load(Ordering::SeqCst), 0, "inner must not run on panic");
        assert_eq!(task(NodeId(3), &mut fired), TaskOutcome::Done, "disarmed");
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fail_k_then_succeed_counts_per_node() {
        let count = Arc::new(AtomicU32::new(0));
        // every=1 selects all nodes.
        let task = FaultPlan::new(9)
            .with(Fault::FailKThenSucceed { k: 2, every: 1 })
            .wrap(counting_inner(count.clone()));
        let mut fired = Vec::new();
        for _ in 0..2 {
            assert_eq!(task(NodeId(5), &mut fired), TaskOutcome::Retryable);
        }
        assert_eq!(task(NodeId(5), &mut fired), TaskOutcome::Done);
        // A different node gets its own budget of failures.
        assert_eq!(task(NodeId(6), &mut fired), TaskOutcome::Retryable);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shard_plan_fires_positionally_and_disarms() {
        let plan = FaultPlan::new(3)
            .with(Fault::ShardPanic { shard: 1, round: 2 })
            .with(Fault::ShardFailK { shard: 0, k: 2 })
            .with(Fault::ShardDelay { shard: 2, round: 0, micros: 5 });
        let armed = plan.arm_sharded();
        assert_eq!(armed.action(1, 0), ShardAction::None, "wrong round");
        assert_eq!(armed.action(3, 7), ShardAction::None, "untargeted shard");
        assert_eq!(armed.action(2, 0), ShardAction::Delay(5));
        assert_eq!(armed.action(2, 0), ShardAction::Delay(5), "delays repeat");
        assert!(matches!(armed.action(0, 0), ShardAction::Fail(_)));
        assert!(matches!(armed.action(0, 1), ShardAction::Fail(_)));
        assert_eq!(armed.action(0, 2), ShardAction::None, "k exhausted");
        match armed.action(1, 2) {
            ShardAction::Panic(msg) => assert!(msg.contains(INJECTED_PANIC)),
            other => panic!("expected panic action, got {other:?}"),
        }
        assert_eq!(armed.action(1, 2), ShardAction::None, "panic fires once");

        // A fresh arm starts over; disarm turns everything off at once.
        let rearmed = plan.arm_sharded();
        assert!(matches!(rearmed.action(1, 2), ShardAction::Panic(_)));
        rearmed.disarm();
        assert_eq!(rearmed.action(0, 0), ShardAction::None);
        assert_eq!(rearmed.action(2, 0), ShardAction::None);
    }

    #[test]
    fn task_wrap_ignores_shard_faults() {
        let count = Arc::new(AtomicU32::new(0));
        let task = FaultPlan::new(5)
            .with(Fault::ShardPanic { shard: 0, round: 0 })
            .with(Fault::ShardFailK { shard: 0, k: 9 })
            .wrap(counting_inner(count.clone()));
        let mut fired = Vec::new();
        assert_eq!(task(NodeId(0), &mut fired), TaskOutcome::Done);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn panic_at_nth_counts_executions() {
        silence_injected_panics();
        let count = Arc::new(AtomicU32::new(0));
        let task = FaultPlan::new(11)
            .with(Fault::PanicAtNth { n: 2 })
            .wrap(counting_inner(count.clone()));
        let mut fired = Vec::new();
        assert_eq!(task(NodeId(0), &mut fired), TaskOutcome::Done);
        assert_eq!(task(NodeId(1), &mut fired), TaskOutcome::Done);
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            task(NodeId(2), &mut fired)
        }));
        assert!(unwound.is_err(), "third execution panics");
        assert_eq!(task(NodeId(2), &mut fired), TaskOutcome::Done, "disarmed after firing");
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }
}
