//! Critical-path attribution: where did an update's latency go?
//!
//! [`analyze`] replays drained trace events ([`incr_obs::trace::drain`])
//! against the DAG and, per `exec.update` span, splits end-to-end wall
//! time into named components:
//!
//! * **sched** — time inside `sched.*` scheduler calls on the
//!   coordinator (pop_batch, start, on_completed, …);
//! * **wait** — time the coordinator blocked in
//!   `coordinator.wait_completion`, further split into
//!   * **run** — waiting on plain task execution, and
//!   * **eval** — the share of task time spent inside `datalog`-category
//!     spans (join evaluation, DRed phases), scaled into the wait;
//! * **commit** — `exec.commit` (journal append, fired-edge validation,
//!   scheduler completion);
//! * **other** — the remainder (chunk assembly, channel sends, drains).
//!
//! Depth-1 children of `exec.update` on the coordinator thread are
//! disjoint, so `sched + wait + commit + other == wall` by construction —
//! the attribution always accounts for the whole update.
//!
//! A concrete critical *chain* is recovered from per-task spans (workers
//! record them when [`ExecConfig::record_tasks`](crate::ExecConfig) is
//! set) via [`incr_dag::critical::critical_chain`]: walk back from the
//! last-finishing task through the latest-finishing executed parent.
//! [`flow_events`] renders that chain as Chrome flow arrows that Perfetto
//! draws across worker tracks when appended to the exported trace
//! ([`incr_obs::export::chrome_trace_with`]).

use incr_dag::{Dag, NodeId};
use incr_obs::json::obj;
use incr_obs::trace::{ArgValue, Event, Phase, ThreadEvents};
use incr_obs::Json;

/// One executed task occurrence, as observed on a worker thread.
#[derive(Clone, Debug)]
pub struct TaskSpan {
    pub node: NodeId,
    /// Trace thread id of the worker that ran it (a Perfetto `tid`).
    pub tid: u64,
    /// Shard the executing worker served (`None` = unsharded run); set
    /// from the task span's `shard` arg when
    /// [`ExecConfig::shard`](crate::ExecConfig) was configured.
    pub shard: Option<u64>,
    pub start_us: f64,
    pub end_us: f64,
}

impl TaskSpan {
    pub fn dur_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Latency attribution for one `exec.update` span.
#[derive(Clone, Debug)]
pub struct UpdateAttribution {
    /// Index in start-time order across the drained trace.
    pub update: usize,
    pub start_us: f64,
    pub end_us: f64,
    /// Scheduler calls on the coordinator (`sched.*`).
    pub sched_us: f64,
    /// Coordinator blocked on completions (`coordinator.wait_completion`).
    pub wait_us: f64,
    /// Share of `wait_us` attributed to join/DRed evaluation.
    pub eval_us: f64,
    /// Share of `wait_us` attributed to plain task execution.
    pub run_us: f64,
    /// Commit + validation (`exec.commit`).
    pub commit_us: f64,
    /// Everything else on the coordinator: `wall - sched - wait - commit`.
    pub other_us: f64,
    /// Tasks observed inside this update's window.
    pub executed: usize,
    /// Total task-span time across workers (parallel time, can exceed wall).
    pub task_us: f64,
    /// Shard the update ran on (`None` = unsharded), from the
    /// `exec.update` span's `shard` arg.
    pub shard: Option<u64>,
    /// Per-shard task time inside this window, ascending by shard id.
    /// Empty unless at least one task span carried a shard tag.
    pub shard_task_us: Vec<(u64, f64)>,
    /// The recovered critical chain, in execution order.
    pub chain: Vec<TaskSpan>,
}

impl UpdateAttribution {
    pub fn wall_us(&self) -> f64 {
        self.end_us - self.start_us
    }

    /// Sum of the attribution components; equals [`wall_us`](Self::wall_us)
    /// up to float rounding (`run + eval == wait` by definition).
    pub fn components_us(&self) -> f64 {
        self.sched_us + self.run_us + self.eval_us + self.commit_us + self.other_us
    }

    /// Sum of task time along the critical chain (lower-bounds the wall).
    pub fn chain_us(&self) -> f64 {
        self.chain.iter().map(TaskSpan::dur_us).sum()
    }

    pub fn to_json(&self) -> Json {
        let wall = self.wall_us();
        let pct = |c: f64| if wall > 0.0 { 100.0 * c / wall } else { 0.0 };
        obj([
            ("update", self.update.into()),
            ("wall_us", wall.into()),
            (
                "components_us",
                obj([
                    ("sched", self.sched_us.into()),
                    ("run", self.run_us.into()),
                    ("eval", self.eval_us.into()),
                    ("commit", self.commit_us.into()),
                    ("other", self.other_us.into()),
                ]),
            ),
            (
                "components_pct",
                obj([
                    ("sched", pct(self.sched_us).into()),
                    ("run", pct(self.run_us).into()),
                    ("eval", pct(self.eval_us).into()),
                    ("commit", pct(self.commit_us).into()),
                    ("other", pct(self.other_us).into()),
                ]),
            ),
            ("executed", self.executed.into()),
            ("task_us", self.task_us.into()),
            ("shard", self.shard.map_or(Json::Null, Into::into)),
            (
                "shard_task_us",
                Json::Arr(
                    self.shard_task_us
                        .iter()
                        .map(|&(s, us)| obj([("shard", s.into()), ("task_us", us.into())]))
                        .collect(),
                ),
            ),
            ("chain_us", self.chain_us().into()),
            (
                "chain",
                Json::Arr(
                    self.chain
                        .iter()
                        .map(|t| {
                            obj([
                                ("node", t.node.index().into()),
                                ("tid", t.tid.into()),
                                ("shard", t.shard.map_or(Json::Null, Into::into)),
                                ("start_us", t.start_us.into()),
                                ("dur_us", t.dur_us().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A Begin/End pair reconstructed from one thread's event stream.
struct Span {
    name: String,
    cat: &'static str,
    start_us: f64,
    end_us: f64,
    depth: usize,
    /// Category of the enclosing span, if any (detects nested `datalog`
    /// spans so evaluation time is not double-counted).
    parent_cat: Option<&'static str>,
    args: Vec<(&'static str, ArgValue)>,
}

/// Rebuild completed spans from a thread's Begin/End stream. Spans left
/// open (error paths that never closed) are dropped.
fn reconstruct(events: &[Event]) -> Vec<Span> {
    let mut out: Vec<Span> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for e in events {
        match e.phase {
            Phase::Begin => {
                let parent_cat = stack.last().map(|&i| out[i].cat);
                stack.push(out.len());
                out.push(Span {
                    name: e.name.to_string(),
                    cat: e.cat,
                    start_us: e.ts_us,
                    end_us: f64::NAN,
                    depth: stack.len() - 1,
                    parent_cat,
                    args: e.args.clone(),
                });
            }
            Phase::End => {
                if let Some(i) = stack.pop() {
                    out[i].end_us = e.ts_us;
                    out[i].args.extend(e.args.iter().cloned());
                }
            }
            _ => {}
        }
    }
    out.retain(|s| s.end_us.is_finite());
    out
}

fn num_arg(args: &[(&'static str, ArgValue)], key: &str) -> Option<f64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::Num(n) => Some(*n),
        ArgValue::Str(_) => None,
    })
}

/// Attribute every `exec.update` in the drained trace. Returns one entry
/// per update, ordered by start time. Requires tracing to have been
/// enabled during the run; per-task chains additionally need
/// [`ExecConfig::record_tasks`](crate::ExecConfig).
pub fn analyze(dag: &Dag, threads: &[ThreadEvents]) -> Vec<UpdateAttribution> {
    struct Window {
        start: f64,
        end: f64,
        sched: f64,
        wait: f64,
        commit: f64,
        shard: Option<u64>,
    }
    let mut windows: Vec<Window> = Vec::new();
    let mut tasks: Vec<TaskSpan> = Vec::new();
    // [start, end) of top-level datalog-category spans (join evaluation,
    // DRed phases) on any thread; nested datalog spans are excluded.
    let mut eval_ranges: Vec<(f64, f64)> = Vec::new();

    for t in threads {
        let spans = reconstruct(&t.events);
        for (i, s) in spans.iter().enumerate() {
            if s.cat == "exec" && s.name == "exec.update" {
                let mut w = Window {
                    start: s.start_us,
                    end: s.end_us,
                    sched: 0.0,
                    wait: 0.0,
                    commit: 0.0,
                    shard: num_arg(&s.args, "shard").map(|v| v as u64),
                };
                // Direct children are disjoint sub-intervals of the
                // update, so these sums can never exceed the wall.
                for c in spans[i + 1..]
                    .iter()
                    .take_while(|c| c.start_us < s.end_us)
                    .filter(|c| c.depth == s.depth + 1 && c.end_us <= s.end_us)
                {
                    let d = c.end_us - c.start_us;
                    if c.name.starts_with("sched.") {
                        w.sched += d;
                    } else if c.name == "coordinator.wait_completion" {
                        w.wait += d;
                    } else if c.name == "exec.commit" {
                        w.commit += d;
                    }
                }
                windows.push(w);
            } else if s.cat == "exec" && s.name == "task" {
                if let Some(node) = num_arg(&s.args, "node") {
                    let node = node as usize;
                    if node < dag.node_count() {
                        tasks.push(TaskSpan {
                            node: NodeId(node as u32),
                            tid: t.tid,
                            shard: num_arg(&s.args, "shard").map(|v| v as u64),
                            start_us: s.start_us,
                            end_us: s.end_us,
                        });
                    }
                }
            } else if s.cat == "datalog" && s.parent_cat != Some("datalog") {
                eval_ranges.push((s.start_us, s.end_us));
            }
        }
    }

    windows.sort_by(|a, b| a.start.total_cmp(&b.start));
    let mut out = Vec::with_capacity(windows.len());
    for (update, w) in windows.iter().enumerate() {
        let in_window = |start: f64| start >= w.start && start < w.end;
        let wtasks: Vec<&TaskSpan> = tasks.iter().filter(|t| in_window(t.start_us)).collect();
        let task_us: f64 = wtasks.iter().map(|t| t.dur_us()).sum();
        let mut shard_task_us: Vec<(u64, f64)> = Vec::new();
        for t in &wtasks {
            if let Some(s) = t.shard {
                match shard_task_us.binary_search_by_key(&s, |&(k, _)| k) {
                    Ok(i) => shard_task_us[i].1 += t.dur_us(),
                    Err(i) => shard_task_us.insert(i, (s, t.dur_us())),
                }
            }
        }
        // `+ 0.0` renormalizes the -0.0 an empty f64 `sum()` yields, so
        // a run with no evaluation spans reports eval as +0.0.
        let eval_raw: f64 = eval_ranges
            .iter()
            .filter(|(s, _)| in_window(*s))
            .map(|(s, e)| e - s)
            .sum::<f64>()
            + 0.0;
        // The coordinator's wait covers task execution in parallel; split
        // it by the *measured* evaluation share of worker task time. When
        // task spans are off, fall back to raw eval time capped at the
        // wait (still a lower bound on evaluation's contribution).
        let eval_frac = if task_us > 0.0 {
            (eval_raw / task_us).min(1.0)
        } else if w.wait > 0.0 {
            (eval_raw / w.wait).min(1.0)
        } else {
            0.0
        };
        let eval_us = w.wait * eval_frac;
        let run_us = w.wait - eval_us;
        let wall = w.end - w.start;
        let other_us = (wall - w.sched - w.wait - w.commit).max(0.0);

        // Latest finish per node inside the window, then the chain walk.
        let mut end_of = vec![f64::NEG_INFINITY; dag.node_count()];
        let mut latest: Vec<Option<&TaskSpan>> = vec![None; dag.node_count()];
        for &t in &wtasks {
            let i = t.node.index();
            if t.end_us > end_of[i] {
                end_of[i] = t.end_us;
                latest[i] = Some(t);
            }
        }
        let chain = incr_dag::critical::critical_chain(dag, &end_of, |v| {
            latest[v.index()].is_some()
        })
        .into_iter()
        .map(|v| latest[v.index()].expect("chain node was executed").clone())
        .collect();

        out.push(UpdateAttribution {
            update,
            start_us: w.start,
            end_us: w.end,
            sched_us: w.sched,
            wait_us: w.wait,
            eval_us,
            run_us,
            commit_us: w.commit,
            other_us,
            executed: wtasks.len(),
            task_us,
            shard: w.shard,
            shard_task_us,
            chain,
        });
    }
    out
}

/// Chrome flow events (`ph: "s"`/`"f"`) tracing each update's critical
/// chain across worker tracks. Append to a trace via
/// [`incr_obs::export::chrome_trace_with`]; Perfetto draws them as arrows
/// from each chain task's end to its successor's start.
pub fn flow_events(attrs: &[UpdateAttribution]) -> Vec<Json> {
    let mut out = Vec::new();
    for a in attrs {
        for (hop, pair) in a.chain.windows(2).enumerate() {
            let id = (a.update as u64) << 20 | hop as u64;
            let common = |t: &TaskSpan, ph: &str, ts: f64| {
                obj([
                    ("name", "critical path".into()),
                    ("cat", "flow".into()),
                    ("ph", ph.into()),
                    ("id", id.into()),
                    ("pid", incr_obs::export::REAL_PID.into()),
                    ("tid", t.tid.into()),
                    ("ts", ts.into()),
                ])
            };
            // Arrow leaves just before the producer's end and lands at the
            // consumer's start (Perfetto binds flows to enclosing slices).
            out.push(common(&pair[0], "s", pair[0].end_us));
            out.push(common(&pair[1], "f", pair[1].start_us));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;
    use incr_obs::trace::{Event, Phase, Track};
    use std::borrow::Cow;

    fn ev(
        name: &'static str,
        cat: &'static str,
        phase: Phase,
        ts_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Event {
        Event {
            name: Cow::Borrowed(name),
            cat,
            phase,
            ts_us,
            dur_us: 0.0,
            track: Track::Real { tid: 0 },
            args,
        }
    }

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build().unwrap()
    }

    /// A synthetic coordinator timeline: update [0, 100] with sched 10,
    /// wait 60, commit 20 — other must come out as 10 and the components
    /// must sum exactly to the wall.
    #[test]
    fn components_sum_to_wall() {
        let threads = vec![ThreadEvents {
            tid: 1,
            thread_name: Some("executor-coordinator".into()),
            dropped: 0,
            events: vec![
                ev("exec.update", "exec", Phase::Begin, 0.0, vec![]),
                ev("sched.pop_batch", "sched", Phase::Begin, 5.0, vec![]),
                ev("", "", Phase::End, 15.0, vec![]),
                ev("coordinator.wait_completion", "exec", Phase::Begin, 20.0, vec![]),
                ev("", "", Phase::End, 80.0, vec![]),
                ev("exec.commit", "exec", Phase::Begin, 80.0, vec![]),
                ev("", "", Phase::End, 100.0, vec![]),
                ev("", "", Phase::End, 100.0, vec![]),
            ],
        }];
        let attrs = analyze(&diamond(), &threads);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.wall_us(), 100.0);
        assert_eq!(a.sched_us, 10.0);
        assert_eq!(a.wait_us, 60.0);
        assert_eq!(a.commit_us, 20.0);
        assert_eq!(a.other_us, 10.0);
        assert!((a.components_us() - a.wall_us()).abs() < 1e-9);
        // No datalog spans: the whole wait is plain run time. The eval
        // component must be *positive* zero (an empty f64 sum is -0.0,
        // which would leak "-0.0%" into reports if not renormalized).
        assert_eq!(a.run_us, 60.0);
        assert_eq!(a.eval_us, 0.0);
        assert!(!a.eval_us.is_sign_negative());
    }

    /// Worker task spans drive the chain walk and the eval split.
    #[test]
    fn chain_and_eval_split() {
        let coord = ThreadEvents {
            tid: 1,
            thread_name: Some("executor-coordinator".into()),
            dropped: 0,
            events: vec![
                ev("exec.update", "exec", Phase::Begin, 0.0, vec![]),
                ev("coordinator.wait_completion", "exec", Phase::Begin, 0.0, vec![]),
                ev("", "", Phase::End, 100.0, vec![]),
                ev("", "", Phase::End, 100.0, vec![]),
            ],
        };
        let task = |node: u64, b: f64, e: f64| {
            vec![
                ev("task", "exec", Phase::Begin, b, vec![("node", node.into())]),
                ev("", "", Phase::End, e, vec![]),
            ]
        };
        // Node 2 is the slow branch: chain must be 0 -> 2 -> 3. Half of
        // node 2's time is a nested datalog span (with a doubly-nested
        // child that must not double-count).
        let mut w_events = Vec::new();
        w_events.extend(task(0, 0.0, 10.0));
        w_events.extend(task(1, 10.0, 20.0));
        let worker2 = ThreadEvents {
            tid: 3,
            thread_name: Some("worker-1".into()),
            dropped: 0,
            events: vec![
                ev("task", "exec", Phase::Begin, 10.0, vec![("node", 2u64.into())]),
                ev("dred.rederive", "datalog", Phase::Begin, 20.0, vec![]),
                ev("join.step", "datalog", Phase::Begin, 25.0, vec![]),
                ev("", "", Phase::End, 45.0, vec![]),
                ev("", "", Phase::End, 60.0, vec![]),
                ev("", "", Phase::End, 90.0, vec![]),
            ],
        };
        w_events.extend(task(3, 90.0, 100.0));
        let worker1 = ThreadEvents {
            tid: 2,
            thread_name: Some("worker-0".into()),
            dropped: 0,
            events: w_events,
        };
        let attrs = analyze(&diamond(), &[coord, worker1, worker2]);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert_eq!(a.executed, 4);
        let chain: Vec<u32> = a.chain.iter().map(|t| t.node.0).collect();
        assert_eq!(chain, vec![0, 2, 3]);
        // task_us = 10 + 10 + 80 + 10 = 110; eval_raw = 40 (nested join
        // ignored); eval = 100 * 40/110.
        assert!((a.task_us - 110.0).abs() < 1e-9);
        assert!((a.eval_us - 100.0 * (40.0 / 110.0)).abs() < 1e-9);
        assert!((a.eval_us + a.run_us - a.wait_us).abs() < 1e-9);
        assert!((a.components_us() - a.wall_us()).abs() < 1e-9);
        // Flow events: 2 hops, an "s"/"f" pair each, ids unique per hop.
        let flows = flow_events(&attrs);
        assert_eq!(flows.len(), 4);
        assert!(flows.iter().all(|f| f.get("id").is_some()));
        let s_count = flows
            .iter()
            .filter(|f| f.get("ph").and_then(Json::as_str) == Some("s"))
            .count();
        assert_eq!(s_count, 2);
    }

    /// Two sequential updates on one coordinator produce two windows with
    /// tasks assigned by start time.
    #[test]
    fn multiple_updates_partition_tasks() {
        let coord = ThreadEvents {
            tid: 1,
            thread_name: None,
            dropped: 0,
            events: vec![
                ev("exec.update", "exec", Phase::Begin, 0.0, vec![]),
                ev("", "", Phase::End, 50.0, vec![]),
                ev("exec.update", "exec", Phase::Begin, 60.0, vec![]),
                ev("", "", Phase::End, 100.0, vec![]),
            ],
        };
        let worker = ThreadEvents {
            tid: 2,
            thread_name: None,
            dropped: 0,
            events: vec![
                ev("task", "exec", Phase::Begin, 10.0, vec![("node", 0u64.into())]),
                ev("", "", Phase::End, 20.0, vec![]),
                ev("task", "exec", Phase::Begin, 70.0, vec![("node", 1u64.into())]),
                ev("", "", Phase::End, 80.0, vec![]),
            ],
        };
        let attrs = analyze(&diamond(), &[coord, worker]);
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs[0].executed, 1);
        assert_eq!(attrs[1].executed, 1);
        assert_eq!(attrs[0].chain[0].node, NodeId(0));
        assert_eq!(attrs[1].chain[0].node, NodeId(1));
    }

    /// Unbalanced streams (open spans at drain time) must not panic or
    /// produce phantom windows.
    #[test]
    fn open_spans_are_dropped() {
        let t = ThreadEvents {
            tid: 1,
            thread_name: None,
            dropped: 0,
            events: vec![ev("exec.update", "exec", Phase::Begin, 0.0, vec![])],
        };
        assert!(analyze(&diamond(), &[t]).is_empty());
    }
}
