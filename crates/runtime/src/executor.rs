//! The threaded dispatch loop.
//!
//! One coordinating thread owns the scheduler; `workers` threads execute
//! task closures. Workers report `(node, fired-children)` completions
//! over a channel and the coordinator feeds them back into the scheduler,
//! revealing the active graph exactly as in the simulators — but here the
//! "fired" sets come from *real computation* (e.g. the Datalog engine
//! reporting whether a predicate's output actually changed).

use crossbeam::channel;
use incr_dag::{Dag, NodeId};
use incr_obs::trace;
use incr_sched::Scheduler;
use std::sync::Arc;
use std::time::Instant;

/// What a task execution tells the runtime: which children saw changed
/// input. Must be a subset of the node's children in `G`.
#[derive(Clone, Debug, Default)]
pub struct TaskOutcome {
    pub fired: Vec<NodeId>,
}

/// A task body: executed on a worker thread for each dispatched node.
pub type TaskFn = Arc<dyn Fn(NodeId) -> TaskOutcome + Send + Sync>;

/// Result of one [`Executor::run`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Number of tasks executed (= activated tasks).
    pub executed: usize,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Nodes in completion order (nondeterministic across runs).
    pub completion_order: Vec<NodeId>,
}

/// A fixed-size worker pool driving one scheduler.
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Pool with `workers` threads (the paper's experiments use 8).
    pub fn new(workers: usize) -> Executor {
        assert!(workers >= 1);
        Executor { workers }
    }

    /// Execute the incremental update: dirty `initial` tasks, then run
    /// every task the scheduler deems safe until quiescent. Panics if the
    /// scheduler stalls or a task fires a non-edge.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> ExecReport {
        let t0 = Instant::now();
        let (work_tx, work_rx) = channel::unbounded::<NodeId>();
        let (done_tx, done_rx) = channel::unbounded::<(NodeId, TaskOutcome)>();

        scheduler.start(initial);
        let mut executed = 0usize;
        let mut completion_order = Vec::new();

        std::thread::scope(|scope| {
            for i in 0..self.workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let task = task.clone();
                scope.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_name(&format!("worker-{i}"));
                    }
                    loop {
                        let idle = trace::span("exec", "worker.idle");
                        let Ok(node) = work_rx.recv() else { break };
                        drop(idle);
                        // Only pay the label allocation when tracing is on.
                        let span = trace::enabled().then(|| {
                            trace::span_with(
                                "exec",
                                format!("task {}", node.0),
                                vec![("node", (node.0 as u64).into())],
                            )
                        });
                        let outcome = task(node);
                        drop(span);
                        if done_tx.send((node, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            // Kept only so the coordinator can sample the queue depth.
            let work_depth = work_rx.clone();
            drop(work_rx);
            drop(done_tx);

            if trace::enabled() {
                trace::set_thread_name("executor-coordinator");
            }
            let mut in_flight = 0usize;
            loop {
                while let Some(t) = scheduler.pop_ready() {
                    work_tx.send(t).expect("workers alive");
                    in_flight += 1;
                }
                if trace::enabled() {
                    trace::counter("exec", "exec.work_queue_depth", work_depth.len() as f64);
                    trace::counter("exec", "exec.in_flight", in_flight as f64);
                }
                if in_flight == 0 {
                    assert!(
                        scheduler.is_quiescent(),
                        "{} stalled with active work remaining",
                        scheduler.name()
                    );
                    break;
                }
                let wait = trace::span("exec", "coordinator.wait_completion");
                let (node, outcome) = done_rx.recv().expect("workers alive");
                drop(wait);
                for &c in &outcome.fired {
                    assert!(
                        dag.has_edge(node, c),
                        "task {node} fired non-edge to {c}"
                    );
                }
                in_flight -= 1;
                executed += 1;
                completion_order.push(node);
                scheduler.on_completed(node, &outcome.fired);
            }
            drop(work_tx); // workers drain and exit
        });

        ExecReport {
            executed,
            wall_seconds: t0.elapsed().as_secs_f64(),
            completion_order,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;
    use incr_sched::{Hybrid, LevelBased, LogicBlox};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    /// Fire every out-edge: full recomputation of the diamond.
    fn fire_all(dag: &Arc<Dag>) -> TaskFn {
        let dag = dag.clone();
        Arc::new(move |v| TaskOutcome {
            fired: dag.children(v).to_vec(),
        })
    }

    #[test]
    fn executes_diamond_fully() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::new(4).run(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
        assert_eq!(report.completion_order.len(), 4);
        assert_eq!(report.completion_order[0], NodeId(0));
        assert_eq!(*report.completion_order.last().unwrap(), NodeId(3));
    }

    #[test]
    fn partial_firing_limits_execution() {
        let dag = diamond();
        let mut s = LogicBlox::new(dag.clone());
        // Node 0 fires only node 1; nodes 1..3 fire nothing.
        let f: TaskFn = Arc::new(|v| TaskOutcome {
            fired: if v == NodeId(0) { vec![NodeId(1)] } else { vec![] },
        });
        let report = Executor::new(2).run(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 2);
    }

    #[test]
    fn tasks_run_in_parallel_on_real_threads() {
        // Wide fan: one source, 16 children; children block on a barrier
        // that only releases when several run concurrently.
        let mut b = DagBuilder::new(17);
        for i in 1..17u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBased::new(dag.clone());
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let f: TaskFn = {
            let dag = dag.clone();
            let peak = peak.clone();
            let live = live.clone();
            Arc::new(move |v| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                TaskOutcome {
                    fired: dag.children(v).to_vec(),
                }
            })
        };
        let report = Executor::new(8).run(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 17);
        assert!(
            peak.load(Ordering::SeqCst) >= 4,
            "expected real overlap, saw peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn hybrid_runs_on_real_threads() {
        let dag = diamond();
        let mut s = Hybrid::new(dag.clone());
        let report = Executor::new(4).run(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
    }

    #[test]
    #[should_panic(expected = "fired non-edge")]
    fn firing_a_non_edge_is_caught() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let f: TaskFn = Arc::new(|_| TaskOutcome {
            fired: vec![NodeId(3)], // node 0 has no edge to 3
        });
        let _ = Executor::new(2).run(&mut s, &dag, &[NodeId(0)], f);
    }
}
