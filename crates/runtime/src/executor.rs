//! The threaded dispatch loop, built for sustained update-stream
//! throughput *under failure*.
//!
//! One coordinating thread owns the scheduler; `workers` threads execute
//! task closures. The hot path is batched end to end:
//!
//! * the coordinator pulls whole wavefronts with
//!   [`Scheduler::pop_batch`] (one trait crossing per wavefront, not per
//!   node) and ships them to workers as multi-task *chunks* over a
//!   **bounded** channel — backpressure, so a fast coordinator can never
//!   run unboundedly ahead of slow workers;
//! * workers append each task's fired children straight into a reusable
//!   [`CompletionBatch`] (no per-task allocation) and flush the whole
//!   buffer back in one message;
//! * the coordinator feeds completions back with
//!   [`Scheduler::complete_batch`], and chunk vectors / completion
//!   batches recycle between the two sides so steady state allocates
//!   nothing.
//!
//! # Fault tolerance
//!
//! The paper's safety invariant — no active task executes twice — must
//! hold even when a task body misbehaves, so every failure mode has a
//! typed, non-hanging exit:
//!
//! * **Panic isolation** — task bodies run under `catch_unwind`; a panic
//!   becomes [`ExecError::TaskPanicked`], the pipeline drains cleanly
//!   (outstanding completions are committed, workers shut down), and the
//!   coordinator returns `Err` instead of wedging or poisoning threads.
//! * **Retry with bounded backoff** — a fallible task body
//!   ([`TryTaskFn`]) may return [`TaskOutcome::Retryable`]; the worker
//!   re-runs it per the executor's [`RetryPolicy`] with exponential
//!   backoff. Only *failed* attempts re-run — a successful execution is
//!   never repeated, so run-once safety is preserved. Exhausted retries
//!   surface as [`ExecError::TaskFailed`]. `exec.retries` and
//!   `exec.task_failures` count both in `incr-obs`.
//! * **Stall watchdog** — an optional per-update deadline
//!   ([`ExecConfig::deadline`]): instead of hanging forever on a wedged
//!   pipeline, the run returns [`ExecError::Timeout`] carrying an
//!   [`ExecSnapshot`] diagnostic (in-flight nodes, queue depth).
//! * **Cancellation** — a [`CancelToken`] aborts an in-flight update
//!   between wavefronts; in-flight completions are committed, then the
//!   run returns [`ExecError::Cancelled`]. The generation-stamped
//!   schedulers make the abandoned state harmless: the next `start()`
//!   behaves exactly like a fresh update.
//! * **Crash-consistent resume** — [`Executor::run_fallible`] can
//!   journal the executed set into an [`UpdateJournal`]; re-running a
//!   failed update with the same journal *replays* journaled completions
//!   (delivering their recorded fired sets to the scheduler without
//!   executing the task again) and executes only what the failed attempt
//!   never ran.
//!
//! Workers park in `recv` when the queue is empty (condvar, no spinning)
//! and exit on an explicit [`WorkMsg::Shutdown`] — distinct from a stalled
//! scheduler, which surfaces as [`ExecError::Stall`]. Worker threads are
//! joined with a bounded grace period; a thread wedged inside a hung task
//! body is *leaked* (counted in `exec.workers_leaked`) rather than letting
//! it hold the caller hostage. Completion order is still recorded for the
//! safety checker; the "fired" sets come from *real computation* (e.g.
//! the Datalog engine reporting whether a predicate's output actually
//! changed).
//!
//! [`Executor::run_stream`] drives a whole stream of updates through one
//! warm worker pool — combined with the O(active) `start()` of the
//! schedulers, a stream of 10-node updates costs per-update work
//! proportional to 10, not to the DAG size. A mid-stream failure returns
//! [`StreamError`], which reports the error *and* the accounting for the
//! updates that did complete (later updates are not attempted).

use crossbeam::channel::{self, RecvTimeoutError};
use incr_dag::{Dag, NodeId};
use incr_obs::flight::{self, FlightCode};
use incr_obs::{trace, Json};
use incr_sched::{ActivationCoalescer, CompletionBatch, Scheduler};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An infallible task body: executed on a worker thread for each
/// dispatched node. Children whose input changed are appended to `fired`
/// (which the caller provides and recycles — implementations must only
/// push, never read or clear it).
pub type TaskFn = Arc<dyn Fn(NodeId, &mut Vec<NodeId>) + Send + Sync>;

/// A fallible task body: like [`TaskFn`] but reporting whether the
/// execution succeeded. On [`TaskOutcome::Retryable`] the worker discards
/// anything the attempt pushed into `fired` and re-runs per the
/// [`RetryPolicy`]; only a [`TaskOutcome::Done`] execution counts.
pub type TryTaskFn = Arc<dyn Fn(NodeId, &mut Vec<NodeId>) -> TaskOutcome + Send + Sync>;

/// What one task execution attempt reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskOutcome {
    /// The attempt succeeded; its fired children are final.
    Done,
    /// Transient failure: discard this attempt's fired children and try
    /// again (subject to the executor's [`RetryPolicy`]).
    Retryable,
}

/// Adapt an infallible [`TaskFn`] to the fallible interface.
pub fn infallible(task: TaskFn) -> TryTaskFn {
    Arc::new(move |v, fired: &mut Vec<NodeId>| {
        task(v, fired);
        TaskOutcome::Done
    })
}

/// Bounded-retry policy for [`TaskOutcome::Retryable`] attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per task including the first (≥ 1). With the
    /// default of 1, a retryable failure fails the run immediately.
    pub max_attempts: u32,
    /// Delay before the first re-attempt; doubles per subsequent attempt.
    pub backoff: Duration,
    /// Upper bound on the per-attempt backoff delay.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            backoff_cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Allow `n` retries after the initial attempt, with a small
    /// exponential backoff.
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n + 1,
            backoff: Duration::from_micros(50),
            backoff_cap: Duration::from_millis(100),
        }
    }

    /// Backoff before re-attempt number `retry_index` (0-based).
    fn delay(&self, retry_index: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let factor = 1u32 << retry_index.min(16);
        (self.backoff * factor).min(self.backoff_cap)
    }
}

/// Cooperative cancellation handle: cloneable, settable from any thread.
/// The coordinator checks it between wavefronts, so cancellation aborts
/// the update at a batch boundary with all in-flight work committed.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation of any run observing this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Re-arm the token for the next run.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Diagnostic snapshot attached to [`ExecError::Timeout`]: what the
/// pipeline looked like when the watchdog fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecSnapshot {
    /// Scheduler driving the wedged update.
    pub scheduler: String,
    /// Dispatched-but-uncompleted nodes, sorted.
    pub in_flight: Vec<NodeId>,
    /// Chunks sitting in the work queue, not yet picked up by a worker.
    pub queued_chunks: usize,
    /// Tasks committed before the deadline fired.
    pub executed: usize,
    /// Wall-clock milliseconds since the update started.
    pub elapsed_ms: u64,
}

impl fmt::Display for ExecSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} executed, {} in flight ({}), {} queued chunks after {} ms",
            self.executed,
            self.in_flight.len(),
            fmt_nodes(&self.in_flight),
            self.queued_chunks,
            self.elapsed_ms
        )
    }
}

/// At most eight node ids, then an ellipsis — snapshots must stay
/// one-line printable even for huge in-flight sets.
fn fmt_nodes(nodes: &[NodeId]) -> String {
    let mut s = String::new();
    for (i, v) in nodes.iter().take(8).enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&v.to_string());
    }
    if nodes.len() > 8 {
        s.push_str(", …");
    }
    s
}

/// Why a run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The scheduler offered no task while active work remained.
    Stall { scheduler: String },
    /// A task fired a child it has no edge to in `G`.
    NonEdge { from: NodeId, to: NodeId },
    /// A task body panicked; the panic was isolated to its worker and the
    /// pipeline drained cleanly.
    TaskPanicked { node: NodeId, message: String },
    /// A task kept reporting [`TaskOutcome::Retryable`] until the
    /// [`RetryPolicy`] was exhausted.
    TaskFailed { node: NodeId, attempts: u32 },
    /// The watchdog deadline elapsed before the update quiesced.
    Timeout { snapshot: Box<ExecSnapshot> },
    /// A [`CancelToken`] aborted the update; `executed` tasks committed
    /// before the abort.
    Cancelled { executed: usize },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Stall { scheduler } => {
                write!(f, "{scheduler} stalled with active work remaining")
            }
            ExecError::NonEdge { from, to } => {
                write!(f, "task {from} fired non-edge to {to}")
            }
            ExecError::TaskPanicked { node, message } => {
                write!(f, "task {node} panicked: {message}")
            }
            ExecError::TaskFailed { node, attempts } => {
                write!(f, "task {node} failed after {attempts} attempts")
            }
            ExecError::Timeout { snapshot } => {
                write!(f, "watchdog deadline elapsed: {snapshot}")
            }
            ExecError::Cancelled { executed } => {
                write!(f, "update cancelled after {executed} executed tasks")
            }
        }
    }
}

impl ExecError {
    /// Short machine-readable label — black-box dump filenames and the
    /// `kind` field of their context record.
    pub fn kind(&self) -> &'static str {
        match self {
            ExecError::Stall { .. } => "stall",
            ExecError::NonEdge { .. } => "non-edge",
            ExecError::TaskPanicked { .. } => "panic",
            ExecError::TaskFailed { .. } => "task-failed",
            ExecError::Timeout { .. } => "timeout",
            ExecError::Cancelled { .. } => "cancelled",
        }
    }
}

impl std::error::Error for ExecError {}

/// A mid-stream failure from [`Executor::run_stream`] /
/// [`Executor::run_stream_with`]: the error plus the accounting for the
/// updates that completed before it. Updates after the failing batch are
/// not attempted.
///
/// To resume: re-drive `failed_initial` through
/// [`Executor::run_fallible`] with the same journal that was passed to
/// the stream (journaled completions replay instead of re-executing),
/// then continue the stream from update index
/// `completed.updates + failed_updates`.
#[derive(Clone, Debug)]
pub struct StreamError {
    /// What stopped the stream (failure of the batch admitting update
    /// `completed.updates` onward).
    pub error: ExecError,
    /// Report covering only the fully completed updates.
    pub completed: StreamReport,
    /// Merged initially-active set of the failing batch — the `initial`
    /// to pass when resuming it.
    pub failed_initial: Vec<NodeId>,
    /// How many stream updates the failing batch had absorbed.
    pub failed_updates: usize,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "update {} failed ({} updates completed): {}",
            self.completed.updates, self.completed.updates, self.error
        )
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Per-update journal of committed executions: which nodes ran
/// successfully and what they fired. After a failed or cancelled update,
/// pass the same journal back to [`Executor::run_fallible`] to *resume*:
/// journaled nodes are completed from the record instead of re-executed,
/// so the run-once invariant holds across the failure. A successful run
/// commits the update and clears the journal.
#[derive(Clone, Debug, Default)]
pub struct UpdateJournal {
    nodes: Vec<NodeId>,
    /// All fired sets back-to-back in commit order; `ends[i]` is the
    /// arena offset one past node `i`'s slice. A flat arena keeps
    /// journaling off the allocator on the hot completion path.
    fired_arena: Vec<NodeId>,
    ends: Vec<usize>,
    /// Commit position per node id (`usize::MAX` = not journaled), grown
    /// on demand — an array write per commit instead of a hash insert.
    index: Vec<usize>,
}

const NOT_JOURNALED: usize = usize::MAX;

impl UpdateJournal {
    pub fn new() -> UpdateJournal {
        UpdateJournal::default()
    }

    /// Committed executions recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forget the recorded update (called automatically on success).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.fired_arena.clear();
        self.ends.clear();
        self.index.fill(NOT_JOURNALED);
    }

    /// Was `v` committed by a previous attempt of this update?
    pub fn contains(&self, v: NodeId) -> bool {
        self.slot(v) != NOT_JOURNALED
    }

    /// The fired children recorded for `v`, if journaled.
    pub fn fired_of(&self, v: NodeId) -> Option<&[NodeId]> {
        let i = self.slot(v);
        (i != NOT_JOURNALED).then(|| {
            let start = if i == 0 { 0 } else { self.ends[i - 1] };
            &self.fired_arena[start..self.ends[i]]
        })
    }

    /// Committed nodes in commit order.
    pub fn executed(&self) -> &[NodeId] {
        &self.nodes
    }

    fn slot(&self, v: NodeId) -> usize {
        self.index.get(v.index()).copied().unwrap_or(NOT_JOURNALED)
    }

    fn record(&mut self, v: NodeId, fired: &[NodeId]) {
        debug_assert!(!self.contains(v), "journaled {v} twice");
        if self.index.len() <= v.index() {
            self.index.resize(v.index() + 1, NOT_JOURNALED);
        }
        self.index[v.index()] = self.nodes.len();
        self.nodes.push(v);
        self.fired_arena.extend_from_slice(fired);
        self.ends.push(self.fired_arena.len());
    }
}

/// Tuning for the dispatch pipeline.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker thread count (the paper's experiments use 8).
    pub workers: usize,
    /// Max tasks pulled from the scheduler per `pop_batch` call.
    pub batch_max: usize,
    /// Max tasks per chunk handed to a single worker.
    pub chunk_max: usize,
    /// Bounded work-queue capacity in chunks (the backpressure knob).
    pub queue_cap: usize,
    /// Legacy one-task-per-message dispatch over unbounded channels with a
    /// fresh allocation per completion — the pre-batching executor,
    /// preserved as the A/B baseline for the `exec_throughput` bench.
    pub per_task: bool,
    /// Retry policy for [`TaskOutcome::Retryable`] attempts.
    pub retry: RetryPolicy,
    /// Per-update watchdog deadline: a run not quiescent within this
    /// budget returns [`ExecError::Timeout`] with a diagnostic snapshot
    /// instead of waiting forever. `None` (default) disables the
    /// watchdog and its in-flight bookkeeping.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation: when the token fires, the in-flight
    /// update aborts with [`ExecError::Cancelled`] at the next wavefront
    /// boundary.
    pub cancel: Option<CancelToken>,
    /// How long shutdown waits for worker threads before leaking them
    /// (a worker wedged in a hung task body must not block the caller).
    pub join_grace: Duration,
    /// How long the error path waits for in-flight completions while
    /// draining the pipeline before giving up on stragglers.
    pub drain_grace: Duration,
    /// Where flight-recorder black boxes land when a run returns
    /// [`ExecError`]. Defaults from `INCR_BLACKBOX_DIR` (set it to `off`
    /// or empty to disable), falling back to `results/blackbox`. `None`
    /// disables dump-on-error entirely.
    pub black_box: Option<PathBuf>,
    /// Record one trace span per executed task (name `task`, arg `node`)
    /// when tracing is enabled — the input `dlsched explain`'s
    /// critical-path analyzer needs. Off by default: per-task spans on
    /// large updates dominate trace volume.
    pub record_tasks: bool,
    /// Shard this executor serves in a sharded runtime (`None` =
    /// unsharded). Tags the flight-recorder events of the coordinator
    /// and worker threads, the `exec.update` span, and per-task spans,
    /// so critical-path attribution can split time per shard.
    pub shard: Option<u64>,
}

/// Default black-box directory: the `INCR_BLACKBOX_DIR` environment
/// variable if set (empty/`0`/`off` disables), else `results/blackbox`.
pub fn default_black_box_dir() -> Option<PathBuf> {
    match std::env::var("INCR_BLACKBOX_DIR") {
        Ok(v) if v.is_empty() || v == "0" || v == "off" => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => Some(PathBuf::from("results/blackbox")),
    }
}

impl ExecConfig {
    pub fn new(workers: usize) -> ExecConfig {
        assert!(workers >= 1);
        ExecConfig {
            workers,
            batch_max: 256,
            chunk_max: 32,
            queue_cap: 64,
            per_task: false,
            retry: RetryPolicy::default(),
            deadline: None,
            cancel: None,
            join_grace: Duration::from_secs(5),
            drain_grace: Duration::from_secs(5),
            black_box: default_black_box_dir(),
            record_tasks: false,
            shard: None,
        }
    }
}

/// The flight-recorder tag for a shard config: `0` = unsharded,
/// `s + 1` = shard `s` (see [`incr_obs::flight::set_shard`]).
fn shard_tag(shard: Option<u64>) -> u64 {
    shard.map_or(0, |s| s + 1)
}

/// Result of one [`Executor::run`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Number of tasks executed this run (= newly activated tasks; does
    /// not include journal replays).
    pub executed: usize,
    /// Completions replayed from an [`UpdateJournal`] instead of
    /// executed (0 unless resuming a failed update).
    pub replayed: usize,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Nodes in completion order (nondeterministic across runs).
    pub completion_order: Vec<NodeId>,
    /// Fraction of coordinator wall time spent doing work (scheduling,
    /// dispatching, feeding back completions) rather than blocked waiting
    /// for workers. Near 1.0 means the coordinator is the bottleneck.
    pub coord_busy_fraction: f64,
}

/// Result of one [`Executor::run_stream`] /
/// [`Executor::run_stream_with`].
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Updates driven to quiescence.
    pub updates: usize,
    /// Total tasks executed across all updates.
    pub executed: usize,
    /// Wall-clock duration of the whole stream.
    pub wall_seconds: f64,
    /// Per-update processing durations (members of a coalesced batch all
    /// record their batch's drive duration).
    pub update_seconds: Vec<f64>,
    /// Per-update sojourn latency: batch completion minus the update's
    /// arrival time (`StreamUpdate::after`), queue wait included.
    pub latency_seconds: Vec<f64>,
    /// Scheduler runs admitted (== `updates` unless coalescing merged
    /// some).
    pub batches: usize,
    /// Updates that shared a batch with at least one other update.
    pub coalesced: usize,
    /// Coordinator busy fraction over the whole stream.
    pub coord_busy_fraction: f64,
}

/// One update in a stream: its initially-dirty nodes plus its arrival
/// time as an offset from the stream's start. A slice passed to
/// [`Executor::run_stream_with`] must be sorted by `after` (FIFO
/// admission).
#[derive(Clone, Debug)]
pub struct StreamUpdate {
    /// Initially-active (dirty) nodes of this update.
    pub initial: Vec<NodeId>,
    /// Arrival offset from stream start. `ZERO` = already queued when the
    /// stream starts (closed-loop benchmarking).
    pub after: Duration,
}

impl StreamUpdate {
    /// An update available from the start of the stream.
    pub fn now(initial: Vec<NodeId>) -> StreamUpdate {
        StreamUpdate {
            initial,
            after: Duration::ZERO,
        }
    }

    /// An update arriving `after` the stream starts.
    pub fn at(initial: Vec<NodeId>, after: Duration) -> StreamUpdate {
        StreamUpdate { initial, after }
    }
}

/// Admission policy for [`Executor::run_stream_with`]: how aggressively
/// queued updates are merged into one scheduler run, and whether the
/// coordinator overlaps admission work with the previous update's tail
/// drain.
///
/// The policy is *adaptive by construction*: a batch only ever absorbs
/// updates that have already arrived, so a shallow queue passes updates
/// through individually (batch of one, no added latency) while a backlog
/// coalesces up to `max_coalesce` updates into one cascade. The only
/// deliberate waiting is the *dwell*: with a non-zero `latency_budget`,
/// an under-filled batch may wait for imminent arrivals, but never past
/// the point where its oldest member has aged `latency_budget`.
#[derive(Clone, Debug)]
pub struct StreamPolicy {
    /// Max stream updates merged into one scheduler `start` (1 = never
    /// coalesce).
    pub max_coalesce: usize,
    /// Upper bound on admission delay deliberately added to any update to
    /// attract more batch members. `ZERO` = admit the moment work exists.
    pub latency_budget: Duration,
    /// Overlap the next batch's admission (arrival scan, activation-set
    /// union, bookkeeping) with the in-flight update's tail drain. The
    /// scheduler `start` itself stays *after* the previous update's last
    /// completion — the run-once boundary is per update — but the work
    /// needed to issue it is already done when quiescence lands.
    pub pipeline: bool,
}

impl StreamPolicy {
    /// The serial baseline: one update per run, admission between runs.
    /// [`Executor::run_stream`]'s semantics.
    pub fn serial() -> StreamPolicy {
        StreamPolicy {
            max_coalesce: 1,
            latency_budget: Duration::ZERO,
            pipeline: false,
        }
    }

    /// One update per run, but admission overlapped with the tail drain.
    pub fn pipelined() -> StreamPolicy {
        StreamPolicy {
            max_coalesce: 1,
            latency_budget: Duration::ZERO,
            pipeline: true,
        }
    }

    /// Pipelined admission with up to `max_coalesce`-way merging and a
    /// small (1ms) dwell budget.
    pub fn coalesced(max_coalesce: usize) -> StreamPolicy {
        StreamPolicy {
            max_coalesce: max_coalesce.max(1),
            latency_budget: Duration::from_millis(1),
            pipeline: true,
        }
    }
}

impl Default for StreamPolicy {
    fn default() -> StreamPolicy {
        StreamPolicy::serial()
    }
}

/// What the coordinator sends workers.
#[derive(Debug)]
enum WorkMsg {
    /// Tasks to execute. The Vec travels back through the recycle channel.
    Chunk(Vec<NodeId>),
    /// Orderly end of the run: exit now. Distinct from a disconnect so a
    /// dropped coordinator (panic, error path) also releases workers, but
    /// the normal path is explicit.
    Shutdown,
}

/// How one task execution failed on a worker.
#[derive(Clone, Debug)]
enum TaskError {
    Panicked(String),
    Exhausted { attempts: u32 },
}

impl TaskError {
    fn into_exec_error(self, node: NodeId) -> ExecError {
        match self {
            TaskError::Panicked(message) => ExecError::TaskPanicked { node, message },
            TaskError::Exhausted { attempts } => ExecError::TaskFailed { node, attempts },
        }
    }
}

/// What workers send back: a clean batch, or the completions committed
/// before a failing task plus the failure itself. Tasks after the failing
/// one in the chunk are abandoned (the error path accounts for them when
/// it steals the remains of the pipeline).
#[derive(Debug)]
enum DoneMsg {
    Batch(CompletionBatch),
    Failed {
        batch: CompletionBatch,
        node: NodeId,
        /// Tasks of the chunk after the failing node that were never run.
        abandoned: usize,
        error: TaskError,
    },
}

/// The coordinator's ends of the pipes.
struct Pipes {
    work_tx: channel::Sender<WorkMsg>,
    /// Coordinator-side receiver clone of the work queue: the error path
    /// *steals* unstarted chunks back so the drain can account for them.
    work_steal: channel::Receiver<WorkMsg>,
    done_rx: channel::Receiver<DoneMsg>,
    /// Cleared completion batches returning to workers.
    batch_back_tx: channel::Sender<CompletionBatch>,
    /// Cleared chunk vectors returning from workers.
    chunk_back_rx: channel::Receiver<Vec<NodeId>>,
}

/// A fixed-size worker pool driving one scheduler.
pub struct Executor {
    cfg: ExecConfig,
}

impl Executor {
    /// Pool with `workers` threads and default batching.
    pub fn new(workers: usize) -> Executor {
        Executor {
            cfg: ExecConfig::new(workers),
        }
    }

    /// Pool with explicit pipeline tuning.
    pub fn with_config(cfg: ExecConfig) -> Executor {
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_max >= 1 && cfg.chunk_max >= 1 && cfg.queue_cap >= 1);
        assert!(cfg.retry.max_attempts >= 1);
        Executor { cfg }
    }

    /// Execute one incremental update: dirty `initial` tasks, then run
    /// every task the scheduler deems safe until quiescent.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> Result<ExecReport, ExecError> {
        self.run_fallible(scheduler, dag, initial, infallible(task), None)
    }

    /// [`Executor::run`] with a fallible task body and optional
    /// crash-consistent journaling.
    ///
    /// With `journal`:
    /// * every committed execution is recorded before the run returns —
    ///   including completions drained on the error path;
    /// * if the journal already has entries (a previous attempt of this
    ///   update failed), those nodes are *replayed* — completed with their
    ///   recorded fired sets, never re-executed;
    /// * a successful run clears the journal (update committed).
    ///
    /// Resume only with the same `initial` set and a deterministic task
    /// body; the journal describes *this* update, not any update.
    pub fn run_fallible(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TryTaskFn,
        mut journal: Option<&mut UpdateJournal>,
    ) -> Result<ExecReport, ExecError> {
        if self.cfg.per_task {
            return self.run_per_task(scheduler, dag, initial, task, journal);
        }
        let t0 = Instant::now();
        let mut completion_order = Vec::new();
        let mut wait_ns = 0u64;
        let result = self.with_pool(&task, |pipes, ready| {
            drive_update(
                scheduler,
                dag,
                initial,
                &self.cfg,
                pipes,
                ready,
                Some(&mut completion_order),
                &mut wait_ns,
                journal.as_deref_mut(),
                None,
            )
        });
        let stats = match result {
            Ok(stats) => stats,
            Err(error) => {
                black_box_dump(&self.cfg, &error, scheduler.name());
                return Err(error);
            }
        };
        if let Some(j) = journal {
            j.clear();
        }
        Ok(finish_report(stats, completion_order, t0, wait_ns))
    }

    /// [`Executor::run`], panicking on error — the pre-existing contract,
    /// kept for tests and simple tools.
    pub fn run_or_panic(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> ExecReport {
        match self.run(scheduler, dag, initial, task) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Drive a whole stream of updates through one warm worker pool: the
    /// scheduler is `start`ed per update (O(active) with the stamped
    /// schedulers) and the pool, channels and buffers persist across
    /// updates, so per-update dispatch cost is independent of both V and
    /// the stream position. A failing update stops the stream; the
    /// [`StreamError`] reports which update failed and the accounting for
    /// those that completed.
    pub fn run_stream(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        updates: &[Vec<NodeId>],
        task: TaskFn,
    ) -> Result<StreamReport, Box<StreamError>> {
        let stream: Vec<StreamUpdate> = updates
            .iter()
            .map(|initial| StreamUpdate::now(initial.clone()))
            .collect();
        self.run_stream_with(
            scheduler,
            dag,
            &stream,
            infallible(task),
            &StreamPolicy::serial(),
            None,
        )
    }

    /// The stream fast path: [`Executor::run_stream`] with an explicit
    /// admission [`StreamPolicy`], arrival times, a fallible task body,
    /// and optional crash-consistent journaling.
    ///
    /// Updates are admitted FIFO. Under a [`StreamPolicy`] with
    /// `max_coalesce > 1`, every batch absorbs up to that many
    /// already-arrived updates and drives their *merged* activation set
    /// through one scheduler `start` — one cascade for the burst. With
    /// `pipeline`, admission work for batch k+1 (arrival scan, set union,
    /// latency bookkeeping) happens while batch k's last wavefront
    /// drains, so quiescence is immediately followed by the next `start`.
    ///
    /// Fault-tolerance semantics hold per *batch* (= per coalesced
    /// update): retry and cancellation apply inside each drive as in
    /// [`Executor::run_fallible`], and with a `journal` the failing
    /// batch's committed executions are recorded for replay — see
    /// [`StreamError`] for the resume recipe.
    pub fn run_stream_with(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        updates: &[StreamUpdate],
        task: TryTaskFn,
        policy: &StreamPolicy,
        journal: Option<&mut UpdateJournal>,
    ) -> Result<StreamReport, Box<StreamError>> {
        self.run_stream_committed(scheduler, dag, updates, task, policy, journal, &mut |_| {})
    }

    /// [`Executor::run_stream_with`] plus an `on_commit` hook invoked at
    /// every *committed batch boundary* — after the batch's cascade
    /// quiesced and its journal entries were cleared, before the next
    /// batch is admitted. This is the stream's publish point: an
    /// epoch-versioned store (e.g. the Datalog engine's MVCC database)
    /// bumps its published epoch here, so concurrent snapshot readers
    /// advance exactly once per coalesced batch, never mid-cascade. The
    /// hook receives the number of source updates the committed batch
    /// coalesced. Failed batches never reach the hook (nothing is
    /// published; the journal keeps their committed executions for
    /// replay).
    #[allow(clippy::too_many_arguments)]
    pub fn run_stream_committed(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        updates: &[StreamUpdate],
        task: TryTaskFn,
        policy: &StreamPolicy,
        mut journal: Option<&mut UpdateJournal>,
        on_commit: &mut dyn FnMut(usize),
    ) -> Result<StreamReport, Box<StreamError>> {
        assert!(policy.max_coalesce >= 1);
        debug_assert!(
            updates.windows(2).all(|w| w[0].after <= w[1].after),
            "stream updates must be sorted by arrival time"
        );
        let t0 = Instant::now();
        let mut update_seconds = Vec::with_capacity(updates.len());
        let mut latency_seconds = Vec::with_capacity(updates.len());
        let mut executed = 0usize;
        let mut wait_ns = 0u64;
        let mut batches = 0usize;
        let mut coalesced = 0usize;
        let mut failed_initial: Vec<NodeId> = Vec::new();
        let mut failed_updates = 0usize;
        let registry = incr_obs::registry();
        let depth_gauge = registry.gauge("stream.queue_depth");
        let coalesced_counter = registry.counter("stream.coalesced");
        let latency_hist = registry.histogram("stream.update_latency_ns");
        // SLO tracking: every member's sojourn feeds the rolling window;
        // the derived p50/p95/p99 + burn rate publish as `stream.slo.*`
        // gauges every SLO_PUBLISH_EVERY batches (and once at the end).
        let slo = incr_obs::slo::stream_tracker();
        slo.set_budget_ns(policy.latency_budget.as_nanos() as u64);
        let slo_samples = registry.counter("stream.slo.samples");
        let slo_over = registry.counter("stream.slo.over_budget");

        let result = self.with_pool(&task, |pipes, ready| {
            let mut adm = Admission::new(updates, t0, policy, dag.node_count(), depth_gauge.clone());
            loop {
                adm.absorb();
                if adm.staged.is_empty() {
                    match adm.next_arrival() {
                        Some(after) => {
                            // Idle until the next update arrives.
                            std::thread::sleep(after.saturating_sub(t0.elapsed()));
                            continue;
                        }
                        None => break, // stream exhausted
                    }
                }
                adm.dwell();
                let (members, initial) = adm.take_staged();
                batches += 1;
                if flight::enabled() {
                    flight::instant(FlightCode::StreamAdmit, members.len() as u64);
                    flight::counter(FlightCode::StreamDepth, depth_gauge.get() as f64);
                }
                if members.len() > 1 {
                    coalesced += members.len();
                    coalesced_counter.add(members.len() as u64);
                }
                let u0 = Instant::now();
                let outcome = {
                    // Scoped so the overlap hook's borrow of `adm` ends
                    // before the staged buffers are recycled below.
                    let mut overlap = || adm.absorb();
                    drive_update(
                        scheduler,
                        dag,
                        &initial,
                        &self.cfg,
                        pipes,
                        ready,
                        None,
                        &mut wait_ns,
                        journal.as_deref_mut(),
                        policy.pipeline.then_some(&mut overlap as &mut dyn FnMut()),
                    )
                };
                match outcome {
                    Ok(stats) => {
                        executed += stats.executed;
                        if let Some(j) = journal.as_deref_mut() {
                            j.clear();
                        }
                        on_commit(members.len());
                        let done_at = t0.elapsed();
                        let dur = u0.elapsed().as_secs_f64();
                        for &idx in &members {
                            let sojourn = done_at.saturating_sub(updates[idx].after);
                            update_seconds.push(dur);
                            latency_seconds.push(sojourn.as_secs_f64());
                            let sojourn_ns = sojourn.as_nanos() as u64;
                            latency_hist.record(sojourn_ns);
                            slo_samples.inc();
                            if slo.record(sojourn_ns) {
                                slo_over.inc();
                            }
                        }
                        if batches.is_multiple_of(SLO_PUBLISH_EVERY) {
                            publish_slo(slo, registry);
                        }
                        adm.recycle(members, initial);
                    }
                    Err(error) => {
                        failed_initial = initial;
                        failed_updates = members.len();
                        return Err(error);
                    }
                }
            }
            Ok(())
        });
        let wall = t0.elapsed();
        record_occupancy(wall.as_nanos() as u64, wait_ns);
        if batches > 0 {
            publish_slo(slo, registry);
        }
        let report = StreamReport {
            updates: latency_seconds.len(),
            executed,
            wall_seconds: wall.as_secs_f64(),
            update_seconds,
            latency_seconds,
            batches,
            coalesced,
            coord_busy_fraction: busy_fraction(wall.as_nanos() as u64, wait_ns),
        };
        match result {
            Ok(()) => Ok(report),
            // Boxed: the error path is cold and the payload (full report +
            // merged initial set) would otherwise dominate the Ok size.
            Err(error) => {
                black_box_dump(&self.cfg, &error, scheduler.name());
                Err(Box::new(StreamError {
                    error,
                    completed: report,
                    failed_initial,
                    failed_updates,
                }))
            }
        }
    }

    /// Spawn the worker pool, run `body` on the coordinator side, then
    /// shut the pool down: one explicit [`WorkMsg::Shutdown`] per worker
    /// (non-blocking, so a wedged pipeline cannot block shutdown), the
    /// work sender dropped as the catch-all release, and a bounded join —
    /// workers that outstay [`ExecConfig::join_grace`] (hung task bodies)
    /// are leaked and counted rather than awaited forever. If `body`
    /// itself panics, the unwinding drop of the channels releases every
    /// parked worker the same way.
    fn with_pool<R>(
        &self,
        task: &TryTaskFn,
        body: impl FnOnce(&Pipes, &mut Vec<NodeId>) -> Result<R, ExecError>,
    ) -> Result<R, ExecError> {
        let (work_tx, work_rx) = channel::bounded::<WorkMsg>(self.cfg.queue_cap);
        let (done_tx, done_rx) = channel::unbounded::<DoneMsg>();
        let (batch_back_tx, batch_back_rx) = channel::unbounded::<CompletionBatch>();
        let (chunk_back_tx, chunk_back_rx) = channel::unbounded::<Vec<NodeId>>();

        let mut handles = Vec::with_capacity(self.cfg.workers);
        for i in 0..self.cfg.workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let batch_back_rx = batch_back_rx.clone();
            let chunk_back_tx = chunk_back_tx.clone();
            let task = task.clone();
            let retry = self.cfg.retry.clone();
            let record_tasks = self.cfg.record_tasks;
            let shard = self.cfg.shard;
            let handle = std::thread::Builder::new()
                .name(format!("incr-worker-{i}"))
                .spawn(move || {
                    worker_loop(
                        i,
                        work_rx,
                        done_tx,
                        batch_back_rx,
                        chunk_back_tx,
                        task,
                        retry,
                        record_tasks,
                        shard,
                    )
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        drop(done_tx);
        drop(batch_back_rx);
        drop(chunk_back_tx);

        // Unconditional: names both the trace track and the flight lane,
        // and the flight recorder is always on.
        trace::set_thread_name("executor-coordinator");
        flight::set_shard(shard_tag(self.cfg.shard));
        let pipes = Pipes {
            work_tx,
            work_steal: work_rx,
            done_rx,
            batch_back_tx,
            chunk_back_rx,
        };
        let mut ready = Vec::new();
        let result = body(&pipes, &mut ready);
        // Orderly shutdown: one message per worker. `try_send` — if the
        // queue is full the pool is wedged and the dropped sender below
        // doubles as the release for any worker that drains that far.
        for _ in 0..self.cfg.workers {
            let _ = pipes.work_tx.try_send(WorkMsg::Shutdown);
        }
        drop(pipes);

        let grace_until = Instant::now() + self.cfg.join_grace;
        for handle in handles {
            loop {
                if handle.is_finished() {
                    let _ = handle.join();
                    break;
                }
                if Instant::now() >= grace_until {
                    // Wedged in a task body: leak the thread, keep going.
                    incr_obs::registry().counter("exec.workers_leaked").inc();
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        result
    }

    /// The pre-batching dispatch loop: one node per message, unbounded
    /// channels, a fresh `Vec` allocated per completion, one
    /// `pop_ready`/`on_completed` virtual call per task. Kept bit-for-bit
    /// equivalent in behavior so `exec_throughput` measures the real
    /// before/after of the batched pipeline. Shares the panic-isolation /
    /// retry / watchdog / cancellation machinery, but not journaling
    /// (resume forces the batched path).
    fn run_per_task(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TryTaskFn,
        journal: Option<&mut UpdateJournal>,
    ) -> Result<ExecReport, ExecError> {
        assert!(
            journal.is_none(),
            "journaled runs require the batched pipeline (per_task = false)"
        );
        let t0 = Instant::now();
        let deadline = self.cfg.deadline.map(|d| t0 + d);
        let (work_tx, work_rx) = channel::unbounded::<NodeId>();
        let (done_tx, done_rx) =
            channel::unbounded::<(NodeId, Result<Vec<NodeId>, TaskError>)>();

        scheduler.start(initial);
        let mut executed = 0usize;
        let mut completion_order = Vec::new();
        let mut wait_ns = 0u64;

        let mut handles = Vec::with_capacity(self.cfg.workers);
        for i in 0..self.cfg.workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            let task = task.clone();
            let retry = self.cfg.retry.clone();
            let shard = self.cfg.shard;
            let handle = std::thread::Builder::new()
                .name(format!("incr-worker-{i}"))
                .spawn(move || {
                    trace::set_thread_name(&format!("worker-{i}"));
                    flight::set_shard(shard_tag(shard));
                    loop {
                        let idle = trace::span("exec", "worker.idle");
                        let Ok(node) = work_rx.recv() else { break };
                        drop(idle);
                        let mut fired = Vec::new();
                        let result = match run_one(&task, node, &mut fired, &retry) {
                            Ok(()) => Ok(fired),
                            Err(e) => Err(e),
                        };
                        if done_tx.send((node, result)).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn worker thread");
            handles.push(handle);
        }
        drop(work_rx);
        drop(done_tx);

        trace::set_thread_name("executor-coordinator");
        flight::set_shard(shard_tag(self.cfg.shard));
        let mut in_flight = 0usize;
        let result = 'drive: loop {
            if let Some(tok) = &self.cfg.cancel {
                if tok.is_cancelled() {
                    break Err(ExecError::Cancelled { executed });
                }
            }
            while let Some(t) = scheduler.pop_ready() {
                if work_tx.send(t).is_err() {
                    break; // pool gone; surfaced below as a stall
                }
                in_flight += 1;
            }
            if in_flight == 0 {
                if scheduler.is_quiescent() {
                    break Ok(());
                }
                break Err(ExecError::Stall {
                    scheduler: scheduler.name().to_string(),
                });
            }
            let wait = trace::span("exec", "coordinator.wait_completion");
            let w0 = Instant::now();
            let received = match deadline {
                None => pipes_recv_per_task(&done_rx),
                Some(dl) => {
                    let budget = dl.saturating_duration_since(Instant::now());
                    match done_rx.recv_timeout(budget) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => None,
                    }
                }
            };
            wait_ns += w0.elapsed().as_nanos() as u64;
            drop(wait);
            let Some((node, outcome)) = received else {
                break Err(ExecError::Timeout {
                    snapshot: Box::new(ExecSnapshot {
                        scheduler: scheduler.name().to_string(),
                        in_flight: Vec::new(),
                        queued_chunks: 0,
                        executed,
                        elapsed_ms: t0.elapsed().as_millis() as u64,
                    }),
                });
            };
            in_flight -= 1;
            let fired = match outcome {
                Ok(fired) => fired,
                Err(task_err) => break Err(task_err.into_exec_error(node)),
            };
            for &c in &fired {
                if !dag.has_edge(node, c) {
                    break 'drive Err(ExecError::NonEdge { from: node, to: c });
                }
            }
            executed += 1;
            completion_order.push(node);
            scheduler.on_completed(node, &fired);
        };
        // Disconnect releases parked workers; bounded join mirrors the
        // batched pipeline's shutdown.
        drop(work_tx);
        let grace_until = Instant::now() + self.cfg.join_grace;
        for handle in handles {
            loop {
                if handle.is_finished() {
                    let _ = handle.join();
                    break;
                }
                if Instant::now() >= grace_until {
                    incr_obs::registry().counter("exec.workers_leaked").inc();
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        if let Err(error) = result {
            black_box_dump(&self.cfg, &error, scheduler.name());
            return Err(error);
        }
        Ok(finish_report(
            DriveStats {
                executed,
                replayed: 0,
            },
            completion_order,
            t0,
            wait_ns,
        ))
    }
}

fn pipes_recv_per_task(
    done_rx: &channel::Receiver<(NodeId, Result<Vec<NodeId>, TaskError>)>,
) -> Option<(NodeId, Result<Vec<NodeId>, TaskError>)> {
    done_rx.recv().ok()
}

/// Run one task to completion, retrying `Retryable` attempts per the
/// policy with exponential backoff, isolating panics. `fired` is
/// truncated back to its pre-attempt length on every failure, so only a
/// successful attempt's children survive.
fn run_one(
    task: &TryTaskFn,
    node: NodeId,
    fired: &mut Vec<NodeId>,
    retry: &RetryPolicy,
) -> Result<(), TaskError> {
    let mark = fired.len();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| task(node, fired))) {
            Ok(TaskOutcome::Done) => return Ok(()),
            Ok(TaskOutcome::Retryable) => {
                fired.truncate(mark);
                if attempts >= retry.max_attempts {
                    incr_obs::registry().counter("exec.task_failures").inc();
                    flight::instant(FlightCode::TaskFail, node.index() as u64);
                    return Err(TaskError::Exhausted { attempts });
                }
                incr_obs::registry().counter("exec.retries").inc();
                flight::instant(FlightCode::TaskRetry, node.index() as u64);
                let delay = retry.delay(attempts - 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            Err(payload) => {
                fired.truncate(mark);
                incr_obs::registry().counter("exec.task_failures").inc();
                flight::instant(FlightCode::TaskFail, node.index() as u64);
                return Err(TaskError::Panicked(panic_message(payload)));
            }
        }
    }
}

/// Best-effort text of a panic payload (`&str` / `String`, else opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Worker side: park on `recv`, execute chunks into a recycled completion
/// batch (panic-isolated, retried), flush the batch whole. On a task
/// failure, the completions committed so far travel back *with* the
/// failure so the coordinator can account for every execution.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    i: usize,
    work_rx: channel::Receiver<WorkMsg>,
    done_tx: channel::Sender<DoneMsg>,
    batch_back_rx: channel::Receiver<CompletionBatch>,
    chunk_back_tx: channel::Sender<Vec<NodeId>>,
    task: TryTaskFn,
    retry: RetryPolicy,
    record_tasks: bool,
    shard: Option<u64>,
) {
    trace::set_thread_name(&format!("worker-{i}"));
    flight::set_shard(shard_tag(shard));
    // Cached handle: worker occupancy is always-on (one relaxed add per
    // chunk), feeding `dlsched top`'s occupancy column.
    let busy_ns = incr_obs::registry().counter("exec.worker_busy_ns");
    loop {
        let idle = trace::span("exec", "worker.idle");
        let msg = work_rx.recv();
        drop(idle);
        let mut chunk = match msg {
            Ok(WorkMsg::Chunk(chunk)) => chunk,
            Ok(WorkMsg::Shutdown) | Err(_) => break,
        };
        let mut batch = batch_back_rx.try_recv().unwrap_or_default();
        let span = trace::enabled().then(|| {
            trace::span_with(
                "exec",
                format!("chunk x{}", chunk.len()),
                vec![("tasks", chunk.len().into())],
            )
        });
        let fspan = flight::span_arg(FlightCode::ChunkRun, chunk.len() as u64);
        let c0 = Instant::now();
        let mut failure: Option<(NodeId, usize, TaskError)> = None;
        for (pos, &node) in chunk.iter().enumerate() {
            let tspan = (record_tasks && trace::enabled()).then(|| {
                let mut args = vec![("node", node.index().into())];
                if let Some(s) = shard {
                    args.push(("shard", s.into()));
                }
                trace::span_with("exec", "task", args)
            });
            let outcome = run_one(&task, node, batch.fired_buf(), &retry);
            drop(tspan);
            match outcome {
                Ok(()) => batch.commit(node),
                Err(err) => {
                    failure = Some((node, chunk.len() - pos - 1, err));
                    break;
                }
            }
        }
        busy_ns.add(c0.elapsed().as_nanos() as u64);
        drop(fspan);
        drop(span);
        chunk.clear();
        let _ = chunk_back_tx.send(chunk);
        let msg = match failure {
            None => DoneMsg::Batch(batch),
            Some((node, abandoned, error)) => DoneMsg::Failed {
                batch,
                node,
                abandoned,
                error,
            },
        };
        if done_tx.send(msg).is_err() {
            break;
        }
    }
}

/// Stream admission state: which updates have arrived, which are staged
/// for the next batch, and their merged activation set. `absorb` is
/// incremental and non-blocking, so the pipelined stream can run it from
/// the tail-drain overlap hook; `dwell` (deliberate waiting, bounded by
/// the policy's latency budget) only ever runs between batches.
struct Admission<'a> {
    updates: &'a [StreamUpdate],
    t0: Instant,
    policy: &'a StreamPolicy,
    /// Next update index not yet staged (FIFO admission cursor).
    next: usize,
    /// Indices staged for the next batch.
    staged: Vec<usize>,
    /// Stamp-deduped union of the staged updates' initial sets.
    staged_initial: Vec<NodeId>,
    coalescer: ActivationCoalescer,
    /// Scratch recycled through `take_staged`/`recycle` so steady-state
    /// admission allocates nothing.
    spare: Option<(Vec<usize>, Vec<NodeId>)>,
    depth_gauge: std::sync::Arc<incr_obs::Gauge>,
}

impl<'a> Admission<'a> {
    fn new(
        updates: &'a [StreamUpdate],
        t0: Instant,
        policy: &'a StreamPolicy,
        nodes: usize,
        depth_gauge: std::sync::Arc<incr_obs::Gauge>,
    ) -> Admission<'a> {
        Admission {
            updates,
            t0,
            policy,
            next: 0,
            staged: Vec::new(),
            staged_initial: Vec::new(),
            coalescer: ActivationCoalescer::new(nodes),
            spare: None,
            depth_gauge,
        }
    }

    /// Stage every already-arrived update up to `max_coalesce`,
    /// non-blocking. Safe to call while the previous batch drains.
    fn absorb(&mut self) {
        let elapsed = self.t0.elapsed();
        while self.staged.len() < self.policy.max_coalesce && self.next < self.updates.len() {
            let u = &self.updates[self.next];
            if u.after > elapsed {
                break; // not arrived yet; never wait here
            }
            if self.staged.is_empty() {
                self.coalescer.begin();
                self.staged_initial.clear();
            }
            self.coalescer.add(&u.initial, &mut self.staged_initial);
            self.staged.push(self.next);
            self.next += 1;
        }
        // Arrived-but-unadmitted backlog (pressure signal).
        let mut arrived = self.next;
        while arrived < self.updates.len() && self.updates[arrived].after <= elapsed {
            arrived += 1;
        }
        self.depth_gauge
            .set((arrived - self.next + self.staged.len()) as i64);
    }

    /// With an under-filled batch and a non-zero latency budget, wait for
    /// imminent arrivals — but never longer than the budget past the
    /// oldest staged member's arrival.
    fn dwell(&mut self) {
        if self.policy.latency_budget.is_zero() {
            return;
        }
        while self.staged.len() < self.policy.max_coalesce && self.next < self.updates.len() {
            let oldest = self.updates[self.staged[0]].after;
            let horizon = oldest.saturating_add(self.policy.latency_budget);
            let arrival = self.updates[self.next].after;
            if arrival > horizon {
                break; // would overdraw the oldest member's budget
            }
            std::thread::sleep(arrival.saturating_sub(self.t0.elapsed()));
            self.absorb();
        }
    }

    /// Arrival offset of the next unstaged update, or `None` if the
    /// stream is exhausted.
    fn next_arrival(&self) -> Option<Duration> {
        self.updates.get(self.next).map(|u| u.after)
    }

    /// Move the staged batch out (member indices + merged initial set),
    /// leaving recycled scratch behind.
    fn take_staged(&mut self) -> (Vec<usize>, Vec<NodeId>) {
        let (mut members, mut initial) = self.spare.take().unwrap_or_default();
        members.clear();
        initial.clear();
        std::mem::swap(&mut members, &mut self.staged);
        std::mem::swap(&mut initial, &mut self.staged_initial);
        (members, initial)
    }

    /// Return `take_staged` buffers for reuse.
    fn recycle(&mut self, members: Vec<usize>, initial: Vec<NodeId>) {
        self.spare = Some((members, initial));
    }
}

/// What one update actually did.
#[derive(Clone, Copy, Debug, Default)]
struct DriveStats {
    executed: usize,
    replayed: usize,
}

/// Mutable coordinator state shared between the drive loop and the
/// error-path drain.
struct DriveState<'a> {
    in_flight: usize,
    /// Per-node in-flight flags, allocated only when the watchdog is
    /// armed (snapshot quality): an array write per dispatch/completion
    /// instead of hash-set churn on the hot path.
    in_flight_flags: Option<Vec<bool>>,
    stats: DriveStats,
    order: Option<&'a mut Vec<NodeId>>,
    journal: Option<&'a mut UpdateJournal>,
}

impl DriveState<'_> {
    /// Commit one worker batch: validate fired edges (unless draining),
    /// record order/journal, deliver completions to the scheduler.
    fn commit_batch(
        &mut self,
        scheduler: &mut dyn Scheduler,
        dag: &Dag,
        batch: &CompletionBatch,
        validate: bool,
    ) -> Result<(), ExecError> {
        let _fspan = flight::span_arg(FlightCode::Commit, batch.len() as u64);
        let _tspan = trace::enabled().then(|| {
            trace::span_with(
                "exec",
                "exec.commit",
                vec![("completions", batch.len().into())],
            )
        });
        // Flight accounting happens even for an invalid batch — the
        // error-path drain must still observe in_flight reach zero.
        self.in_flight -= batch.len();
        if let Some(flags) = self.in_flight_flags.as_mut() {
            for (node, _) in batch.iter() {
                flags[node.index()] = false;
            }
        }
        if validate {
            for (node, fired) in batch.iter() {
                for &c in fired {
                    if !dag.has_edge(node, c) {
                        return Err(ExecError::NonEdge { from: node, to: c });
                    }
                }
            }
        }
        self.stats.executed += batch.len();
        if let Some(order) = self.order.as_deref_mut() {
            order.extend(batch.iter().map(|(node, _)| node));
        }
        if let Some(j) = self.journal.as_deref_mut() {
            for (node, fired) in batch.iter() {
                j.record(node, fired);
            }
        }
        scheduler.complete_batch(batch);
        Ok(())
    }

    /// Account for tasks that left flight without executing (stolen
    /// chunks, the failing task itself, abandoned chunk tails).
    fn unexecuted(&mut self, nodes: impl IntoIterator<Item = NodeId>) {
        for node in nodes {
            self.in_flight -= 1;
            if let Some(flags) = self.in_flight_flags.as_mut() {
                flags[node.index()] = false;
            }
        }
    }

    fn snapshot(
        &self,
        scheduler: &dyn Scheduler,
        pipes: &Pipes,
        t0: Instant,
    ) -> Box<ExecSnapshot> {
        // O(V) scan, but only ever run on the (rare) timeout path.
        let in_flight: Vec<NodeId> = self
            .in_flight_flags
            .as_ref()
            .map(|flags| {
                flags
                    .iter()
                    .enumerate()
                    .filter(|&(_, &f)| f)
                    .map(|(i, _)| NodeId(i as u32))
                    .collect()
            })
            .unwrap_or_default();
        Box::new(ExecSnapshot {
            scheduler: scheduler.name().to_string(),
            in_flight,
            queued_chunks: pipes.work_steal.len(),
            executed: self.stats.executed,
            elapsed_ms: t0.elapsed().as_millis() as u64,
        })
    }
}

/// One update to quiescence on the batched pipeline. Returns tasks
/// executed/replayed; accumulates coordinator blocked-time into
/// `wait_ns`.
///
/// `overlap`, when given, is invoked every time the coordinator is about
/// to block waiting for worker completions — i.e. whenever this update
/// has dispatched everything poppable and is draining a wavefront. The
/// pipelined stream uses it to do the *next* update's admission work
/// under the current update's tail drain. The hook must be non-blocking
/// and must not touch the scheduler: completions of this update may
/// still land after it runs, so the next `start` stays strictly after
/// this drive returns (the run-once boundary is per update).
#[allow(clippy::too_many_arguments)]
fn drive_update(
    scheduler: &mut dyn Scheduler,
    dag: &Dag,
    initial: &[NodeId],
    cfg: &ExecConfig,
    pipes: &Pipes,
    ready: &mut Vec<NodeId>,
    order: Option<&mut Vec<NodeId>>,
    wait_ns: &mut u64,
    journal: Option<&mut UpdateJournal>,
    mut overlap: Option<&mut dyn FnMut()>,
) -> Result<DriveStats, ExecError> {
    // Update boundary: per-update gauge peaks start a fresh window, so a
    // snapshot taken after this update reports *its* peaks, not the
    // highest value any update ever reached.
    let registry = incr_obs::registry();
    registry.reset_gauge_peaks();
    let queue_gauge = registry.gauge("exec.queue_depth");
    let inflight_gauge = registry.gauge("exec.in_flight");
    let mut fspan = flight::span_arg(FlightCode::UpdateRun, 0);
    let mut tspan = trace::enabled().then(|| {
        let mut args = vec![("initial", initial.len().into())];
        if let Some(s) = cfg.shard {
            args.push(("shard", s.into()));
        }
        trace::span_with("exec", "exec.update", args)
    });
    scheduler.start(initial);
    let t0 = Instant::now();
    let deadline = cfg.deadline.map(|d| t0 + d);
    let resuming = journal.as_deref().map(|j| !j.is_empty()).unwrap_or(false);
    let mut st = DriveState {
        in_flight: 0,
        in_flight_flags: deadline.is_some().then(|| vec![false; dag.node_count()]),
        stats: DriveStats::default(),
        order,
        journal,
    };
    let mut replay_batch = CompletionBatch::new();
    loop {
        if let Some(tok) = &cfg.cancel {
            if tok.is_cancelled() {
                let executed = st.stats.executed;
                drain_on_error(scheduler, dag, cfg, pipes, &mut st);
                return Err(ExecError::Cancelled { executed });
            }
        }
        // Dispatch every currently-safe task, one wavefront per pop_batch.
        loop {
            ready.clear();
            if scheduler.pop_batch(ready, cfg.batch_max) == 0 {
                break;
            }
            flight::instant(FlightCode::PopBatch, ready.len() as u64);
            if resuming {
                // Completions committed by the failed attempt replay from
                // the journal instead of re-executing.
                let journal = st.journal.as_deref().expect("resuming implies journal");
                ready.retain(|&v| match journal.fired_of(v) {
                    Some(fired) => {
                        replay_batch.push(v, fired);
                        false
                    }
                    None => true,
                });
            }
            st.in_flight += ready.len();
            if let Some(flags) = st.in_flight_flags.as_mut() {
                for &v in ready.iter() {
                    flags[v.index()] = true;
                }
            }
            if !send_chunks(ready, cfg, pipes, deadline) {
                let snapshot = st.snapshot(scheduler, pipes, t0);
                return Err(ExecError::Timeout { snapshot });
            }
            if !replay_batch.is_empty() {
                st.stats.replayed += replay_batch.len();
                flight::instant(FlightCode::JournalReplay, replay_batch.len() as u64);
                scheduler.complete_batch(&replay_batch);
                replay_batch.clear();
            }
        }
        // Always-on wavefront depth signals: registry gauges (windowed
        // peaks reset above) plus flight-recorder counter samples.
        inflight_gauge.set(st.in_flight as i64);
        queue_gauge.set(pipes.work_steal.len() as i64);
        if flight::enabled() {
            flight::counter(FlightCode::InFlight, st.in_flight as f64);
            flight::counter(FlightCode::QueueDepth, pipes.work_steal.len() as f64);
        }
        if trace::enabled() {
            trace::counter("exec", "exec.in_flight", st.in_flight as f64);
        }
        if st.in_flight == 0 {
            if scheduler.is_quiescent() {
                fspan.set_arg(st.stats.executed as u64);
                if let Some(span) = tspan.take() {
                    span.end_args(vec![("executed", st.stats.executed.into())]);
                }
                return Ok(st.stats);
            }
            return Err(ExecError::Stall {
                scheduler: scheduler.name().to_string(),
            });
        }
        // Tail-drain overlap point: everything poppable is dispatched and
        // the coordinator is about to block, so admission work for the
        // next stream update can run here for free.
        if let Some(hook) = overlap.as_mut() {
            hook();
        }
        // Block for one completion batch, then drain whatever else landed.
        let wait = trace::span("exec", "coordinator.wait_completion");
        let fwait = flight::span_arg(FlightCode::CoordWait, st.in_flight as u64);
        let w0 = Instant::now();
        let received = match deadline {
            None => pipes.done_rx.recv().ok(),
            Some(dl) => {
                let budget = dl.saturating_duration_since(Instant::now());
                pipes.done_rx.recv_timeout(budget).ok()
            }
        };
        *wait_ns += w0.elapsed().as_nanos() as u64;
        drop(fwait);
        drop(wait);
        let Some(mut msg) = received else {
            let snapshot = st.snapshot(scheduler, pipes, t0);
            return Err(ExecError::Timeout { snapshot });
        };
        loop {
            let batch = match msg {
                DoneMsg::Batch(batch) => batch,
                DoneMsg::Failed {
                    batch,
                    node,
                    abandoned,
                    error,
                } => {
                    // Commit what really ran, account for what did not,
                    // then drain the rest of the pipeline and surface the
                    // failure.
                    let commit = st.commit_batch(scheduler, dag, &batch, true);
                    st.unexecuted([node]);
                    st.in_flight -= abandoned;
                    drain_on_error(scheduler, dag, cfg, pipes, &mut st);
                    commit?;
                    return Err(error.into_exec_error(node));
                }
            };
            if let Err(e) = st.commit_batch(scheduler, dag, &batch, true) {
                drain_on_error(scheduler, dag, cfg, pipes, &mut st);
                return Err(e);
            }
            let mut empty = batch;
            empty.clear();
            let _ = pipes.batch_back_tx.send(empty);
            match pipes.done_rx.try_recv() {
                Some(next) => msg = next,
                None => break,
            }
        }
    }
}

/// The error path's clean drain: steal unstarted chunks back out of the
/// work queue, then wait (bounded) for every in-flight completion and
/// commit it — to the journal too — so no successful execution is lost
/// and a resumed update re-runs nothing that already ran. First error
/// wins: failures seen while draining are dropped (their completions are
/// still committed).
fn drain_on_error(
    scheduler: &mut dyn Scheduler,
    dag: &Dag,
    cfg: &ExecConfig,
    pipes: &Pipes,
    st: &mut DriveState<'_>,
) {
    let drain_until = Instant::now() + cfg.drain_grace;
    loop {
        // Steal chunks no worker has picked up yet.
        while let Some(msg) = pipes.work_steal.try_recv() {
            if let WorkMsg::Chunk(chunk) = msg {
                st.unexecuted(chunk.iter().copied());
            }
        }
        if st.in_flight == 0 {
            return;
        }
        let budget = drain_until.saturating_duration_since(Instant::now());
        match pipes.done_rx.recv_timeout(budget) {
            Ok(DoneMsg::Batch(batch)) => {
                // Skip edge validation: the update is already failing and
                // these executions are being preserved, not judged.
                let _ = st.commit_batch(scheduler, dag, &batch, false);
            }
            Ok(DoneMsg::Failed {
                batch,
                node,
                abandoned,
                ..
            }) => {
                let _ = st.commit_batch(scheduler, dag, &batch, false);
                st.unexecuted([node]);
                st.in_flight -= abandoned;
            }
            Err(_) => {
                // Stragglers (hung task bodies) get leaked with their
                // workers; give up on their completions.
                incr_obs::registry()
                    .counter("exec.drain_abandoned")
                    .add(st.in_flight as u64);
                return;
            }
        }
    }
}

/// Split `ready` into chunks sized to spread one wavefront across the
/// pool (capped at `chunk_max`) and send them, recycling chunk vectors
/// returned by workers. The bounded send is the backpressure point; with
/// a watchdog armed the send itself is deadline-aware (a pool of wedged
/// workers must not block the coordinator forever). Returns false on
/// deadline expiry.
fn send_chunks(
    ready: &[NodeId],
    cfg: &ExecConfig,
    pipes: &Pipes,
    deadline: Option<Instant>,
) -> bool {
    let target = ready.len().div_ceil(cfg.workers).clamp(1, cfg.chunk_max);
    for piece in ready.chunks(target) {
        let mut chunk = pipes.chunk_back_rx.try_recv().unwrap_or_default();
        chunk.extend_from_slice(piece);
        match deadline {
            None => {
                if pipes.work_tx.send(WorkMsg::Chunk(chunk)).is_err() {
                    return true; // pool gone; surfaced later as stall/timeout
                }
            }
            Some(dl) => {
                // Same condvar-based blocking as the bare path, but bounded
                // by the watchdog deadline: no sleep-polling, so an armed
                // deadline costs nothing while the queue has room.
                let remaining = dl.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return false;
                }
                match pipes.work_tx.send_timeout(WorkMsg::Chunk(chunk), remaining) {
                    Ok(()) => {}
                    Err(channel::SendTimeoutError::Timeout(_)) => return false,
                    Err(channel::SendTimeoutError::Disconnected(_)) => {
                        return true; // pool gone; surfaced later as stall/timeout
                    }
                }
            }
        }
    }
    true
}

/// Dump the flight recorder to a black-box file because `error` is about
/// to surface. Best-effort by design: the dump must never turn a typed
/// executor error into a second failure, so IO problems are only counted
/// (`obs.flight.dump_errors`). The error text — and, for timeouts, the
/// `ExecSnapshot` diagnostics — ride along as the dump's context record,
/// stitching "what the watchdog saw" to "what the threads were doing".
fn black_box_dump(cfg: &ExecConfig, error: &ExecError, scheduler: &str) {
    let Some(dir) = cfg.black_box.as_deref() else {
        return;
    };
    if !flight::enabled() {
        return;
    }
    // Mark the failure on the coordinator's own lane so the dump shows
    // *when* the error surfaced relative to the recorded events.
    flight::instant(FlightCode::ExecError, 0);
    let mut ctx: Vec<(&'static str, Json)> = vec![
        ("error", error.to_string().into()),
        ("kind", error.kind().into()),
        ("scheduler", scheduler.into()),
    ];
    if let Some(shard) = cfg.shard {
        // In a sharded run each shard dumps its own black box; the tag
        // lets a multi-shard failure be reassembled from the rotation.
        ctx.push(("shard", shard.into()));
    }
    if let ExecError::Timeout { snapshot } = error {
        ctx.push(("executed", snapshot.executed.into()));
        ctx.push(("queued_chunks", snapshot.queued_chunks.into()));
        ctx.push(("elapsed_ms", snapshot.elapsed_ms.into()));
        ctx.push((
            "in_flight",
            Json::Arr(
                snapshot
                    .in_flight
                    .iter()
                    .take(32)
                    .map(|v| Json::Num(v.index() as f64))
                    .collect(),
            ),
        ));
        ctx.push(("in_flight_total", snapshot.in_flight.len().into()));
    }
    let r = incr_obs::registry();
    match flight::dump_to_dir(dir, error.kind(), &ctx) {
        Ok(_) => r.counter("obs.flight.dumps").inc(),
        Err(_) => r.counter("obs.flight.dump_errors").inc(),
    }
}

fn busy_fraction(total_ns: u64, wait_ns: u64) -> f64 {
    if total_ns == 0 {
        return 1.0;
    }
    1.0 - (wait_ns.min(total_ns) as f64 / total_ns as f64)
}

/// How many stream batches between periodic `stream.slo.*` publishes.
const SLO_PUBLISH_EVERY: usize = 64;

/// Publish the SLO tracker's rolling window into the registry and the
/// flight recorder (cold path: snapshot sorts the window).
fn publish_slo(slo: &incr_obs::slo::SloTracker, registry: &incr_obs::Registry) {
    let snap = slo.snapshot();
    snap.publish(registry);
    flight::counter(
        FlightCode::StreamSojournP99,
        (snap.p99_ns / 1_000) as f64,
    );
}

/// Always-on occupancy counters (relaxed atomic adds).
fn record_occupancy(total_ns: u64, wait_ns: u64) {
    let r = incr_obs::registry();
    r.counter("exec.coord_wait_ns").add(wait_ns.min(total_ns));
    r.counter("exec.coord_busy_ns")
        .add(total_ns - wait_ns.min(total_ns));
}

fn finish_report(
    stats: DriveStats,
    completion_order: Vec<NodeId>,
    t0: Instant,
    wait_ns: u64,
) -> ExecReport {
    let wall = t0.elapsed();
    record_occupancy(wall.as_nanos() as u64, wait_ns);
    ExecReport {
        executed: stats.executed,
        replayed: stats.replayed,
        wall_seconds: wall.as_secs_f64(),
        completion_order,
        coord_busy_fraction: busy_fraction(wall.as_nanos() as u64, wait_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;
    use incr_sched::{CostMeter, Hybrid, LevelBased, LogicBlox};
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    /// Fire every out-edge: full recomputation of the diamond.
    fn fire_all(dag: &Arc<Dag>) -> TaskFn {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| fired.extend_from_slice(dag.children(v)))
    }

    #[test]
    fn executes_diamond_fully() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
        assert_eq!(report.replayed, 0);
        assert_eq!(report.completion_order.len(), 4);
        assert_eq!(report.completion_order[0], NodeId(0));
        assert_eq!(*report.completion_order.last().unwrap(), NodeId(3));
        assert!((0.0..=1.0).contains(&report.coord_busy_fraction));
    }

    #[test]
    fn partial_firing_limits_execution() {
        let dag = diamond();
        let mut s = LogicBlox::new(dag.clone());
        // Node 0 fires only node 1; nodes 1..3 fire nothing.
        let f: TaskFn = Arc::new(|v, fired: &mut Vec<NodeId>| {
            if v == NodeId(0) {
                fired.push(NodeId(1));
            }
        });
        let report = Executor::new(2).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 2);
    }

    #[test]
    fn tasks_run_in_parallel_on_real_threads() {
        // Wide fan: one source, 16 children; verify several children
        // overlap in time across worker threads.
        let mut b = DagBuilder::new(17);
        for i in 1..17u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBased::new(dag.clone());
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let f: TaskFn = {
            let dag = dag.clone();
            let peak = peak.clone();
            let live = live.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                fired.extend_from_slice(dag.children(v));
            })
        };
        // Chunk size 1 so the fan spreads across all 8 workers.
        let mut cfg = ExecConfig::new(8);
        cfg.chunk_max = 1;
        let report = Executor::with_config(cfg).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 17);
        assert!(
            peak.load(Ordering::SeqCst) >= 4,
            "expected real overlap, saw peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn hybrid_runs_on_real_threads() {
        let dag = diamond();
        let mut s = Hybrid::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
    }

    #[test]
    fn firing_a_non_edge_returns_typed_error() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let f: TaskFn = Arc::new(|_, fired: &mut Vec<NodeId>| {
            fired.push(NodeId(3)); // node 0 has no edge to 3
        });
        let err = Executor::new(2)
            .run(&mut s, &dag, &[NodeId(0)], f)
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::NonEdge {
                from: NodeId(0),
                to: NodeId(3)
            }
        );
        assert!(err.to_string().contains("fired non-edge"));
    }

    #[test]
    #[should_panic(expected = "fired non-edge")]
    fn firing_a_non_edge_panics_via_shim() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let f: TaskFn = Arc::new(|_, fired: &mut Vec<NodeId>| {
            fired.push(NodeId(3));
        });
        let _ = Executor::new(2).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
    }

    /// A scheduler that admits active work but never offers any task:
    /// the executor must surface a stall instead of hanging or panicking.
    struct Hoarder {
        active: usize,
    }

    impl Scheduler for Hoarder {
        fn name(&self) -> &str {
            "Hoarder"
        }
        fn start(&mut self, initial_active: &[NodeId]) {
            self.active = initial_active.len();
        }
        fn on_completed(&mut self, _v: NodeId, _fired: &[NodeId]) {}
        fn pop_ready(&mut self) -> Option<NodeId> {
            None
        }
        fn is_quiescent(&self) -> bool {
            self.active == 0
        }
        fn cost(&self) -> CostMeter {
            CostMeter::default()
        }
        fn space_bytes(&self) -> usize {
            0
        }
        fn precompute_bytes(&self) -> usize {
            0
        }
        fn on_external_dispatch(&mut self, _v: NodeId) {}
    }

    #[test]
    fn scheduler_stall_returns_typed_error() {
        let dag = diamond();
        let mut s = Hoarder { active: 0 };
        let err = Executor::new(2)
            .run(&mut s, &dag, &[NodeId(0)], fire_all(&dag))
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::Stall {
                scheduler: "Hoarder".to_string()
            }
        );
        assert!(err.to_string().contains("stalled with active work remaining"));
    }

    #[test]
    fn empty_update_returns_immediately() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[], fire_all(&dag));
        assert_eq!(report.executed, 0);
        assert!(report.completion_order.is_empty());
    }

    #[test]
    fn per_task_mode_matches_batched() {
        let dag = diamond();
        for per_task in [false, true] {
            let mut cfg = ExecConfig::new(3);
            cfg.per_task = per_task;
            let mut s = LevelBased::new(dag.clone());
            let report =
                Executor::with_config(cfg).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
            assert_eq!(report.executed, 4, "per_task={per_task}");
            assert_eq!(report.completion_order[0], NodeId(0));
        }
    }

    #[test]
    fn stream_reuses_pool_across_updates() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let updates: Vec<Vec<NodeId>> =
            vec![vec![NodeId(0)], vec![], vec![NodeId(1)], vec![NodeId(0)]];
        let report = Executor::new(4)
            .run_stream(&mut s, &dag, &updates, fire_all(&dag))
            .unwrap();
        assert_eq!(report.updates, 4);
        // 4 (full) + 0 (empty) + 2 (from node 1) + 4 (full again).
        assert_eq!(report.executed, 10);
        assert_eq!(report.update_seconds.len(), 4);
        assert_eq!(report.latency_seconds.len(), 4);
        assert_eq!(report.batches, 4, "serial stream never merges");
        assert_eq!(report.coalesced, 0);
    }

    /// Ten alternating 1-node updates under 4-way coalescing: three
    /// batches, each driving the union closure once.
    #[test]
    fn coalesced_stream_merges_backlogged_updates() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let updates: Vec<StreamUpdate> = (0..10)
            .map(|i| StreamUpdate::now(vec![NodeId(i % 2)]))
            .collect();
        let report = Executor::new(2)
            .run_stream_with(
                &mut s,
                &dag,
                &updates,
                infallible(fire_all(&dag)),
                &StreamPolicy::coalesced(4),
                None,
            )
            .unwrap();
        assert_eq!(report.updates, 10);
        assert_eq!(report.batches, 3, "10 updates / max_coalesce 4");
        assert_eq!(report.coalesced, 10, "every update shared its batch");
        // Each batch drives closure({0} ∪ {1}) = all four nodes once.
        assert_eq!(report.executed, 12);
        assert_eq!(report.latency_seconds.len(), 10);
        assert_eq!(report.update_seconds.len(), 10);
    }

    /// The publish hook fires once per committed batch, after the
    /// cascade quiesced, with the batch's coalesced-update count — the
    /// contract an epoch-versioned store relies on to bump its published
    /// epoch at batch boundaries only.
    #[test]
    fn commit_hook_fires_once_per_committed_batch() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let updates: Vec<StreamUpdate> = (0..10)
            .map(|i| StreamUpdate::now(vec![NodeId(i % 2)]))
            .collect();
        let mut commits: Vec<usize> = Vec::new();
        let report = Executor::new(2)
            .run_stream_committed(
                &mut s,
                &dag,
                &updates,
                infallible(fire_all(&dag)),
                &StreamPolicy::coalesced(4),
                None,
                &mut |members| commits.push(members),
            )
            .unwrap();
        assert_eq!(commits.len(), report.batches, "one publish per batch");
        assert_eq!(commits.iter().sum::<usize>(), report.updates);
    }

    /// Pipelining alone (no coalescing) must not change what executes.
    #[test]
    fn pipelined_stream_matches_serial_executed_counts() {
        let dag = diamond();
        let updates: Vec<Vec<NodeId>> =
            vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(0)], vec![]];
        let mut serial_sched = LevelBased::new(dag.clone());
        let serial = Executor::new(2)
            .run_stream(&mut serial_sched, &dag, &updates, fire_all(&dag))
            .unwrap();
        let stream: Vec<StreamUpdate> = updates
            .iter()
            .map(|u| StreamUpdate::now(u.clone()))
            .collect();
        let mut piped_sched = LevelBased::new(dag.clone());
        let piped = Executor::new(2)
            .run_stream_with(
                &mut piped_sched,
                &dag,
                &stream,
                infallible(fire_all(&dag)),
                &StreamPolicy::pipelined(),
                None,
            )
            .unwrap();
        assert_eq!(piped.updates, serial.updates);
        assert_eq!(piped.executed, serial.executed);
        assert_eq!(piped.batches, updates.len());
        assert_eq!(piped.coalesced, 0);
    }

    /// Arrival times gate admission: an update scheduled in the future is
    /// not driven early, and its sojourn latency excludes pre-arrival
    /// time.
    #[test]
    fn stream_respects_arrival_times() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let updates = vec![
            StreamUpdate::now(vec![NodeId(0)]),
            StreamUpdate::at(vec![NodeId(0)], Duration::from_millis(30)),
        ];
        let t0 = Instant::now();
        let report = Executor::new(2)
            .run_stream_with(
                &mut s,
                &dag,
                &updates,
                infallible(fire_all(&dag)),
                &StreamPolicy::pipelined(),
                None,
            )
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert_eq!(report.updates, 2);
        // The late update's latency clock starts at its arrival, not at
        // stream start: it cannot have waited ~30ms.
        assert!(
            report.latency_seconds[1] < 0.025,
            "late update's sojourn {}s includes pre-arrival time",
            report.latency_seconds[1]
        );
    }

    // ---- fault tolerance ----

    /// Suppress this test module's injected panics from stderr while
    /// leaving real panics visible.
    fn quiet_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.contains("injected"))
                    .or_else(|| {
                        info.payload()
                            .downcast_ref::<String>()
                            .map(|s| s.contains("injected"))
                    })
                    .unwrap_or(false);
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn task_panic_returns_typed_error_for_both_pipelines() {
        quiet_panics();
        let dag = diamond();
        let f: TaskFn = Arc::new(|v, fired: &mut Vec<NodeId>| {
            if v == NodeId(1) {
                panic!("injected failure in node 1");
            }
            if v == NodeId(0) {
                fired.push(NodeId(1));
                fired.push(NodeId(2));
            }
        });
        for per_task in [false, true] {
            let mut cfg = ExecConfig::new(2);
            cfg.per_task = per_task;
            let mut s = LevelBased::new(dag.clone());
            let err = Executor::with_config(cfg)
                .run(&mut s, &dag, &[NodeId(0)], f.clone())
                .unwrap_err();
            match err {
                ExecError::TaskPanicked { node, ref message } => {
                    assert_eq!(node, NodeId(1), "per_task={per_task}");
                    assert!(message.contains("injected"), "per_task={per_task}");
                }
                other => panic!("expected TaskPanicked, got {other:?} (per_task={per_task})"),
            }
            assert!(err.to_string().contains("panicked"));
        }
    }

    #[test]
    fn retryable_task_retries_then_succeeds() {
        let dag = diamond();
        let attempts = Arc::new(AtomicU32::new(0));
        let f: TryTaskFn = {
            let dag = dag.clone();
            let attempts = attempts.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                if v == NodeId(2) && attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                    fired.push(NodeId(3)); // must be discarded by the retry
                    return TaskOutcome::Retryable;
                }
                fired.extend_from_slice(dag.children(v));
                TaskOutcome::Done
            })
        };
        let mut cfg = ExecConfig::new(2);
        cfg.retry = RetryPolicy::retries(3);
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::with_config(cfg)
            .run_fallible(&mut s, &dag, &[NodeId(0)], f, None)
            .unwrap();
        assert_eq!(report.executed, 4);
        assert_eq!(attempts.load(Ordering::SeqCst), 3, "two failures + one success");
    }

    #[test]
    fn exhausted_retries_return_task_failed() {
        let dag = diamond();
        let f: TryTaskFn = Arc::new(|v, fired: &mut Vec<NodeId>| {
            if v == NodeId(0) {
                fired.push(NodeId(1));
                return TaskOutcome::Retryable;
            }
            TaskOutcome::Done
        });
        for per_task in [false, true] {
            let mut cfg = ExecConfig::new(2);
            cfg.per_task = per_task;
            cfg.retry = RetryPolicy {
                max_attempts: 3,
                backoff: Duration::ZERO,
                backoff_cap: Duration::ZERO,
            };
            let mut s = LevelBased::new(dag.clone());
            let err = Executor::with_config(cfg)
                .run_fallible(&mut s, &dag, &[NodeId(0)], f.clone(), None)
                .unwrap_err();
            assert_eq!(
                err,
                ExecError::TaskFailed {
                    node: NodeId(0),
                    attempts: 3
                },
                "per_task={per_task}"
            );
            assert!(err.to_string().contains("failed after 3 attempts"));
        }
    }

    #[test]
    fn watchdog_times_out_on_hung_task_with_snapshot() {
        let dag = diamond();
        let f: TaskFn = Arc::new(|v, _fired: &mut Vec<NodeId>| {
            if v == NodeId(0) {
                std::thread::sleep(Duration::from_secs(2));
            }
        });
        let mut cfg = ExecConfig::new(2);
        cfg.deadline = Some(Duration::from_millis(100));
        cfg.join_grace = Duration::from_millis(50);
        cfg.drain_grace = Duration::from_millis(50);
        let mut s = LevelBased::new(dag.clone());
        let t0 = Instant::now();
        let err = Executor::with_config(cfg)
            .run(&mut s, &dag, &[NodeId(0)], f)
            .unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(2), "must not wait for the hung task");
        match err {
            ExecError::Timeout { snapshot } => {
                assert_eq!(snapshot.in_flight, vec![NodeId(0)]);
                assert_eq!(snapshot.executed, 0);
                assert!(snapshot.elapsed_ms >= 100);
                assert!(err_to_one_line(&ExecError::Timeout { snapshot }));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    fn err_to_one_line(e: &ExecError) -> bool {
        !e.to_string().contains('\n')
    }

    #[test]
    fn cancellation_aborts_between_wavefronts() {
        // Deep chain so there are many wavefronts to abort between.
        let n = 64u32;
        let mut b = DagBuilder::new(n as usize);
        for i in 1..n {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let token = CancelToken::new();
        let f: TaskFn = {
            let dag = dag.clone();
            let token = token.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                if v == NodeId(5) {
                    token.cancel();
                }
                fired.extend_from_slice(dag.children(v));
            })
        };
        let mut cfg = ExecConfig::new(2);
        cfg.cancel = Some(token.clone());
        let mut s = LevelBased::new(dag.clone());
        let err = Executor::with_config(cfg)
            .run(&mut s, &dag, &[NodeId(0)], f.clone())
            .unwrap_err();
        match err {
            ExecError::Cancelled { executed } => {
                assert!(executed >= 6, "cancel fired at node 5, got {executed}");
                assert!(executed < n as usize, "cancel must abort before the end");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The same scheduler restarts cleanly after the abort.
        token.reset();
        let mut s2 = LevelBased::new(dag.clone());
        let fresh = Executor::new(2).run_or_panic(&mut s2, &dag, &[NodeId(0)], fire_all(&dag));
        let resumed = Executor::new(2).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(resumed.executed, fresh.executed);
    }

    #[test]
    fn journal_resume_skips_committed_executions() {
        quiet_panics();
        // 0 -> 1 -> 2 -> 3 chain; panic on node 2 the first time only.
        let mut b = DagBuilder::new(4);
        for i in 1..4u32 {
            b.add_edge(NodeId(i - 1), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let executions = Arc::new(AtomicU32::new(0));
        let armed = Arc::new(AtomicBool::new(true));
        let f: TryTaskFn = {
            let dag = dag.clone();
            let executions = executions.clone();
            let armed = armed.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                if v == NodeId(2) && armed.swap(false, Ordering::SeqCst) {
                    panic!("injected failure in node 2");
                }
                executions.fetch_add(1, Ordering::SeqCst);
                fired.extend_from_slice(dag.children(v));
                TaskOutcome::Done
            })
        };
        let mut journal = UpdateJournal::new();
        let mut s = LevelBased::new(dag.clone());
        let exec = Executor::new(2);
        let err = exec
            .run_fallible(&mut s, &dag, &[NodeId(0)], f.clone(), Some(&mut journal))
            .unwrap_err();
        assert!(matches!(err, ExecError::TaskPanicked { node, .. } if node == NodeId(2)));
        assert_eq!(journal.len(), 2, "nodes 0 and 1 committed");
        assert!(journal.contains(NodeId(0)) && journal.contains(NodeId(1)));

        let report = exec
            .run_fallible(&mut s, &dag, &[NodeId(0)], f, Some(&mut journal))
            .unwrap();
        assert_eq!(report.replayed, 2, "0 and 1 replayed, not re-executed");
        assert_eq!(report.executed, 2, "only 2 and 3 execute on resume");
        assert_eq!(
            executions.load(Ordering::SeqCst),
            4,
            "each node executed successfully exactly once across both attempts"
        );
        assert!(journal.is_empty(), "successful run commits the update");
    }

    #[test]
    fn stream_failure_reports_completed_updates() {
        quiet_panics();
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let calls = Arc::new(AtomicU32::new(0));
        let f: TaskFn = {
            let dag = dag.clone();
            let calls = calls.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                let n = calls.fetch_add(1, Ordering::SeqCst);
                // Update 0 executes 4 tasks; the 5th call (update 1) panics.
                if n == 4 {
                    panic!("injected failure in update 1");
                }
                fired.extend_from_slice(dag.children(v));
            })
        };
        let updates: Vec<Vec<NodeId>> =
            vec![vec![NodeId(0)], vec![NodeId(0)], vec![NodeId(0)]];
        let err = Executor::new(2)
            .run_stream(&mut s, &dag, &updates, f)
            .unwrap_err();
        assert!(matches!(err.error, ExecError::TaskPanicked { .. }));
        assert_eq!(err.completed.updates, 1, "only update 0 completed");
        assert_eq!(err.completed.executed, 4, "update 0's four tasks");
        assert_eq!(err.completed.update_seconds.len(), 1);
        assert!(
            calls.load(Ordering::SeqCst) <= 5 + 3,
            "update 2 must not be attempted (saw {} calls)",
            calls.load(Ordering::SeqCst)
        );
        assert!(err.to_string().contains("update 1 failed"));
        assert_eq!(err.failed_initial, vec![NodeId(0)]);
        assert_eq!(err.failed_updates, 1);
    }

    /// PR 4 semantics per *coalesced* update: a panic mid-batch journals
    /// the batch's committed executions; resuming the failed batch via
    /// `run_fallible` replays them (no re-execution), and the stream
    /// continues from the first update after the batch.
    #[test]
    fn coalesced_stream_failure_journals_and_resumes() {
        quiet_panics();
        let dag = diamond();
        let exec = Executor::new(1); // deterministic commit order
        let poisoned = Arc::new(AtomicBool::new(true));
        let f: TaskFn = {
            let dag = dag.clone();
            let poisoned = poisoned.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                if v == NodeId(2) && poisoned.swap(false, Ordering::SeqCst) {
                    panic!("injected mid-batch failure");
                }
                fired.extend_from_slice(dag.children(v));
            })
        };
        let updates: Vec<StreamUpdate> = (0..8)
            .map(|i| StreamUpdate::now(vec![NodeId(i % 2)]))
            .collect();
        let policy = StreamPolicy::coalesced(4);
        let mut s = LevelBased::new(dag.clone());
        let mut journal = UpdateJournal::new();
        let err = exec
            .run_stream_with(
                &mut s,
                &dag,
                &updates,
                infallible(f.clone()),
                &policy,
                Some(&mut journal),
            )
            .unwrap_err();
        assert!(matches!(err.error, ExecError::TaskPanicked { node, .. } if node == NodeId(2)));
        assert_eq!(err.completed.updates, 0, "first batch failed");
        assert_eq!(err.failed_updates, 4, "batch had absorbed 4 updates");
        assert_eq!(err.failed_initial, vec![NodeId(0), NodeId(1)]);
        // Node 0's wavefront committed before the failure; completions of
        // the failing wavefront depend on chunk order, but never node 2.
        assert!(journal.contains(NodeId(0)));
        assert!(!journal.contains(NodeId(2)), "failed task must not commit");
        let committed = journal.len();
        // Resume the failed batch: journaled nodes replay, the rest runs.
        let resumed = exec
            .run_fallible(
                &mut s,
                &dag,
                &err.failed_initial,
                infallible(f.clone()),
                Some(&mut journal),
            )
            .unwrap();
        assert_eq!(resumed.replayed, committed);
        assert_eq!(
            resumed.executed,
            4 - committed,
            "exactly the un-journaled nodes re-run"
        );
        assert!(journal.is_empty(), "committed batch clears the journal");
        // Continue the stream after the failed batch's members.
        let tail = &updates[err.completed.updates + err.failed_updates..];
        let report = exec
            .run_stream_with(&mut s, &dag, tail, infallible(f), &policy, Some(&mut journal))
            .unwrap();
        assert_eq!(report.updates, 4);
        assert_eq!(report.batches, 1);
        assert_eq!(report.executed, 4);
    }

    #[test]
    fn exec_error_display_and_error_impls_cover_every_variant() {
        let variants = [ExecError::Stall {
                scheduler: "X".into(),
            },
            ExecError::NonEdge {
                from: NodeId(1),
                to: NodeId(2),
            },
            ExecError::TaskPanicked {
                node: NodeId(3),
                message: "boom".into(),
            },
            ExecError::TaskFailed {
                node: NodeId(4),
                attempts: 7,
            },
            ExecError::Timeout {
                snapshot: Box::new(ExecSnapshot {
                    scheduler: "Y".into(),
                    in_flight: (0..12).map(NodeId).collect(),
                    queued_chunks: 3,
                    executed: 9,
                    elapsed_ms: 1500,
                }),
            },
            ExecError::Cancelled { executed: 11 }];
        let texts: Vec<String> = variants.iter().map(|e| e.to_string()).collect();
        for (e, t) in variants.iter().zip(&texts) {
            assert!(!t.is_empty(), "{e:?}");
            assert!(!t.contains('\n'), "diagnostics must be one-line: {t}");
            // Exercise the Error impl.
            let dyn_err: &dyn std::error::Error = e;
            assert_eq!(dyn_err.to_string(), *t);
        }
        assert!(texts[0].contains("stalled"));
        assert!(texts[1].contains("non-edge"));
        assert!(texts[2].contains("panicked") && texts[2].contains("boom"));
        assert!(texts[3].contains("7 attempts"));
        assert!(texts[4].contains("…"), "long in-flight lists are elided");
        assert!(texts[5].contains("cancelled after 11"));
    }

    #[test]
    fn retry_policy_backoff_is_bounded() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(35),
        };
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(35), "capped");
        assert_eq!(p.delay(30), Duration::from_millis(35), "shift clamped");
        assert_eq!(RetryPolicy::default().delay(5), Duration::ZERO);
    }

    #[test]
    fn cancel_token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!t2.is_cancelled());
    }

    #[test]
    fn coordinator_panic_releases_workers_within_bounded_wait() {
        // A scheduler that panics in complete_batch — i.e. an injected
        // panic in the coordinator's drive loop. The unwind must release
        // every worker (channel disconnect) instead of leaking them.
        struct PanicOnComplete {
            inner: LevelBased,
        }
        impl Scheduler for PanicOnComplete {
            fn name(&self) -> &str {
                "PanicOnComplete"
            }
            fn start(&mut self, initial: &[NodeId]) {
                self.inner.start(initial);
            }
            fn on_completed(&mut self, _v: NodeId, _fired: &[NodeId]) {
                panic!("injected coordinator failure");
            }
            fn pop_ready(&mut self) -> Option<NodeId> {
                self.inner.pop_ready()
            }
            fn is_quiescent(&self) -> bool {
                self.inner.is_quiescent()
            }
            fn cost(&self) -> CostMeter {
                self.inner.cost()
            }
            fn space_bytes(&self) -> usize {
                0
            }
            fn precompute_bytes(&self) -> usize {
                0
            }
            fn on_external_dispatch(&mut self, v: NodeId) {
                self.inner.on_external_dispatch(v);
            }
        }
        quiet_panics();
        let dag = diamond();
        let task = fire_all(&dag);
        let witness = task.clone();
        let mut s = PanicOnComplete {
            inner: LevelBased::new(dag.clone()),
        };
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let _ = Executor::new(4).run(&mut s, &dag, &[NodeId(0)], task);
        }));
        assert!(caught.is_err(), "coordinator panic must propagate");
        // All four workers held a TaskFn clone; once they exit, only the
        // witness remains. Bounded wait: 5 s.
        let t0 = Instant::now();
        while Arc::strong_count(&witness) > 1 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "workers leaked after coordinator panic (strong_count = {})",
                Arc::strong_count(&witness)
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
