//! The threaded dispatch loop, built for sustained update-stream
//! throughput.
//!
//! One coordinating thread owns the scheduler; `workers` threads execute
//! task closures. The hot path is batched end to end:
//!
//! * the coordinator pulls whole wavefronts with
//!   [`Scheduler::pop_batch`] (one trait crossing per wavefront, not per
//!   node) and ships them to workers as multi-task *chunks* over a
//!   **bounded** channel — backpressure, so a fast coordinator can never
//!   run unboundedly ahead of slow workers;
//! * workers append each task's fired children straight into a reusable
//!   [`CompletionBatch`] (no per-task allocation) and flush the whole
//!   buffer back in one message;
//! * the coordinator feeds completions back with
//!   [`Scheduler::complete_batch`], and chunk vectors / completion
//!   batches recycle between the two sides so steady state allocates
//!   nothing.
//!
//! Workers park in `recv` when the queue is empty (condvar, no spinning)
//! and exit on an explicit [`WorkMsg::Shutdown`] — distinct from a stalled
//! scheduler, which surfaces as [`ExecError::Stall`]. Completion order is
//! still recorded for the safety checker; the "fired" sets come from
//! *real computation* (e.g. the Datalog engine reporting whether a
//! predicate's output actually changed).
//!
//! [`Executor::run_stream`] drives a whole stream of updates through one
//! warm worker pool — combined with the O(active) `start()` of the
//! schedulers, a stream of 10-node updates costs per-update work
//! proportional to 10, not to the DAG size.

use crossbeam::channel;
use incr_dag::{Dag, NodeId};
use incr_obs::trace;
use incr_sched::{CompletionBatch, Scheduler};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A task body: executed on a worker thread for each dispatched node.
/// Children whose input changed are appended to `fired` (which the caller
/// provides and recycles — implementations must only push, never read or
/// clear it).
pub type TaskFn = Arc<dyn Fn(NodeId, &mut Vec<NodeId>) + Send + Sync>;

/// Why a run could not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The scheduler offered no task while active work remained.
    Stall { scheduler: String },
    /// A task fired a child it has no edge to in `G`.
    NonEdge { from: NodeId, to: NodeId },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Stall { scheduler } => {
                write!(f, "{scheduler} stalled with active work remaining")
            }
            ExecError::NonEdge { from, to } => {
                write!(f, "task {from} fired non-edge to {to}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Tuning for the dispatch pipeline.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Worker thread count (the paper's experiments use 8).
    pub workers: usize,
    /// Max tasks pulled from the scheduler per `pop_batch` call.
    pub batch_max: usize,
    /// Max tasks per chunk handed to a single worker.
    pub chunk_max: usize,
    /// Bounded work-queue capacity in chunks (the backpressure knob).
    pub queue_cap: usize,
    /// Legacy one-task-per-message dispatch over unbounded channels with a
    /// fresh allocation per completion — the pre-batching executor,
    /// preserved as the A/B baseline for the `exec_throughput` bench.
    pub per_task: bool,
}

impl ExecConfig {
    pub fn new(workers: usize) -> ExecConfig {
        assert!(workers >= 1);
        ExecConfig {
            workers,
            batch_max: 256,
            chunk_max: 32,
            queue_cap: 64,
            per_task: false,
        }
    }
}

/// Result of one [`Executor::run`].
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// Number of tasks executed (= activated tasks).
    pub executed: usize,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Nodes in completion order (nondeterministic across runs).
    pub completion_order: Vec<NodeId>,
    /// Fraction of coordinator wall time spent doing work (scheduling,
    /// dispatching, feeding back completions) rather than blocked waiting
    /// for workers. Near 1.0 means the coordinator is the bottleneck.
    pub coord_busy_fraction: f64,
}

/// Result of one [`Executor::run_stream`].
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Updates driven to quiescence.
    pub updates: usize,
    /// Total tasks executed across all updates.
    pub executed: usize,
    /// Wall-clock duration of the whole stream.
    pub wall_seconds: f64,
    /// Per-update wall-clock durations.
    pub update_seconds: Vec<f64>,
    /// Coordinator busy fraction over the whole stream.
    pub coord_busy_fraction: f64,
}

/// What the coordinator sends workers.
#[derive(Debug)]
enum WorkMsg {
    /// Tasks to execute. The Vec travels back through the recycle channel.
    Chunk(Vec<NodeId>),
    /// Orderly end of the run: exit now. Distinct from a disconnect so a
    /// dropped coordinator (panic, error path) also releases workers, but
    /// the normal path is explicit.
    Shutdown,
}

/// The coordinator's ends of the four pipes.
struct Pipes {
    work_tx: channel::Sender<WorkMsg>,
    done_rx: channel::Receiver<CompletionBatch>,
    /// Cleared completion batches returning to workers.
    batch_back_tx: channel::Sender<CompletionBatch>,
    /// Cleared chunk vectors returning from workers.
    chunk_back_rx: channel::Receiver<Vec<NodeId>>,
}

/// A fixed-size worker pool driving one scheduler.
pub struct Executor {
    cfg: ExecConfig,
}

impl Executor {
    /// Pool with `workers` threads and default batching.
    pub fn new(workers: usize) -> Executor {
        Executor {
            cfg: ExecConfig::new(workers),
        }
    }

    /// Pool with explicit pipeline tuning.
    pub fn with_config(cfg: ExecConfig) -> Executor {
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_max >= 1 && cfg.chunk_max >= 1 && cfg.queue_cap >= 1);
        Executor { cfg }
    }

    /// Execute one incremental update: dirty `initial` tasks, then run
    /// every task the scheduler deems safe until quiescent.
    pub fn run(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> Result<ExecReport, ExecError> {
        if self.cfg.per_task {
            return self.run_per_task(scheduler, dag, initial, task);
        }
        let t0 = Instant::now();
        let mut completion_order = Vec::new();
        let mut wait_ns = 0u64;
        let result = self.with_pool(dag, &task, |pipes, ready| {
            drive_update(
                scheduler,
                dag,
                initial,
                &self.cfg,
                pipes,
                ready,
                Some(&mut completion_order),
                &mut wait_ns,
            )
        });
        let executed = result?;
        Ok(finish_report(
            executed,
            completion_order,
            t0,
            wait_ns,
        ))
    }

    /// [`Executor::run`], panicking on error — the pre-existing contract,
    /// kept for tests and simple tools.
    pub fn run_or_panic(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> ExecReport {
        match self.run(scheduler, dag, initial, task) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Drive a whole stream of updates through one warm worker pool: the
    /// scheduler is `start`ed per update (O(active) with the stamped
    /// schedulers) and the pool, channels and buffers persist across
    /// updates, so per-update dispatch cost is independent of both V and
    /// the stream position.
    pub fn run_stream(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        updates: &[Vec<NodeId>],
        task: TaskFn,
    ) -> Result<StreamReport, ExecError> {
        let t0 = Instant::now();
        let mut update_seconds = Vec::with_capacity(updates.len());
        let mut executed = 0usize;
        let mut wait_ns = 0u64;
        let result = self.with_pool(dag, &task, |pipes, ready| {
            for initial in updates {
                let u0 = Instant::now();
                executed += drive_update(
                    scheduler,
                    dag,
                    initial,
                    &self.cfg,
                    pipes,
                    ready,
                    None,
                    &mut wait_ns,
                )?;
                update_seconds.push(u0.elapsed().as_secs_f64());
            }
            Ok(0)
        });
        result?;
        let wall = t0.elapsed();
        record_occupancy(wall.as_nanos() as u64, wait_ns);
        Ok(StreamReport {
            updates: updates.len(),
            executed,
            wall_seconds: wall.as_secs_f64(),
            update_seconds,
            coord_busy_fraction: busy_fraction(wall.as_nanos() as u64, wait_ns),
        })
    }

    /// Spawn the worker pool, run `body` on the coordinator side, then
    /// shut the pool down (explicit [`WorkMsg::Shutdown`] per worker; the
    /// scope join guarantees no worker outlives the call even on the
    /// error path, where dropped channels double as the release).
    fn with_pool<R>(
        &self,
        dag: &Arc<Dag>,
        task: &TaskFn,
        body: impl FnOnce(&Pipes, &mut Vec<NodeId>) -> Result<R, ExecError>,
    ) -> Result<R, ExecError> {
        let (work_tx, work_rx) = channel::bounded::<WorkMsg>(self.cfg.queue_cap);
        let (done_tx, done_rx) = channel::unbounded::<CompletionBatch>();
        let (batch_back_tx, batch_back_rx) = channel::unbounded::<CompletionBatch>();
        let (chunk_back_tx, chunk_back_rx) = channel::unbounded::<Vec<NodeId>>();
        let _ = dag; // workers don't need the DAG; validation is coordinator-side

        std::thread::scope(|scope| {
            for i in 0..self.cfg.workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let batch_back_rx = batch_back_rx.clone();
                let chunk_back_tx = chunk_back_tx.clone();
                let task = task.clone();
                scope.spawn(move || worker_loop(i, work_rx, done_tx, batch_back_rx, chunk_back_tx, task));
            }
            drop(work_rx);
            drop(done_tx);
            drop(batch_back_rx);
            drop(chunk_back_tx);

            if trace::enabled() {
                trace::set_thread_name("executor-coordinator");
            }
            let pipes = Pipes {
                work_tx,
                done_rx,
                batch_back_tx,
                chunk_back_rx,
            };
            let mut ready = Vec::new();
            let result = body(&pipes, &mut ready);
            // Orderly shutdown: one message per worker. Workers are still
            // draining the queue (even on the error path), so the bounded
            // send always completes.
            for _ in 0..self.cfg.workers {
                let _ = pipes.work_tx.send(WorkMsg::Shutdown);
            }
            result
        })
    }

    /// The pre-batching dispatch loop: one node per message, unbounded
    /// channels, a fresh `Vec` allocated per completion, one
    /// `pop_ready`/`on_completed` virtual call per task. Kept bit-for-bit
    /// equivalent in behavior so `exec_throughput` measures the real
    /// before/after of the batched pipeline.
    fn run_per_task(
        &self,
        scheduler: &mut dyn Scheduler,
        dag: &Arc<Dag>,
        initial: &[NodeId],
        task: TaskFn,
    ) -> Result<ExecReport, ExecError> {
        let t0 = Instant::now();
        let (work_tx, work_rx) = channel::unbounded::<NodeId>();
        let (done_tx, done_rx) = channel::unbounded::<(NodeId, Vec<NodeId>)>();

        scheduler.start(initial);
        let mut executed = 0usize;
        let mut completion_order = Vec::new();
        let mut wait_ns = 0u64;

        let result = std::thread::scope(|scope| {
            for i in 0..self.cfg.workers {
                let work_rx = work_rx.clone();
                let done_tx = done_tx.clone();
                let task = task.clone();
                scope.spawn(move || {
                    if trace::enabled() {
                        trace::set_thread_name(&format!("worker-{i}"));
                    }
                    loop {
                        let idle = trace::span("exec", "worker.idle");
                        let Ok(node) = work_rx.recv() else { break };
                        drop(idle);
                        let mut fired = Vec::new();
                        task(node, &mut fired);
                        if done_tx.send((node, fired)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(work_rx);
            drop(done_tx);

            if trace::enabled() {
                trace::set_thread_name("executor-coordinator");
            }
            let mut in_flight = 0usize;
            let r = 'drive: loop {
                while let Some(t) = scheduler.pop_ready() {
                    work_tx.send(t).expect("workers alive");
                    in_flight += 1;
                }
                if in_flight == 0 {
                    if scheduler.is_quiescent() {
                        break Ok(());
                    }
                    break Err(ExecError::Stall {
                        scheduler: scheduler.name().to_string(),
                    });
                }
                let wait = trace::span("exec", "coordinator.wait_completion");
                let w0 = Instant::now();
                let (node, fired) = done_rx.recv().expect("workers alive");
                wait_ns += w0.elapsed().as_nanos() as u64;
                drop(wait);
                for &c in &fired {
                    if !dag.has_edge(node, c) {
                        break 'drive Err(ExecError::NonEdge { from: node, to: c });
                    }
                }
                in_flight -= 1;
                executed += 1;
                completion_order.push(node);
                scheduler.on_completed(node, &fired);
            };
            // Disconnect releases parked workers so the scope can join.
            drop(work_tx);
            r
        });
        result?;
        Ok(finish_report(executed, completion_order, t0, wait_ns))
    }
}

/// Worker side: park on `recv`, execute chunks into a recycled completion
/// batch, flush the batch whole.
fn worker_loop(
    i: usize,
    work_rx: channel::Receiver<WorkMsg>,
    done_tx: channel::Sender<CompletionBatch>,
    batch_back_rx: channel::Receiver<CompletionBatch>,
    chunk_back_tx: channel::Sender<Vec<NodeId>>,
    task: TaskFn,
) {
    if trace::enabled() {
        trace::set_thread_name(&format!("worker-{i}"));
    }
    loop {
        let idle = trace::span("exec", "worker.idle");
        let msg = work_rx.recv();
        drop(idle);
        let mut chunk = match msg {
            Ok(WorkMsg::Chunk(chunk)) => chunk,
            Ok(WorkMsg::Shutdown) | Err(_) => break,
        };
        let mut batch = batch_back_rx.try_recv().unwrap_or_default();
        let span = trace::enabled().then(|| {
            trace::span_with(
                "exec",
                format!("chunk x{}", chunk.len()),
                vec![("tasks", chunk.len().into())],
            )
        });
        for &node in &chunk {
            task(node, batch.fired_buf());
            batch.commit(node);
        }
        drop(span);
        chunk.clear();
        let _ = chunk_back_tx.send(chunk);
        if done_tx.send(batch).is_err() {
            break;
        }
    }
}

/// One update to quiescence on the batched pipeline. Returns tasks
/// executed; accumulates coordinator blocked-time into `wait_ns`.
#[allow(clippy::too_many_arguments)]
fn drive_update(
    scheduler: &mut dyn Scheduler,
    dag: &Dag,
    initial: &[NodeId],
    cfg: &ExecConfig,
    pipes: &Pipes,
    ready: &mut Vec<NodeId>,
    mut order: Option<&mut Vec<NodeId>>,
    wait_ns: &mut u64,
) -> Result<usize, ExecError> {
    scheduler.start(initial);
    let mut in_flight = 0usize;
    let mut executed = 0usize;
    loop {
        // Dispatch every currently-safe task, one wavefront per pop_batch.
        loop {
            ready.clear();
            if scheduler.pop_batch(ready, cfg.batch_max) == 0 {
                break;
            }
            in_flight += ready.len();
            send_chunks(ready, cfg, pipes);
        }
        if trace::enabled() {
            trace::counter("exec", "exec.in_flight", in_flight as f64);
        }
        if in_flight == 0 {
            if scheduler.is_quiescent() {
                return Ok(executed);
            }
            return Err(ExecError::Stall {
                scheduler: scheduler.name().to_string(),
            });
        }
        // Block for one completion batch, then drain whatever else landed.
        let wait = trace::span("exec", "coordinator.wait_completion");
        let w0 = Instant::now();
        let mut batch = pipes.done_rx.recv().expect("workers alive");
        *wait_ns += w0.elapsed().as_nanos() as u64;
        drop(wait);
        loop {
            for (node, fired) in batch.iter() {
                for &c in fired {
                    if !dag.has_edge(node, c) {
                        return Err(ExecError::NonEdge { from: node, to: c });
                    }
                }
            }
            in_flight -= batch.len();
            executed += batch.len();
            if let Some(order) = order.as_deref_mut() {
                order.extend(batch.iter().map(|(node, _)| node));
            }
            scheduler.complete_batch(&batch);
            batch.clear();
            let _ = pipes.batch_back_tx.send(batch);
            match pipes.done_rx.try_recv() {
                Some(next) => batch = next,
                None => break,
            }
        }
    }
}

/// Split `ready` into chunks sized to spread one wavefront across the
/// pool (capped at `chunk_max`) and send them, recycling chunk vectors
/// returned by workers. The bounded send is the backpressure point.
fn send_chunks(ready: &[NodeId], cfg: &ExecConfig, pipes: &Pipes) {
    let target = ready.len().div_ceil(cfg.workers).clamp(1, cfg.chunk_max);
    for piece in ready.chunks(target) {
        let mut chunk = pipes.chunk_back_rx.try_recv().unwrap_or_default();
        chunk.extend_from_slice(piece);
        pipes.work_tx.send(WorkMsg::Chunk(chunk)).expect("workers alive");
    }
}

fn busy_fraction(total_ns: u64, wait_ns: u64) -> f64 {
    if total_ns == 0 {
        return 1.0;
    }
    1.0 - (wait_ns.min(total_ns) as f64 / total_ns as f64)
}

/// Always-on occupancy counters (relaxed atomic adds).
fn record_occupancy(total_ns: u64, wait_ns: u64) {
    let r = incr_obs::registry();
    r.counter("exec.coord_wait_ns").add(wait_ns.min(total_ns));
    r.counter("exec.coord_busy_ns")
        .add(total_ns - wait_ns.min(total_ns));
}

fn finish_report(
    executed: usize,
    completion_order: Vec<NodeId>,
    t0: Instant,
    wait_ns: u64,
) -> ExecReport {
    let wall = t0.elapsed();
    record_occupancy(wall.as_nanos() as u64, wait_ns);
    ExecReport {
        executed,
        wall_seconds: wall.as_secs_f64(),
        completion_order,
        coord_busy_fraction: busy_fraction(wall.as_nanos() as u64, wait_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::DagBuilder;
    use incr_sched::{CostMeter, Hybrid, LevelBased, LogicBlox};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn diamond() -> Arc<Dag> {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        Arc::new(b.build().unwrap())
    }

    /// Fire every out-edge: full recomputation of the diamond.
    fn fire_all(dag: &Arc<Dag>) -> TaskFn {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| fired.extend_from_slice(dag.children(v)))
    }

    #[test]
    fn executes_diamond_fully() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
        assert_eq!(report.completion_order.len(), 4);
        assert_eq!(report.completion_order[0], NodeId(0));
        assert_eq!(*report.completion_order.last().unwrap(), NodeId(3));
        assert!((0.0..=1.0).contains(&report.coord_busy_fraction));
    }

    #[test]
    fn partial_firing_limits_execution() {
        let dag = diamond();
        let mut s = LogicBlox::new(dag.clone());
        // Node 0 fires only node 1; nodes 1..3 fire nothing.
        let f: TaskFn = Arc::new(|v, fired: &mut Vec<NodeId>| {
            if v == NodeId(0) {
                fired.push(NodeId(1));
            }
        });
        let report = Executor::new(2).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 2);
    }

    #[test]
    fn tasks_run_in_parallel_on_real_threads() {
        // Wide fan: one source, 16 children; verify several children
        // overlap in time across worker threads.
        let mut b = DagBuilder::new(17);
        for i in 1..17u32 {
            b.add_edge(NodeId(0), NodeId(i));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut s = LevelBased::new(dag.clone());
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let f: TaskFn = {
            let dag = dag.clone();
            let peak = peak.clone();
            let live = live.clone();
            Arc::new(move |v, fired: &mut Vec<NodeId>| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                fired.extend_from_slice(dag.children(v));
            })
        };
        // Chunk size 1 so the fan spreads across all 8 workers.
        let mut cfg = ExecConfig::new(8);
        cfg.chunk_max = 1;
        let report = Executor::with_config(cfg).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
        assert_eq!(report.executed, 17);
        assert!(
            peak.load(Ordering::SeqCst) >= 4,
            "expected real overlap, saw peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn hybrid_runs_on_real_threads() {
        let dag = diamond();
        let mut s = Hybrid::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
        assert_eq!(report.executed, 4);
    }

    #[test]
    fn firing_a_non_edge_returns_typed_error() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let f: TaskFn = Arc::new(|_, fired: &mut Vec<NodeId>| {
            fired.push(NodeId(3)); // node 0 has no edge to 3
        });
        let err = Executor::new(2)
            .run(&mut s, &dag, &[NodeId(0)], f)
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::NonEdge {
                from: NodeId(0),
                to: NodeId(3)
            }
        );
        assert!(err.to_string().contains("fired non-edge"));
    }

    #[test]
    #[should_panic(expected = "fired non-edge")]
    fn firing_a_non_edge_panics_via_shim() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let f: TaskFn = Arc::new(|_, fired: &mut Vec<NodeId>| {
            fired.push(NodeId(3));
        });
        let _ = Executor::new(2).run_or_panic(&mut s, &dag, &[NodeId(0)], f);
    }

    /// A scheduler that admits active work but never offers any task:
    /// the executor must surface a stall instead of hanging or panicking.
    struct Hoarder {
        active: usize,
    }

    impl Scheduler for Hoarder {
        fn name(&self) -> &str {
            "Hoarder"
        }
        fn start(&mut self, initial_active: &[NodeId]) {
            self.active = initial_active.len();
        }
        fn on_completed(&mut self, _v: NodeId, _fired: &[NodeId]) {}
        fn pop_ready(&mut self) -> Option<NodeId> {
            None
        }
        fn is_quiescent(&self) -> bool {
            self.active == 0
        }
        fn cost(&self) -> CostMeter {
            CostMeter::default()
        }
        fn space_bytes(&self) -> usize {
            0
        }
        fn precompute_bytes(&self) -> usize {
            0
        }
        fn on_external_dispatch(&mut self, _v: NodeId) {}
    }

    #[test]
    fn scheduler_stall_returns_typed_error() {
        let dag = diamond();
        let mut s = Hoarder { active: 0 };
        let err = Executor::new(2)
            .run(&mut s, &dag, &[NodeId(0)], fire_all(&dag))
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::Stall {
                scheduler: "Hoarder".to_string()
            }
        );
        assert!(err.to_string().contains("stalled with active work remaining"));
    }

    #[test]
    fn empty_update_returns_immediately() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let report = Executor::new(4).run_or_panic(&mut s, &dag, &[], fire_all(&dag));
        assert_eq!(report.executed, 0);
        assert!(report.completion_order.is_empty());
    }

    #[test]
    fn per_task_mode_matches_batched() {
        let dag = diamond();
        for per_task in [false, true] {
            let mut cfg = ExecConfig::new(3);
            cfg.per_task = per_task;
            let mut s = LevelBased::new(dag.clone());
            let report =
                Executor::with_config(cfg).run_or_panic(&mut s, &dag, &[NodeId(0)], fire_all(&dag));
            assert_eq!(report.executed, 4, "per_task={per_task}");
            assert_eq!(report.completion_order[0], NodeId(0));
        }
    }

    #[test]
    fn stream_reuses_pool_across_updates() {
        let dag = diamond();
        let mut s = LevelBased::new(dag.clone());
        let updates: Vec<Vec<NodeId>> =
            vec![vec![NodeId(0)], vec![], vec![NodeId(1)], vec![NodeId(0)]];
        let report = Executor::new(4)
            .run_stream(&mut s, &dag, &updates, fire_all(&dag))
            .unwrap();
        assert_eq!(report.updates, 4);
        // 4 (full) + 0 (empty) + 2 (from node 1) + 4 (full again).
        assert_eq!(report.executed, 10);
        assert_eq!(report.update_seconds.len(), 4);
    }
}
