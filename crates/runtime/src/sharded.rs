//! Sharded stream execution: N independent scheduler+executor instances
//! over one DAG, each serving a hash partition of the update stream.
//!
//! This is the executor-layer counterpart of the Datalog engine's
//! `ShardedEngine`: updates are partitioned by node id, every shard owns
//! a full [`Executor`] (worker pool, retry policy, journal hooks) plus
//! its own scheduler instance, and the shard streams run concurrently on
//! dedicated coordinator threads. Each shard's [`ExecConfig::shard`] is
//! set, so its flight-recorder events and task spans carry the shard id
//! and `dlsched explain`-style attribution can split time per shard.
//!
//! Updates stay *aligned* across shards: update `i` exists on every
//! shard (possibly with an empty dirty set), so per-update indices — and
//! therefore latency percentiles — remain comparable to an unsharded
//! run of the same stream.

use crate::executor::{ExecConfig, Executor, StreamError, StreamReport, TaskFn};
use incr_dag::{Dag, NodeId};
use incr_sched::Scheduler;
use std::sync::Arc;

/// Partition each update's dirty set by `node.index() % shards`,
/// keeping one (possibly empty) entry per update on every shard so
/// update indices stay aligned across shard streams.
pub fn partition_stream(updates: &[Vec<NodeId>], shards: usize) -> Vec<Vec<Vec<NodeId>>> {
    assert!(shards >= 1);
    let mut per: Vec<Vec<Vec<NodeId>>> = vec![Vec::with_capacity(updates.len()); shards];
    for (i, u) in updates.iter().enumerate() {
        for stream in per.iter_mut() {
            stream.push(Vec::new());
        }
        for &n in u {
            per[n.index() % shards][i].push(n);
        }
    }
    per
}

/// Per-shard results of one sharded stream run, aligned by shard index.
#[derive(Clone, Debug)]
pub struct ShardedStreamReport {
    pub shards: Vec<StreamReport>,
}

impl ShardedStreamReport {
    /// Updates driven (identical on every shard by construction).
    pub fn updates(&self) -> usize {
        self.shards.first().map_or(0, |r| r.updates)
    }

    /// Tasks executed, summed over shards.
    pub fn executed(&self) -> usize {
        self.shards.iter().map(|r| r.executed).sum()
    }

    /// Wall clock of the whole run: the slowest shard (they run
    /// concurrently).
    pub fn wall_seconds(&self) -> f64 {
        self.shards.iter().map(|r| r.wall_seconds).fold(0.0, f64::max)
    }

    /// Aggregate throughput in updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        let wall = self.wall_seconds();
        if wall > 0.0 {
            self.updates() as f64 / wall
        } else {
            0.0
        }
    }
}

/// N executors over hash-partitioned streams. See the module docs.
pub struct ShardedExecutor {
    cfg: ExecConfig,
    shards: usize,
}

impl ShardedExecutor {
    /// `shards` shard coordinators, each with `workers_per_shard` worker
    /// threads.
    pub fn new(shards: usize, workers_per_shard: usize) -> ShardedExecutor {
        Self::with_config(shards, ExecConfig::new(workers_per_shard))
    }

    /// Per-shard config template; `cfg.shard` is overwritten with each
    /// shard's index.
    pub fn with_config(shards: usize, cfg: ExecConfig) -> ShardedExecutor {
        assert!(shards >= 1);
        ShardedExecutor { cfg, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Run a closed-loop update stream partitioned across all shards.
    /// `make_sched` builds one scheduler instance per shard. Fails with
    /// the first shard error (other shards still run their streams to
    /// completion or failure — there is no cross-shard abort).
    pub fn run_stream(
        &self,
        mut make_sched: impl FnMut(usize) -> Box<dyn Scheduler + Send>,
        dag: &Arc<Dag>,
        updates: &[Vec<NodeId>],
        task: TaskFn,
    ) -> Result<ShardedStreamReport, Box<StreamError>> {
        let streams = partition_stream(updates, self.shards);
        let mut scheds: Vec<Box<dyn Scheduler + Send>> =
            (0..self.shards).map(&mut make_sched).collect();

        let mut outcomes: Vec<Option<Result<StreamReport, Box<StreamError>>>> =
            (0..self.shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (s, (sched, (stream, out))) in scheds
                .iter_mut()
                .zip(streams.iter().zip(outcomes.iter_mut()))
                .enumerate()
            {
                let mut cfg = self.cfg.clone();
                cfg.shard = Some(s as u64);
                let dag = dag.clone();
                let task = task.clone();
                scope.spawn(move || {
                    incr_obs::flight::set_shard(s as u64 + 1);
                    *out = Some(Executor::with_config(cfg).run_stream(
                        sched.as_mut(),
                        &dag,
                        stream,
                        task,
                    ));
                });
            }
        });

        let mut reports = Vec::with_capacity(self.shards);
        for out in outcomes {
            match out {
                Some(Ok(r)) => reports.push(r),
                Some(Err(e)) => return Err(e),
                None => unreachable!("every shard thread writes its outcome"),
            }
        }
        Ok(ShardedStreamReport { shards: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_sched::LevelBased;

    fn layered() -> Arc<Dag> {
        Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
            layers: 6,
            width: 32,
            max_in: 3,
            back_span: 2,
            seed: 7,
        }))
    }

    #[test]
    fn partition_is_aligned_and_complete() {
        let updates = vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![],
            vec![NodeId(5)],
        ];
        let per = partition_stream(&updates, 2);
        assert_eq!(per.len(), 2);
        for stream in &per {
            assert_eq!(stream.len(), updates.len(), "aligned update indices");
        }
        let mut all: Vec<u32> = per
            .iter()
            .flat_map(|s| s.iter().flatten().map(|n| n.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 5]);
        // Ownership respected: shard s only holds nodes with index % 2 == s.
        for (s, stream) in per.iter().enumerate() {
            assert!(stream.iter().flatten().all(|n| n.index() % 2 == s));
        }
    }

    #[test]
    fn sharded_stream_executes_every_partition() {
        let dag = layered();
        let n = dag.node_count();
        let updates: Vec<Vec<NodeId>> = (0..8)
            .map(|i| (0..4).map(|j| NodeId(((i * 7 + j * 13) % n as u64) as u32)).collect())
            .collect();
        let task: TaskFn = Arc::new(|_, _| {});

        let exec = ShardedExecutor::new(3, 2);
        let report = exec
            .run_stream(
                |_| Box::new(LevelBased::new(dag.clone())) as Box<dyn Scheduler + Send>,
                &dag,
                &updates,
                task.clone(),
            )
            .expect("sharded stream runs");
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.updates(), 8);

        // Same stream, unsharded: the sharded run executes exactly the
        // same total task count (tasks are disjoint across shards and
        // the task body fires no children).
        let mut sched = LevelBased::new(dag.clone());
        let solo = Executor::new(2)
            .run_stream(&mut sched, &dag, &updates, task)
            .expect("unsharded stream runs");
        assert_eq!(report.executed(), solo.executed);
    }
}
