//! Sharded stream execution: N independent scheduler+executor instances
//! over one DAG, each serving a hash partition of the update stream.
//!
//! This is the executor-layer counterpart of the Datalog engine's
//! `ShardedEngine`: updates are partitioned by node id, every shard owns
//! a full [`Executor`] (worker pool, retry policy, journal hooks) plus
//! its own scheduler instance, and the shard streams run concurrently on
//! dedicated coordinator threads. Each shard's [`ExecConfig::shard`] is
//! set, so its flight-recorder events and task spans carry the shard id
//! and `dlsched explain`-style attribution can split time per shard.
//!
//! Updates stay *aligned* across shards: update `i` exists on every
//! shard (possibly with an empty dirty set), so per-update indices — and
//! therefore latency percentiles — remain comparable to an unsharded
//! run of the same stream.
//!
//! **Failure propagation.** All shards observe one shared [`CancelToken`](crate::executor::CancelToken):
//! the first shard whose stream fails with a real error (anything but
//! [`ExecError::Cancelled`]) fires the token, and sibling shards abort at
//! their next wavefront boundary instead of running their streams to
//! completion against a result nobody will use. The aggregate
//! [`ShardStreamError`] keeps every real failure (there can be more than
//! one if two shards fail in the same window) plus the count of siblings
//! that died by propagation only.

use crate::executor::{ExecConfig, ExecError, Executor, StreamError, StreamReport, TaskFn};
use incr_dag::{Dag, NodeId};
use incr_sched::Scheduler;
use std::fmt;
use std::sync::Arc;

/// Partition each update's dirty set by `node.index() % shards`,
/// keeping one (possibly empty) entry per update on every shard so
/// update indices stay aligned across shard streams.
pub fn partition_stream(updates: &[Vec<NodeId>], shards: usize) -> Vec<Vec<Vec<NodeId>>> {
    assert!(shards >= 1);
    let mut per: Vec<Vec<Vec<NodeId>>> = vec![Vec::with_capacity(updates.len()); shards];
    for (i, u) in updates.iter().enumerate() {
        for stream in per.iter_mut() {
            stream.push(Vec::new());
        }
        for &n in u {
            per[n.index() % shards][i].push(n);
        }
    }
    per
}

/// Per-shard results of one sharded stream run, aligned by shard index.
#[derive(Clone, Debug)]
pub struct ShardedStreamReport {
    pub shards: Vec<StreamReport>,
}

impl ShardedStreamReport {
    /// Updates driven (identical on every shard by construction).
    pub fn updates(&self) -> usize {
        self.shards.first().map_or(0, |r| r.updates)
    }

    /// Tasks executed, summed over shards.
    pub fn executed(&self) -> usize {
        self.shards.iter().map(|r| r.executed).sum()
    }

    /// Wall clock of the whole run: the slowest shard (they run
    /// concurrently).
    pub fn wall_seconds(&self) -> f64 {
        self.shards.iter().map(|r| r.wall_seconds).fold(0.0, f64::max)
    }

    /// Aggregate throughput in updates per second.
    pub fn updates_per_sec(&self) -> f64 {
        let wall = self.wall_seconds();
        if wall > 0.0 {
            self.updates() as f64 / wall
        } else {
            0.0
        }
    }
}

/// One shard's terminal failure inside a sharded stream run.
#[derive(Debug)]
pub struct ShardFailure {
    /// Which shard stream failed.
    pub shard: usize,
    /// Index of the first update the shard could not complete.
    pub update: usize,
    /// The shard's own stream error, with resume information intact.
    pub error: Box<StreamError>,
}

impl ShardFailure {
    /// One-line diagnostic: shard id, failing update index, cause.
    pub fn diagnostic(&self) -> String {
        format!(
            "shard {} failed at update {}: {}",
            self.shard, self.update, self.error.error
        )
    }
}

/// Aggregate failure of [`ShardedExecutor::run_stream`]: every shard
/// that failed on its own, plus how many siblings were aborted purely by
/// cancellation propagation. `failures` is ordered by shard index and is
/// empty only when an external [`CancelToken`] (supplied via
/// [`ExecConfig::cancel`]) cancelled the whole run.
#[derive(Debug)]
pub struct ShardStreamError {
    /// Shards that failed with a real error, by shard index.
    pub failures: Vec<ShardFailure>,
    /// Sibling shards aborted by cancellation propagation only.
    pub cancelled: usize,
}

impl ShardStreamError {
    /// One diagnostic line per failed shard (shard id, update, cause),
    /// plus a trailing line for propagated cancellations if any.
    pub fn shard_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.failures.iter().map(ShardFailure::diagnostic).collect();
        if self.cancelled > 0 {
            lines.push(format!(
                "{} sibling shard(s) cancelled before completing their streams",
                self.cancelled
            ));
        }
        lines
    }
}

impl fmt::Display for ShardStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.failures.as_slice() {
            [] => write!(f, "all {} shard streams cancelled", self.cancelled),
            [first, rest @ ..] => {
                write!(f, "{}", first.diagnostic())?;
                if !rest.is_empty() {
                    write!(f, " (+{} more shard failures)", rest.len())?;
                }
                if self.cancelled > 0 {
                    write!(f, "; {} sibling(s) cancelled", self.cancelled)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ShardStreamError {}

/// N executors over hash-partitioned streams. See the module docs.
pub struct ShardedExecutor {
    cfg: ExecConfig,
    shards: usize,
}

impl ShardedExecutor {
    /// `shards` shard coordinators, each with `workers_per_shard` worker
    /// threads.
    pub fn new(shards: usize, workers_per_shard: usize) -> ShardedExecutor {
        Self::with_config(shards, ExecConfig::new(workers_per_shard))
    }

    /// Per-shard config template; `cfg.shard` is overwritten with each
    /// shard's index.
    pub fn with_config(shards: usize, cfg: ExecConfig) -> ShardedExecutor {
        assert!(shards >= 1);
        ShardedExecutor { cfg, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Run a closed-loop update stream partitioned across all shards.
    /// `make_sched` builds one scheduler instance per shard.
    ///
    /// All shards share one [`CancelToken`](crate::executor::CancelToken) — the caller's
    /// [`ExecConfig::cancel`] if set, else a run-local one — and the
    /// first shard to fail with a real error cancels its siblings, so a
    /// failing run winds down at the next wavefront boundaries instead of
    /// letting healthy shards finish a stream whose result is already
    /// lost. The returned [`ShardStreamError`] collects every real shard
    /// failure and counts the propagated cancellations. A caller-supplied
    /// token is left cancelled on the failure path; `reset()` it before
    /// retrying.
    pub fn run_stream(
        &self,
        mut make_sched: impl FnMut(usize) -> Box<dyn Scheduler + Send>,
        dag: &Arc<Dag>,
        updates: &[Vec<NodeId>],
        task: TaskFn,
    ) -> Result<ShardedStreamReport, Box<ShardStreamError>> {
        let streams = partition_stream(updates, self.shards);
        let mut scheds: Vec<Box<dyn Scheduler + Send>> =
            (0..self.shards).map(&mut make_sched).collect();
        let cancel = self.cfg.cancel.clone().unwrap_or_default();

        let mut outcomes: Vec<Option<Result<StreamReport, Box<StreamError>>>> =
            (0..self.shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (s, (sched, (stream, out))) in scheds
                .iter_mut()
                .zip(streams.iter().zip(outcomes.iter_mut()))
                .enumerate()
            {
                let mut cfg = self.cfg.clone();
                cfg.shard = Some(s as u64);
                cfg.cancel = Some(cancel.clone());
                let cancel = cancel.clone();
                let dag = dag.clone();
                let task = task.clone();
                scope.spawn(move || {
                    incr_obs::flight::set_shard(s as u64 + 1);
                    let res = Executor::with_config(cfg).run_stream(
                        sched.as_mut(),
                        &dag,
                        stream,
                        task,
                    );
                    if matches!(&res, Err(e) if !matches!(e.error, ExecError::Cancelled { .. })) {
                        // First real failure wins the race to abort the
                        // siblings; cancelling an already-cancelled token
                        // is a no-op, so ties are harmless.
                        cancel.cancel();
                    }
                    *out = Some(res);
                });
            }
        });

        let mut reports = Vec::with_capacity(self.shards);
        let mut failures = Vec::new();
        let mut cancelled = 0usize;
        for (s, out) in outcomes.into_iter().enumerate() {
            match out {
                Some(Ok(r)) => reports.push(r),
                Some(Err(e)) if matches!(e.error, ExecError::Cancelled { .. }) => cancelled += 1,
                Some(Err(e)) => failures.push(ShardFailure {
                    shard: s,
                    update: e.completed.updates,
                    error: e,
                }),
                // A scoped shard thread that exits without depositing its
                // outcome has panicked, and `thread::scope` re-raises that
                // panic at the join above — but if this arm ever runs,
                // fail typed rather than trusting that invariant.
                None => failures.push(ShardFailure {
                    shard: s,
                    update: 0,
                    error: Box::new(StreamError {
                        error: ExecError::Stall {
                            scheduler: "shard coordinator vanished".to_string(),
                        },
                        completed: empty_report(),
                        failed_initial: Vec::new(),
                        failed_updates: 0,
                    }),
                }),
            }
        }
        if failures.is_empty() && cancelled == 0 {
            Ok(ShardedStreamReport { shards: reports })
        } else {
            Err(Box::new(ShardStreamError { failures, cancelled }))
        }
    }
}

/// A zeroed [`StreamReport`] for synthesized failures that completed
/// nothing.
fn empty_report() -> StreamReport {
    StreamReport {
        updates: 0,
        executed: 0,
        wall_seconds: 0.0,
        update_seconds: Vec::new(),
        latency_seconds: Vec::new(),
        batches: 0,
        coalesced: 0,
        coord_busy_fraction: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_sched::LevelBased;

    fn layered() -> Arc<Dag> {
        Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
            layers: 6,
            width: 32,
            max_in: 3,
            back_span: 2,
            seed: 7,
        }))
    }

    #[test]
    fn partition_is_aligned_and_complete() {
        let updates = vec![
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![],
            vec![NodeId(5)],
        ];
        let per = partition_stream(&updates, 2);
        assert_eq!(per.len(), 2);
        for stream in &per {
            assert_eq!(stream.len(), updates.len(), "aligned update indices");
        }
        let mut all: Vec<u32> = per
            .iter()
            .flat_map(|s| s.iter().flatten().map(|n| n.0))
            .collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 5]);
        // Ownership respected: shard s only holds nodes with index % 2 == s.
        for (s, stream) in per.iter().enumerate() {
            assert!(stream.iter().flatten().all(|n| n.index() % 2 == s));
        }
    }

    #[test]
    fn sharded_stream_executes_every_partition() {
        let dag = layered();
        let n = dag.node_count();
        let updates: Vec<Vec<NodeId>> = (0..8)
            .map(|i| (0..4).map(|j| NodeId(((i * 7 + j * 13) % n as u64) as u32)).collect())
            .collect();
        let task: TaskFn = Arc::new(|_, _| {});

        let exec = ShardedExecutor::new(3, 2);
        let report = exec
            .run_stream(
                |_| Box::new(LevelBased::new(dag.clone())) as Box<dyn Scheduler + Send>,
                &dag,
                &updates,
                task.clone(),
            )
            .expect("sharded stream runs");
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.updates(), 8);

        // Same stream, unsharded: the sharded run executes exactly the
        // same total task count (tasks are disjoint across shards and
        // the task body fires no children).
        let mut sched = LevelBased::new(dag.clone());
        let solo = Executor::new(2)
            .run_stream(&mut sched, &dag, &updates, task)
            .expect("unsharded stream runs");
        assert_eq!(report.executed(), solo.executed);
    }

    #[test]
    fn shard_failure_cancels_siblings_and_reports_per_shard() {
        crate::faults::silence_injected_panics();
        let dag = layered();
        // Every update touches all three shards (9 % 3 == 0, 10 % 3 == 1,
        // 11 % 3 == 2) and every task spins, so sibling shards are still
        // mid-stream when the victim dies partway through.
        let updates: Vec<Vec<NodeId>> =
            (0..400).map(|_| vec![NodeId(9), NodeId(10), NodeId(11)]).collect();
        // Panic in shard 0 (node 9's owner) on its 50th execution.
        let task: TaskFn = {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let hits = Arc::new(AtomicUsize::new(0));
            Arc::new(move |v: NodeId, _out: &mut Vec<NodeId>| {
                let t0 = std::time::Instant::now();
                while t0.elapsed().as_micros() < 100 {
                    std::hint::spin_loop();
                }
                if v == NodeId(9) && hits.fetch_add(1, Ordering::SeqCst) == 50 {
                    panic!("{}: task 9 dies", crate::faults::INJECTED_PANIC);
                }
            })
        };

        let mut cfg = ExecConfig::new(2);
        cfg.black_box = None;
        let exec = ShardedExecutor::with_config(3, cfg);
        let err = exec
            .run_stream(
                |_| Box::new(LevelBased::new(dag.clone())) as Box<dyn Scheduler + Send>,
                &dag,
                &updates,
                task,
            )
            .expect_err("injected panic must fail the sharded stream");

        // Exactly the owning shard fails with a typed panic error; the
        // diagnostic names the shard, the update, and the cause.
        assert!(!err.failures.is_empty(), "at least the victim shard fails");
        let victim = &err.failures[0];
        assert_eq!(victim.shard, 9 % 3, "node 9's owner is the victim");
        assert!(
            matches!(victim.error.error, ExecError::TaskPanicked { node: NodeId(9), .. }),
            "typed panic, got {:?}",
            victim.error.error
        );
        let line = victim.diagnostic();
        assert!(line.contains("shard 0") && line.contains("update"), "{line}");
        assert!(!line.contains('\n'), "diagnostics must be one line: {line}");
        for l in err.shard_lines() {
            assert!(!l.contains('\n'), "one line per shard: {l}");
        }
        // Display is one line too (the CLI prints it directly).
        assert!(!err.to_string().contains('\n'));
        // The shared token aborted at least one mid-stream sibling instead
        // of letting it drive the remaining ~350 updates to completion.
        assert!(
            err.cancelled >= 1,
            "cancellation must propagate to siblings: {err:?}"
        );
        assert!(err.failures.len() + err.cancelled <= 3);
    }

    #[test]
    fn external_cancel_aborts_every_shard() {
        let dag = layered();
        let updates: Vec<Vec<NodeId>> = (0..500).map(|_| vec![NodeId(0)]).collect();
        let token = crate::executor::CancelToken::new();
        token.cancel(); // pre-cancelled: every shard aborts immediately
        let mut cfg = ExecConfig::new(1);
        cfg.cancel = Some(token);
        cfg.black_box = None;
        let task: TaskFn = Arc::new(|_, _| {});
        let err = ShardedExecutor::with_config(2, cfg)
            .run_stream(
                |_| Box::new(LevelBased::new(dag.clone())) as Box<dyn Scheduler + Send>,
                &dag,
                &updates,
                task,
            )
            .expect_err("pre-cancelled token aborts the run");
        assert!(err.failures.is_empty(), "no real failures: {err}");
        assert_eq!(err.cancelled, 2, "both shards cancelled");
        assert!(err.to_string().contains("cancelled"));
    }
}
