//! Machine-readable bench results: every table/figure binary writes a
//! versioned `results/<bin>.json` next to its human-readable table, so
//! runs can be diffed, plotted and regression-checked without scraping
//! stdout.
//!
//! File layout (schema v1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bin": "table3",
//!   "processors": 8,
//!   "host": { "available_parallelism": 8, "workers": 8 },
//!   "rows": [
//!     {
//!       "trace": "#6", "scheduler": "Hybrid",
//!       "makespan_s": 1.23, "sched_overhead_s": 0.04,
//!       "executed": 50000, "utilization": 0.87,
//!       "wall_seconds": 0.011, "precompute_seconds": 0.002,
//!       "peak_space_bytes": 400000, "over_budget": false,
//!       "overhead_ops": { "bucket_ops": 1, ... , "total_ops": 9 },
//!       "peak_gauges": { "lb.frontier_bucket_depth": 17, ... }
//!     }
//!   ],
//!   "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//! }
//! ```

use crate::Measurement;
use incr_obs::json::obj;
use incr_obs::Json;
use std::io;
use std::path::{Path, PathBuf};

/// Bump on any incompatible change to the row layout.
pub const SCHEMA_VERSION: u64 = 1;

/// Default output directory, relative to the working directory.
pub const RESULTS_DIR: &str = "results";

/// Accumulates rows for one binary's `results/<bin>.json`.
pub struct ResultsWriter {
    bin: String,
    processors: usize,
    workers: Option<usize>,
    rows: Vec<Json>,
}

/// Detected hardware parallelism of the machine the bench ran on (1 if
/// detection fails). Recorded in every results document so A/B numbers
/// stay interpretable across machines.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl ResultsWriter {
    /// `bin` names the experiment (and the output file); `processors` is
    /// the common simulated processor count (0 when it varies per row or
    /// the experiment does not simulate).
    pub fn new(bin: &str, processors: usize) -> ResultsWriter {
        ResultsWriter {
            bin: bin.to_string(),
            processors,
            workers: None,
            rows: Vec::new(),
        }
    }

    /// Record the real executor worker-thread count the experiment ran
    /// with (as opposed to `processors`, the paper's *simulated* count).
    /// Unset means the experiment did not run real threads.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = Some(workers);
    }

    /// Append the standard row for one scheduler-on-trace measurement.
    pub fn push_measurement(&mut self, trace: &str, m: &Measurement) {
        let row = measurement_row(trace, self.processors, m);
        self.rows.push(row);
    }

    /// Append a custom row (experiments with extra columns build their
    /// own objects; keep `trace` and `scheduler` fields for uniformity).
    pub fn push_row(&mut self, row: Json) {
        self.rows.push(row);
    }

    /// The full document, including a snapshot of the global metrics
    /// registry (peak gauges, protocol counters) at call time.
    pub fn to_value(&self) -> Json {
        let host = obj([
            ("available_parallelism", available_parallelism().into()),
            (
                "workers",
                self.workers.map_or(Json::Null, |w| w.into()),
            ),
        ]);
        obj([
            ("schema_version", SCHEMA_VERSION.into()),
            ("bin", self.bin.as_str().into()),
            ("processors", self.processors.into()),
            ("host", host),
            ("rows", Json::Arr(self.rows.clone())),
            ("metrics", incr_obs::registry().snapshot()),
        ])
    }

    /// Write `dir/<bin>.json`, creating `dir` if needed.
    ///
    /// Refuses to overwrite an existing results file whose
    /// `schema_version` differs from [`SCHEMA_VERSION`]: a stale file
    /// from an older layout must be migrated (or deleted) consciously,
    /// not silently clobbered — and, symmetrically, an old binary must
    /// not downgrade a newer file.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.bin));
        if let Ok(existing) = std::fs::read_to_string(&path) {
            let found = Json::parse(&existing)
                .ok()
                .and_then(|doc| doc.get("schema_version").and_then(Json::as_u64));
            if found != Some(SCHEMA_VERSION) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!(
                        "{} has schema_version {:?}, this binary writes v{}; \
                         delete the stale file to regenerate it",
                        path.display(),
                        found,
                        SCHEMA_VERSION
                    ),
                ));
            }
        }
        std::fs::write(&path, self.to_value().to_json())?;
        Ok(path)
    }

    /// Write to the default `results/` directory and report the path on
    /// stdout (non-fatal on failure: the human-readable table already
    /// went out, so a read-only filesystem only costs the JSON copy).
    pub fn write_default(&self) {
        match self.write_to(Path::new(RESULTS_DIR)) {
            Ok(path) => println!("results: {}", path.display()),
            Err(e) => eprintln!("results: cannot write {RESULTS_DIR}/{}.json: {e}", self.bin),
        }
    }
}

/// The standard per-measurement row (see the module docs for the schema).
pub fn measurement_row(trace: &str, processors: usize, m: &Measurement) -> Json {
    obj([
        ("trace", trace.into()),
        ("scheduler", m.label.as_str().into()),
        ("makespan_s", m.result.makespan.into()),
        ("sched_overhead_s", m.result.sched_overhead.into()),
        ("executed", m.result.executed.into()),
        ("utilization", m.result.utilization(processors).into()),
        ("wall_seconds", m.wall_seconds.into()),
        ("precompute_seconds", m.precompute_seconds.into()),
        ("peak_space_bytes", m.result.peak_space.into()),
        ("precompute_space_bytes", m.result.precompute_space.into()),
        ("over_budget", m.result.over_budget.into()),
        ("overhead_ops", m.result.cost.to_value()),
        ("peak_gauges", peak_gauges()),
    ])
}

/// Current peak of every gauge in the global registry, as one flat
/// object — queue depths, level frontier, interval-list size at their
/// high-water marks.
pub fn peak_gauges() -> Json {
    let snap = incr_obs::registry().snapshot();
    let mut peaks: Vec<(String, Json)> = Vec::new();
    if let Some(gauges) = snap.get("gauges").and_then(Json::as_obj) {
        for (name, g) in gauges {
            if let Some(p) = g.get("peak") {
                peaks.push((name.clone(), p.clone()));
            }
        }
    }
    Json::Obj(peaks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure;
    use incr_dag::{DagBuilder, NodeId};
    use incr_sched::{Instance, SchedulerKind};
    use incr_sim::EventSimConfig;
    use std::sync::Arc;

    fn tiny_measurement() -> Measurement {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let dag = Arc::new(b.build().unwrap());
        let mut inst = Instance::unit(dag, vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        measure(SchedulerKind::Hybrid, &inst, &EventSimConfig::default())
    }

    #[test]
    fn document_round_trips_and_carries_schema() {
        let mut w = ResultsWriter::new("unit_test", 8);
        w.push_measurement("#0", &tiny_measurement());
        let doc = Json::parse(&w.to_value().to_json()).unwrap();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(doc.get("bin").unwrap().as_str(), Some("unit_test"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.get("scheduler").unwrap().as_str(), Some("Hybrid"));
        assert!(row.get("makespan_s").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(row.get("executed").unwrap().as_u64(), Some(2));
        let ops = row.get("overhead_ops").unwrap();
        assert!(ops.get("total_ops").unwrap().as_u64().unwrap() > 0);
        assert!(row.get("peak_gauges").unwrap().as_obj().is_some());
    }

    #[test]
    fn host_metadata_records_parallelism_and_workers() {
        let mut w = ResultsWriter::new("host_test", 0);
        let doc = Json::parse(&w.to_value().to_json()).unwrap();
        let host = doc.get("host").unwrap();
        let ap = host.get("available_parallelism").unwrap().as_u64().unwrap();
        assert!(ap >= 1, "detected parallelism must be at least 1");
        assert!(matches!(host.get("workers"), Some(Json::Null)));
        w.set_workers(4);
        let doc = Json::parse(&w.to_value().to_json()).unwrap();
        let host = doc.get("host").unwrap();
        assert_eq!(host.get("workers").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn writes_a_parseable_file() {
        let dir = std::env::temp_dir().join("incr_bench_results_test");
        let mut w = ResultsWriter::new("write_test", 8);
        w.push_measurement("#0", &tiny_measurement());
        let path = w.write_to(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refuses_to_clobber_mismatched_schema() {
        let dir = std::env::temp_dir().join("incr_bench_schema_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let w = ResultsWriter::new("guard_test", 8);
        let path = dir.join("guard_test.json");

        // Stale versioned file (older schema) → refused.
        std::fs::write(&path, "{\"schema_version\": 0, \"rows\": []}").unwrap();
        assert!(w.write_to(&dir).is_err(), "must refuse schema_version 0");
        // Unversioned junk (legacy .txt renamed, hand-edited) → refused.
        std::fs::write(&path, "not json at all").unwrap();
        assert!(w.write_to(&dir).is_err(), "must refuse unparseable file");
        // Matching schema → overwritten in place.
        std::fs::write(&path, "{\"schema_version\": 1}").unwrap();
        let written = w.write_to(&dir).unwrap();
        let doc = Json::parse(&std::fs::read_to_string(&written).unwrap()).unwrap();
        assert_eq!(doc.get("bin").unwrap().as_str(), Some("guard_test"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
