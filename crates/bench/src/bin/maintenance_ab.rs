//! Maintenance-backend A/B: DRed vs counting (FBF) on the MulVAL-style
//! dynamic attack-graph workload, swept across insert:delete ratios and
//! schedulers. Writes `results/maintenance_ab.json` (ResultsWriter
//! schema v1).
//!
//! Usage: `cargo run --release -p incr-bench --bin maintenance_ab [--smoke]`
//!
//! `--smoke` shrinks the instance for CI *and* turns the 90%-delete
//! preset into a gate: the run fails unless FBF sustains at least 1.3×
//! DRed's updates/s there (aggregated over all schedulers), so a
//! regression that erodes the counting backend's reason to exist turns
//! CI red instead of rotting silently.

use incr_bench::{fmt_secs, AttackConfig, AttackWorkload, ResultsWriter, Table};
use incr_datalog::{EvalOptions, FactEdit, IncrementalEngine, MaintenanceStrategy};
use incr_obs::json::obj;
use incr_sched::SchedulerKind;
use std::time::Instant;

const SCHEDULERS: [SchedulerKind; 4] = [
    SchedulerKind::LevelBased,
    SchedulerKind::LogicBlox,
    SchedulerKind::SignalPropagation,
    SchedulerKind::Hybrid,
];

const STRATEGIES: [MaintenanceStrategy; 2] = [MaintenanceStrategy::DRed, MaintenanceStrategy::Fbf];

/// The smoke gate from the issue: FBF must be at least this much faster
/// than DRed on the 90%-delete preset.
const SMOKE_SPEEDUP_FLOOR: f64 = 1.3;

/// Replay the same batches through one engine; returns wall seconds and
/// the final derived-tuple counts (for cross-strategy agreement checks).
fn run_one(
    program: &str,
    strategy: MaintenanceStrategy,
    kind: SchedulerKind,
    batches: &[Vec<FactEdit>],
) -> (f64, [usize; 3]) {
    let opts = EvalOptions::sequential().with_maintenance(strategy);
    let mut engine =
        IncrementalEngine::with_options(program, opts).expect("attack program compiles");
    let mut sched = kind.build(engine.dag().clone());
    let t0 = Instant::now();
    for b in batches {
        engine.update(sched.as_mut(), b).expect("update applies");
    }
    let wall = t0.elapsed().as_secs_f64();
    let counts = [
        engine.count("vulnerable") + engine.count("exposed"),
        engine.count("two_hop") + engine.count("wide_open"),
        engine.count("compromised"),
    ];
    (wall, counts)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        AttackConfig::smoke()
    } else {
        AttackConfig::full()
    };
    let (nbatches, batch_size) = if smoke { (50, 20) } else { (100, 40) };
    println!(
        "maintenance A/B: {} hosts, {} batches x {} edits{}",
        cfg.hosts,
        nbatches,
        batch_size,
        if smoke { " (smoke)" } else { "" }
    );

    let mut writer = ResultsWriter::new("maintenance_ab", 0);
    writer.set_workers(1);
    let mut table = Table::new(&[
        "delete%",
        "scheduler",
        "strategy",
        "updates/s",
        "wall",
        "speedup",
    ]);

    // Aggregate wall per strategy on the 90%-delete preset — the gate.
    let mut gate_wall = [0.0f64; 2];

    for pct in [10u64, 50, 90] {
        // One workload per ratio: every strategy x scheduler replays the
        // IDENTICAL program and edit stream.
        let mut w = AttackWorkload::new(&cfg);
        let program = w.program().to_string();
        let batches: Vec<Vec<FactEdit>> =
            (0..nbatches).map(|_| w.batch(batch_size, pct)).collect();

        for kind in SCHEDULERS {
            let mut walls = [0.0f64; 2];
            let mut finals: [[usize; 3]; 2] = [[0; 3]; 2];
            for (si, strategy) in STRATEGIES.iter().enumerate() {
                let (wall, counts) = run_one(&program, *strategy, kind, &batches);
                walls[si] = wall;
                finals[si] = counts;
                if pct == 90 {
                    gate_wall[si] += wall;
                }
            }
            assert_eq!(
                finals[0], finals[1],
                "DRed and FBF disagree on the final database ({} @ {pct}%)",
                kind.label()
            );
            for (si, strategy) in STRATEGIES.iter().enumerate() {
                let ups = nbatches as f64 / walls[si];
                let speedup = walls[0] / walls[si];
                table.row(vec![
                    format!("{pct}"),
                    kind.label(),
                    strategy.label().to_string(),
                    format!("{ups:.0}"),
                    fmt_secs(walls[si]),
                    format!("{speedup:.2}x"),
                ]);
                writer.push_row(obj([
                    ("trace", format!("delete={pct}%").as_str().into()),
                    ("scheduler", kind.label().as_str().into()),
                    ("strategy", strategy.label().into()),
                    ("delete_pct", pct.into()),
                    ("batches", (nbatches as u64).into()),
                    ("edits_per_batch", (batch_size as u64).into()),
                    ("wall_seconds", walls[si].into()),
                    ("updates_per_s", ups.into()),
                    ("speedup_vs_dred", speedup.into()),
                    ("smoke", smoke.into()),
                ]));
            }
        }
    }

    println!("\n{}", table.render());
    let gate = gate_wall[0] / gate_wall[1];
    println!(
        "90%-delete aggregate: FBF {gate:.2}x DRed updates/s (floor {SMOKE_SPEEDUP_FLOOR}x)"
    );
    writer.write_default();

    if smoke && gate < SMOKE_SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: FBF speedup {gate:.2}x below the {SMOKE_SPEEDUP_FLOOR}x floor on 90% deletes"
        );
        std::process::exit(1);
    }
}
