//! Regenerate **Table III**: makespan and scheduling overhead for the
//! LogicBlox, LevelBased and Hybrid schedulers on traces #6–#11, 8
//! processors.
//!
//! The paper's shape to reproduce:
//! * Hybrid makespan ≈ (or better than) LogicBlox everywhere except a
//!   small premium on traces where LevelBased is much worse (#7);
//! * Hybrid overhead strictly below LogicBlox overhead on every trace,
//!   with the dramatic reductions on the shallow-wide traces #6 and #11
//!   where the LogicBlox active-queue scan is the bottleneck;
//! * LevelBased overhead is microscopic everywhere (the `O(n + L)`
//!   guarantee).
//!
//! Usage: `cargo run --release -p incr-bench --bin table3 [trace_ids...]`

use incr_bench::{fmt_secs, measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_sched::SchedulerKind;
use incr_sim::EventSimConfig;
use incr_traces::{generate, preset};

fn main() {
    let ids: Vec<u32> = {
        let args: Vec<u32> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if args.is_empty() {
            vec![6, 7, 8, 9, 10, 11]
        } else {
            args
        }
    };
    let cfg = EventSimConfig {
        processors: PAPER_PROCESSORS,
        ..EventSimConfig::default()
    };
    let lineup = [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::HybridBackground(1),
    ];

    println!(
        "Table III: (makespan, scheduling overhead), {} processors\n",
        PAPER_PROCESSORS
    );
    let mut table = Table::new(&["trace", "LogicBlox", "LevelBased", "Hybrid"]);
    let mut paper = Table::new(&["trace", "LogicBlox", "LevelBased", "Hybrid"]);
    let mut results = ResultsWriter::new("table3", PAPER_PROCESSORS);
    for id in ids {
        let spec = preset(id);
        let (inst, _) = generate(&spec);
        let mut cells = vec![spec.name.to_string()];
        for kind in lineup {
            let m = measure(kind, &inst, &cfg);
            results.push_measurement(spec.name, &m);
            cells.push(format!(
                "({}, {})",
                fmt_secs(m.result.makespan),
                fmt_secs(m.result.sched_overhead)
            ));
            eprintln!(
                "{} {:<14} makespan {:>12.4}s overhead {:>12.6}s (wall {:.2}s, precompute {:.2}s)",
                spec.name,
                m.label,
                m.result.makespan,
                m.result.sched_overhead,
                m.wall_seconds,
                m.precompute_seconds
            );
        }
        table.row(cells);
        let p = &spec.paper;
        let cell = |m: Option<f64>, o: Option<f64>| match (m, o) {
            (Some(m), Some(o)) => format!("({}, {})", fmt_secs(m), fmt_secs(o)),
            _ => "-".to_string(),
        };
        paper.row(vec![
            spec.name.to_string(),
            cell(p.lbx_makespan, p.lbx_overhead),
            cell(p.lb_makespan, p.lb_overhead),
            cell(p.hybrid_makespan, p.hybrid_overhead),
        ]);
    }
    println!("measured:\n{}", table.render());
    println!("paper:\n{}", paper.render());
    results.write_default();
}
