//! Dispatch-core throughput benchmark: the batched scheduler→executor
//! pipeline vs the legacy one-task-per-message path, task-granularity and
//! batch-size sweeps, and the V-independence of per-update dispatch cost
//! on an update stream. Written to `results/exec_throughput.json`
//! (ResultsWriter schema v1) so the perf trajectory is machine-readable.
//!
//! Usage: `cargo run --release -p incr-bench --bin exec_throughput [--smoke]`
//!
//! `--smoke` shrinks the instances for CI (seconds, not minutes).

use incr_bench::{fmt_secs, ResultsWriter, Table};
use incr_dag::{random, Dag, NodeId};
use incr_obs::json::obj;
use incr_runtime::{CancelToken, ExecConfig, Executor, RetryPolicy, TaskFn, UpdateJournal};
use incr_sched::LevelBased;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// Layered DAG with `layers * width` nodes; depth fixed by `layers`.
fn dag(layers: u32, width: u32, seed: u64) -> Arc<Dag> {
    Arc::new(random::layered(random::LayeredParams {
        layers,
        width,
        max_in: 4,
        back_span: 2,
        seed,
    }))
}

/// Task body spinning `task_us` of real CPU, then firing all children
/// (full recomputation — every node in the DAG executes).
fn spin_fire_all(dag: &Arc<Dag>, task_us: u64) -> TaskFn {
    let dag = dag.clone();
    Arc::new(move |v, fired: &mut Vec<NodeId>| {
        if task_us > 0 {
            let t0 = Instant::now();
            while t0.elapsed().as_micros() < task_us as u128 {
                std::hint::spin_loop();
            }
        }
        fired.extend_from_slice(dag.children(v));
    })
}

/// Best-of-`iters` full run; returns (tasks/sec, mean coord busy fraction).
fn measure(dag: &Arc<Dag>, cfg: &ExecConfig, task: &TaskFn, iters: usize) -> (f64, f64) {
    let initial: Vec<NodeId> = dag.sources().collect();
    let mut best = 0.0f64;
    let mut busy = 0.0f64;
    for _ in 0..iters {
        let mut s = LevelBased::new(dag.clone());
        let r = Executor::with_config(cfg.clone())
            .run(&mut s, dag, &initial, task.clone())
            .expect("run completes");
        assert_eq!(r.executed, dag.node_count(), "fire-all must execute every node");
        best = best.max(r.executed as f64 / r.wall_seconds.max(1e-9));
        busy += r.coord_busy_fraction;
    }
    (best, busy / iters as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 2 } else { 4 };
    let mut results = ResultsWriter::new("exec_throughput", 0);
    // Real threads, not simulated processors: the headline sections run 8
    // workers (per-row sweeps record their own counts).
    results.set_workers(8);

    // ---- Section 1: batched pipeline vs legacy per-task dispatch (0µs tasks, 8 workers). ----
    let (layers, width) = if smoke { (40, 50) } else { (50, 400) };
    let ab_dag = dag(layers, width, 7);
    let n = ab_dag.node_count();
    println!("exec_throughput: A/B dispatch on {n} zero-work tasks, 8 workers\n");
    let task = spin_fire_all(&ab_dag, 0);
    let mut t = Table::new(&["pipeline", "tasks/sec", "coord busy"]);
    let mut rates = Vec::new();
    for (label, per_task) in [("per_task (legacy)", true), ("batched", false)] {
        let mut cfg = ExecConfig::new(8);
        cfg.per_task = per_task;
        let (rate, busy) = measure(&ab_dag, &cfg, &task, iters);
        t.row(vec![
            label.to_string(),
            format!("{rate:.0}"),
            format!("{:.1}%", busy * 100.0),
        ]);
        results.push_row(obj([
            ("workload", "ab_dispatch".into()),
            ("pipeline", label.into()),
            ("nodes", n.into()),
            ("workers", 8u64.into()),
            ("task_us", 0u64.into()),
            ("tasks_per_sec", rate.into()),
            ("coord_busy_fraction", busy.into()),
        ]));
        rates.push(rate);
    }
    let speedup = rates[1] / rates[0].max(1e-9);
    println!("{}", t.render());
    println!("batched vs per-task speedup: {speedup:.2}x\n");
    results.push_row(obj([
        ("workload", "ab_dispatch".into()),
        ("phase", "speedup".into()),
        ("batched_speedup", speedup.into()),
    ]));
    assert!(
        speedup >= 2.0,
        "batched pipeline must be >= 2x the per-task baseline on 0us tasks (got {speedup:.2}x)"
    );

    // ---- Section 2: task granularity × worker count (batched). ----
    let durations: &[u64] = if smoke { &[0, 10] } else { &[0, 10, 100] };
    let worker_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let (glayers, gwidth) = if smoke { (20, 40) } else { (30, 120) };
    let g_dag = dag(glayers, gwidth, 11);
    println!(
        "granularity sweep: {} tasks, durations {durations:?} us, workers {worker_counts:?}\n",
        g_dag.node_count()
    );
    let mut t = Table::new(&["task_us", "workers", "tasks/sec", "coord busy"]);
    for &task_us in durations {
        let task = spin_fire_all(&g_dag, task_us);
        for &w in worker_counts {
            let (rate, busy) = measure(&g_dag, &ExecConfig::new(w), &task, iters.min(2));
            t.row(vec![
                task_us.to_string(),
                w.to_string(),
                format!("{rate:.0}"),
                format!("{:.1}%", busy * 100.0),
            ]);
            results.push_row(obj([
                ("workload", "granularity".into()),
                ("nodes", g_dag.node_count().into()),
                ("task_us", task_us.into()),
                ("workers", w.into()),
                ("tasks_per_sec", rate.into()),
                ("coord_busy_fraction", busy.into()),
            ]));
        }
    }
    println!("{}", t.render());
    println!();

    // ---- Section 3: batch-size sweep (0µs tasks, 8 workers). ----
    let batches: &[usize] = if smoke { &[1, 256] } else { &[1, 8, 64, 256] };
    println!("batch-size sweep on {n} zero-work tasks, 8 workers\n");
    let task = spin_fire_all(&ab_dag, 0);
    let mut t = Table::new(&["batch_max", "tasks/sec"]);
    for &b in batches {
        let mut cfg = ExecConfig::new(8);
        cfg.batch_max = b;
        cfg.chunk_max = b.clamp(1, 32);
        let (rate, _) = measure(&ab_dag, &cfg, &task, iters.min(2));
        t.row(vec![b.to_string(), format!("{rate:.0}")]);
        results.push_row(obj([
            ("workload", "batch_size".into()),
            ("nodes", n.into()),
            ("workers", 8u64.into()),
            ("batch_max", b.into()),
            ("tasks_per_sec", rate.into()),
        ]));
    }
    println!("{}", t.render());
    println!();

    // ---- Section 4: V-independence — 10-node updates streamed over DAGs of
    // growing width but fixed depth. Per-update wall time must stay flat as V
    // grows 100x: dispatch cost tracks the active slice, not the graph. ----
    let vs: &[usize] = if smoke { &[10_000, 100_000] } else { &[10_000, 100_000, 1_000_000] };
    let (u, k) = if smoke { (30usize, 10usize) } else { (100usize, 10usize) };
    println!("V-independence: {u} updates x {k} dirty nodes, fixed depth 20\n");
    let mut t = Table::new(&["nodes", "mean update", "executed/update", "updates/sec"]);
    let mut mean_us = Vec::new();
    for &v in vs {
        let layers = 20u32;
        let width = (v as u32) / layers;
        let s_dag = dag(layers, width, 42);
        let mut rng = Lcg(0xfeed_5eed ^ v as u64);
        // Dirty sets drawn from the first layer; the active cascade fires
        // half of each node's out-edges (a partial incremental change).
        let stream: Vec<Vec<NodeId>> = (0..u)
            .map(|_| (0..k).map(|_| NodeId(rng.next(width as u64) as u32)).collect())
            .collect();
        let sd = s_dag.clone();
        // Fire exactly one child per executed node: the cascade is ~k paths
        // of the DAG's depth, so the active slice per update is the same
        // regardless of V — any growth in update cost is dispatch overhead.
        let task: TaskFn = Arc::new(move |v, out: &mut Vec<NodeId>| {
            if let Some(&c) = sd.children(v).first() {
                out.push(c);
            }
        });
        let mut sched = LevelBased::new(s_dag.clone());
        // Warm run (first start() pays one-time allocation), then measure.
        Executor::new(8)
            .run_stream(&mut sched, &s_dag, &stream[..1.min(stream.len())], task.clone())
            .expect("warmup");
        let report = Executor::new(8)
            .run_stream(&mut sched, &s_dag, &stream, task)
            .expect("stream completes");
        let mean = report.update_seconds.iter().sum::<f64>() / report.updates.max(1) as f64;
        mean_us.push(mean * 1e6);
        t.row(vec![
            s_dag.node_count().to_string(),
            fmt_secs(mean),
            format!("{:.1}", report.executed as f64 / report.updates as f64),
            format!("{:.0}", report.updates as f64 / report.wall_seconds),
        ]);
        results.push_row(obj([
            ("workload", "v_independence".into()),
            ("nodes", s_dag.node_count().into()),
            ("updates", u.into()),
            ("update_size", k.into()),
            ("executed", report.executed.into()),
            ("mean_update_seconds", mean.into()),
            ("updates_per_sec", (report.updates as f64 / report.wall_seconds).into()),
            ("coord_busy_fraction", report.coord_busy_fraction.into()),
        ]));
    }
    println!("{}", t.render());
    let spread = mean_us.iter().cloned().fold(0.0f64, f64::max)
        / mean_us.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-9);
    println!(
        "per-update cost spread across {}x node growth: {spread:.2}x\n",
        vs.last().unwrap() / vs.first().unwrap()
    );
    results.push_row(obj([
        ("workload", "v_independence".into()),
        ("phase", "spread".into()),
        ("node_growth", (vs.last().unwrap() / vs.first().unwrap()).into()),
        ("update_cost_spread", spread.into()),
    ]));

    // ---- Section 5: fault-tolerance overhead — the batched pipeline with
    // retry policy, watchdog deadline, and journaling all armed but no
    // faults injected, vs the bare default. ISSUE 4 acceptance: < 5%
    // regression; asserted leniently (CI noise) and recorded exactly. ----
    println!("fault-tolerance overhead on {n} zero-work tasks, 8 workers\n");
    let task = spin_fire_all(&ab_dag, 0);
    let initial: Vec<NodeId> = ab_dag.sources().collect();
    // One update here is a couple of milliseconds — far too short to time
    // on its own — so each measurement aggregates a burst of consecutive
    // updates through one executor (restarts are O(active)), and the
    // bursts are interleaved bare/armed so both see the same thermal and
    // placement conditions. Best-of across bursts, like `measure`.
    let burst = 20usize;
    let measure_ft = |armed: bool| -> f64 {
        let mut cfg = ExecConfig::new(8);
        if armed {
            cfg.retry = RetryPolicy::retries(3);
            cfg.deadline = Some(Duration::from_secs(600));
            cfg.cancel = Some(CancelToken::new());
        }
        let mut s = LevelBased::new(ab_dag.clone());
        let mut journal = UpdateJournal::new();
        let exec = Executor::with_config(cfg);
        let ft_task = incr_runtime::executor::infallible(task.clone());
        let t0 = Instant::now();
        let mut executed = 0usize;
        for _ in 0..burst {
            let journal_arg = armed.then_some(&mut journal);
            let r = exec
                .run_fallible(&mut s, &ab_dag, &initial, ft_task.clone(), journal_arg)
                .expect("fault-free run completes");
            assert_eq!(r.executed, n);
            executed += r.executed;
        }
        executed as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let (mut bare, mut armed) = (0.0f64, 0.0f64);
    for _ in 0..iters * 2 {
        bare = bare.max(measure_ft(false));
        armed = armed.max(measure_ft(true));
    }
    let ratio = armed / bare.max(1e-9);
    let mut t = Table::new(&["config", "tasks/sec"]);
    t.row(vec!["bare batched".into(), format!("{bare:.0}")]);
    t.row(vec!["retry+watchdog+journal".into(), format!("{armed:.0}")]);
    println!("{}", t.render());
    println!("fault-tolerance armed / bare throughput ratio: {ratio:.3}\n");
    results.push_row(obj([
        ("workload", "ft_overhead".into()),
        ("nodes", n.into()),
        ("workers", 8u64.into()),
        ("bare_tasks_per_sec", bare.into()),
        ("armed_tasks_per_sec", armed.into()),
        ("armed_over_bare_ratio", ratio.into()),
    ]));
    // The acceptance target is < 5% regression; allow measurement noise in
    // the gate itself, while the exact ratio lands in the results file.
    assert!(
        ratio >= 0.80,
        "fault-tolerance machinery costs too much with no faults injected (ratio {ratio:.3})"
    );

    results.write_default();
}
