//! Check **Theorem 10 / Corollary 11**: the meta-scheduler `A'` achieves
//! makespan ≤ `2·min(T_A, T_B)` within its memory budget, and falls back
//! to LevelBased when `A` blows the budget.
//!
//! Runs the meta combinator over instances adversarial for each side:
//! the Figure 2 example (bad for LevelBased) and the chain-fan (bad for
//! LogicBlox), plus random layered traces.
//!
//! Writes `results/meta_guarantee.json` (ResultsWriter schema v1)
//! alongside the stdout tables.
//!
//! Usage: `cargo run --release -p incr-bench --bin meta_guarantee`

use incr_bench::{fmt_secs, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_obs::json::obj;
use incr_sched::{CostPrices, LevelBased, LogicBlox};
use incr_sim::{simulate_event, simulate_meta, EventSimConfig, MetaConfig};
use incr_traces::adversarial::{figure2, lbx_cubic};
use incr_traces::{generate, preset};

fn main() {
    let base = EventSimConfig {
        processors: PAPER_PROCESSORS,
        prices: CostPrices::default(),
        audit: false,
        space_budget: None,
    };

    println!("Theorem 10: meta-scheduler A' = (LogicBlox | LevelBased) on P/2 + P/2\n");
    let mut t = Table::new(&[
        "instance",
        "T_A (LBX, P)",
        "T_B (LB, P)",
        "A' makespan",
        "bound 2*min",
        "winner",
        "ok",
    ]);

    let mut results = ResultsWriter::new("meta_guarantee", PAPER_PROCESSORS);

    let mut check = |name: &str, inst: &incr_sched::Instance| {
        let ta = {
            let mut a = LogicBlox::new(inst.dag.clone());
            simulate_event(&mut a, inst, &base).makespan
        };
        let tb = {
            let mut b = LevelBased::new(inst.dag.clone());
            simulate_event(&mut b, inst, &base).makespan
        };
        let mut a = LogicBlox::new(inst.dag.clone());
        let mut b = LevelBased::new(inst.dag.clone());
        let r = simulate_meta(
            &mut a,
            &mut b,
            inst,
            &MetaConfig {
                processors: PAPER_PROCESSORS,
                budget: usize::MAX / 4,
                base: base.clone(),
            },
        );
        let bound = 2.0 * ta.min(tb) + 1e-9;
        let ok = r.makespan <= bound;
        t.row(vec![
            name.to_string(),
            fmt_secs(ta),
            fmt_secs(tb),
            fmt_secs(r.makespan),
            fmt_secs(bound),
            r.winner.to_string(),
            ok.to_string(),
        ]);
        results.push_row(obj([
            ("trace", name.into()),
            ("scheduler", "Meta(LogicBlox|LevelBased)".into()),
            ("t_a_s", ta.into()),
            ("t_b_s", tb.into()),
            ("meta_makespan_s", r.makespan.into()),
            ("bound_s", bound.into()),
            ("winner", r.winner.into()),
            ("within_bound", ok.into()),
        ]));
        assert!(ok, "Theorem 10 bound violated on {name}");
    };

    check("figure2(64)", &figure2(64));
    check("lbx_cubic(2000)", &lbx_cubic(2_000));
    let (t5, _) = generate(&preset(5));
    check("trace #5", &t5);
    let (t3, _) = generate(&preset(3));
    check("trace #3", &t3);
    println!("{}", t.render());

    // Corollary 11: budget violation falls back to LevelBased. The
    // LogicBlox run-state on lbx_cubic holds ~n blockers; a budget below
    // that aborts it.
    println!("Corollary 11: memory-budget fallback\n");
    let inst = lbx_cubic(2_000);
    let mut a = LogicBlox::new(inst.dag.clone());
    let mut b = LevelBased::new(inst.dag.clone());
    let r = simulate_meta(
        &mut a,
        &mut b,
        &inst,
        &MetaConfig {
            processors: PAPER_PROCESSORS,
            budget: 64, // bytes — absurd, guaranteeing abort
            base: base.clone(),
        },
    );
    println!(
        "budget 64 B: A aborted = {}, winner = {}, makespan = {}",
        r.a_aborted,
        r.winner,
        fmt_secs(r.makespan)
    );
    assert!(r.a_aborted && r.winner == "LevelBased");
    println!("fallback behaves as Corollary 11 requires.");

    results.push_row(obj([
        ("trace", "lbx_cubic(2000) @ 64 B budget".into()),
        ("scheduler", "Meta(LogicBlox|LevelBased)".into()),
        ("meta_makespan_s", r.makespan.into()),
        ("winner", r.winner.into()),
        ("a_aborted", r.a_aborted.into()),
    ]));
    results.write_default();
}
