//! Datalog evaluation hot-path benchmark: parallel speedup on an n≈300
//! transitive-closure incremental update, and index-probe-vs-full-scan
//! counters on a multi-bound join, written to `results/datalog_perf.json`
//! (ResultsWriter schema v1) so the perf trajectory is machine-readable.
//!
//! Usage: `cargo run --release -p incr-bench --bin datalog_perf [--smoke]`
//!
//! `--smoke` shrinks the instances for CI (seconds, not minutes).

use incr_bench::{fmt_secs, ResultsWriter, Table};
use incr_datalog::{EvalOptions, FactEdit, IncrementalEngine, IndexMode};
use incr_obs::json::obj;
use incr_obs::Json;
use incr_sched::LevelBased;
use std::time::Instant;

/// Deterministic LCG (same constants as Numerical Recipes) — the graph
/// must be identical across runs and thread counts.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// Ring of `n` nodes (one big SCC, closure = n² paths) plus two random
/// out-edges per node (small diameter, so semi-naive rounds carry large
/// deltas — the shape parallelism needs).
fn tc_graph(n: u64) -> (String, Vec<(String, String)>) {
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n",
    );
    let mut edges = Vec::new();
    for i in 0..n {
        let mut push = |a: u64, b: u64| {
            src.push_str(&format!("edge(v{a}, v{b}).\n"));
            edges.push((format!("v{a}"), format!("v{b}")));
        };
        push(i, (i + 1) % n);
        push(i, rng.next(n));
        push(i, rng.next(n));
    }
    (src, edges)
}

/// The incremental edit: delete `k` spread-out ring edges (heavy DRed —
/// overdeletion cascades through the closure, rederivation probes for
/// surviving alternatives), then re-insert them.
fn edit_set(n: u64, k: u64) -> Vec<(String, String)> {
    (0..k)
        .map(|j| {
            let i = j * (n / k);
            (format!("v{i}"), format!("v{}", (i + 1) % n))
        })
        .collect()
}

struct TcTimings {
    materialize: f64,
    delete: f64,
    reinsert: f64,
    path_tuples: usize,
}

fn run_tc(src: &str, edits: &[(String, String)], opts: EvalOptions) -> TcTimings {
    let t0 = Instant::now();
    let mut engine = IncrementalEngine::with_options(src, opts).expect("valid program");
    let materialize = t0.elapsed().as_secs_f64();

    let removes: Vec<FactEdit> = edits
        .iter()
        .map(|(a, b)| FactEdit::remove("edge", &[a, b]))
        .collect();
    let mut sched = LevelBased::new(engine.dag().clone());
    let t0 = Instant::now();
    engine.update(&mut sched, &removes).expect("delete applies");
    let delete = t0.elapsed().as_secs_f64();

    let adds: Vec<FactEdit> = edits
        .iter()
        .map(|(a, b)| FactEdit::add("edge", &[a, b]))
        .collect();
    let mut sched = LevelBased::new(engine.dag().clone());
    let t0 = Instant::now();
    engine.update(&mut sched, &adds).expect("insert applies");
    let reinsert = t0.elapsed().as_secs_f64();

    TcTimings {
        materialize,
        delete,
        reinsert,
        path_tuples: engine.count("path"),
    }
}

/// Multi-bound join: `link`'s first column is unbound when it is reached,
/// so the legacy first-column heuristic degrades to a full scan per outer
/// row while the auto planner probes the `[1, 2]` index.
fn multi_bound_src(rows: u64) -> String {
    let mut rng = Lcg(0x51a7b2c93d4e5f60);
    let mut src = String::from("joined(A, D) :- fact3(A, B, C), link(D, B, C).\n");
    // Join keys from a fixed 50x50 domain: ~rows²/2500 result tuples, so
    // probes hit real buckets instead of missing everywhere.
    let dom = 50;
    for i in 0..rows {
        let b = rng.next(dom);
        let c = rng.next(dom);
        src.push_str(&format!("fact3(a{i}, b{b}, c{c}).\n"));
        let b2 = rng.next(dom);
        let c2 = rng.next(dom);
        src.push_str(&format!("link(d{i}, b{b2}, c{c2}).\n"));
    }
    src
}

fn counter(snap: &Json, name: &str) -> u64 {
    snap.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, k, join_rows) = if smoke { (80, 8, 500) } else { (300, 10, 2000) };
    let par_threads = std::thread::available_parallelism().map_or(4, |t| t.get()).max(4);
    let mut results = ResultsWriter::new("datalog_perf", 0);
    results.set_workers(par_threads);

    // ---- Workload 1: transitive-closure incremental update, 1 vs N threads. ----
    println!("datalog_perf: transitive closure n={n}, {k} edges deleted+reinserted\n");
    let (src, _edges) = tc_graph(n);
    let edits = edit_set(n, k);
    let mut t = Table::new(&["threads", "materialize", "delete", "reinsert", "path"]);
    let mut timings = Vec::new();
    for threads in [1, par_threads] {
        incr_obs::registry().reset();
        let tm = run_tc(&src, &edits, EvalOptions::with_threads(threads));
        t.row(vec![
            threads.to_string(),
            fmt_secs(tm.materialize),
            fmt_secs(tm.delete),
            fmt_secs(tm.reinsert),
            tm.path_tuples.to_string(),
        ]);
        results.push_row(obj([
            ("workload", "tc_incremental".into()),
            ("n", n.into()),
            ("deleted_edges", k.into()),
            ("threads", threads.into()),
            ("materialize_seconds", tm.materialize.into()),
            ("delete_seconds", tm.delete.into()),
            ("reinsert_seconds", tm.reinsert.into()),
            ("path_tuples", tm.path_tuples.into()),
        ]));
        timings.push(tm);
    }
    assert_eq!(
        timings[0].path_tuples, timings[1].path_tuples,
        "thread count must not change the materialization"
    );
    let update_speedup = (timings[0].delete + timings[0].reinsert)
        / (timings[1].delete + timings[1].reinsert).max(1e-9);
    let materialize_speedup = timings[0].materialize / timings[1].materialize.max(1e-9);
    println!("{}", t.render());
    println!(
        "incremental-update speedup {par_threads} threads vs 1: {update_speedup:.2}x \
         (materialize {materialize_speedup:.2}x)\n"
    );
    results.push_row(obj([
        ("workload", "tc_incremental".into()),
        ("phase", "speedup".into()),
        ("threads", par_threads.into()),
        ("update_speedup", update_speedup.into()),
        ("materialize_speedup", materialize_speedup.into()),
    ]));

    // ---- Workload 2: multi-bound join, legacy first-column vs auto planner. ----
    println!("multi-bound join: {join_rows} rows per relation, index plans vs legacy\n");
    let join_src = multi_bound_src(join_rows);
    let mut t = Table::new(&["index_mode", "wall", "index_hits", "misses", "full_scans", "joined"]);
    let mut scans_by_mode = Vec::new();
    for (label, mode) in [("first_column", IndexMode::FirstColumn), ("auto", IndexMode::Auto)] {
        incr_obs::registry().reset();
        let mut opts = EvalOptions::sequential();
        opts.index_mode = mode;
        let t0 = Instant::now();
        let engine = IncrementalEngine::with_options(&join_src, opts).expect("valid program");
        let wall = t0.elapsed().as_secs_f64();
        let joined = engine.count("joined");
        let snap = incr_obs::registry().snapshot();
        let (hits, misses, scans, builds) = (
            counter(&snap, "datalog.index.hit"),
            counter(&snap, "datalog.index.miss"),
            counter(&snap, "datalog.scan.full"),
            counter(&snap, "datalog.index.build"),
        );
        t.row(vec![
            label.to_string(),
            fmt_secs(wall),
            hits.to_string(),
            misses.to_string(),
            scans.to_string(),
            joined.to_string(),
        ]);
        results.push_row(obj([
            ("workload", "multi_bound_join".into()),
            ("rows", join_rows.into()),
            ("index_mode", label.into()),
            ("wall_seconds", wall.into()),
            ("index_hits", hits.into()),
            ("index_misses", misses.into()),
            ("full_scans", scans.into()),
            ("index_builds", builds.into()),
            ("joined_tuples", joined.into()),
        ]));
        scans_by_mode.push((hits, scans));
    }
    println!("{}", t.render());
    let (auto_hits, auto_scans) = scans_by_mode[1];
    let legacy_scans = scans_by_mode[0].1;
    assert!(auto_hits > 0, "auto mode must hit indices");
    assert!(
        auto_scans < legacy_scans,
        "index probes must replace full scans (auto {auto_scans} vs legacy {legacy_scans})"
    );

    results.write_default();
}
