//! Render schedules as Gantt SVGs: the Figure 2 instance under
//! LevelBased (lanes drain at every level barrier), LBL(5), and the
//! exact-readiness oracle (the long tasks overlap) — the visual version
//! of Theorem 9.
//!
//! Usage: `cargo run --release -p incr-bench --bin schedviz -- [out_dir] [L]`

use incr_sched::{CostPrices, SchedulerKind};
use incr_sim::record_timeline;
use incr_traces::adversarial::figure2;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let l: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    std::fs::create_dir_all(&dir).expect("create output dir");
    let inst = figure2(l);
    let p = l as usize;
    for (kind, tag) in [
        (SchedulerKind::LevelBased, "levelbased"),
        (SchedulerKind::Lookahead(5), "lbl5"),
        (SchedulerKind::ExactGreedy, "exact"),
    ] {
        let mut s = kind.build(inst.dag.clone());
        let t = record_timeline(s.as_mut(), &inst, p, &CostPrices::free());
        let svg_path = format!("{dir}/figure2_{tag}.svg");
        let csv_path = format!("{dir}/figure2_{tag}.csv");
        std::fs::write(&svg_path, t.to_svg(&format!("{} on figure2({l})", kind.label())))
            .expect("write svg");
        std::fs::write(&csv_path, t.to_csv()).expect("write csv");
        println!(
            "{svg_path}: makespan {:.0} on {} lanes ({} spans)",
            t.makespan,
            t.lanes,
            t.spans.len()
        );
    }
    println!("open the SVGs side by side: the barrier idling is the white space.");
}
