//! Stream fast-path benchmark: updates/s and p50/p95/p99 per-update
//! sojourn latency for a closed-loop stream of small updates, across
//! update sizes {1, 10, 100} and admission policies {serial, pipelined,
//! coalesced}. Written to `results/stream_latency.json` (ResultsWriter
//! schema v1).
//!
//! The regime under test is the one the paper does not measure: per-update
//! *fixed* cost (scheduler `start`, pipeline wavefront round-trips)
//! dominating when updates are tiny. Coalescing amortizes one cascade
//! over `max_coalesce` queued updates; pipelining hides admission work
//! under the previous update's tail drain.
//!
//! Usage: `cargo run --release -p incr-bench --bin stream_latency [--smoke]`
//!
//! `--smoke` shrinks the larger update sizes for CI but keeps the
//! acceptance-relevant 1-tuple stream at >= 1000 updates.

use incr_bench::{fmt_secs, ResultsWriter, Table};
use incr_dag::{random, Dag, NodeId};
use incr_obs::json::obj;
use incr_runtime::{infallible, Executor, StreamPolicy, StreamReport, StreamUpdate, TaskFn};
use incr_sched::LevelBased;
use std::sync::Arc;

const WORKERS: usize = 4;
const MAX_COALESCE: usize = 32;

/// Wide-and-shallow layered DAG: every 1-node update cascades a path of
/// roughly `layers` tasks, so per-update useful work is tiny and fixed
/// cost is everything.
fn stream_dag(smoke: bool) -> Arc<Dag> {
    let (layers, width) = if smoke { (6, 400) } else { (8, 1500) };
    Arc::new(random::layered(random::LayeredParams {
        layers,
        width,
        max_in: 4,
        back_span: 2,
        seed: 23,
    }))
}

/// Fire exactly one child: the cascade per dirty source is one root-leaf
/// path, the smallest honest increment.
fn fire_first_child(dag: &Arc<Dag>) -> TaskFn {
    let dag = dag.clone();
    Arc::new(move |v, fired: &mut Vec<NodeId>| {
        if let Some(&c) = dag.children(v).first() {
            fired.push(c);
        }
    })
}

/// `count` closed-loop updates of `size` distinct first-layer nodes each.
fn make_stream(dag: &Arc<Dag>, count: usize, size: usize) -> Vec<StreamUpdate> {
    let width = dag
        .sources()
        .count()
        .max(size);
    (0..count)
        .map(|i| {
            StreamUpdate::now(
                (0..size)
                    .map(|j| NodeId(((i * size + j) % width) as u32))
                    .collect(),
            )
        })
        .collect()
}

/// Exact percentile over the report's per-update sojourn latencies.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct PolicyRun {
    label: &'static str,
    report: StreamReport,
    p50: f64,
    p95: f64,
    p99: f64,
}

fn run_policy(
    label: &'static str,
    dag: &Arc<Dag>,
    stream: &[StreamUpdate],
    policy: &StreamPolicy,
) -> PolicyRun {
    let task = fire_first_child(dag);
    let exec = Executor::new(WORKERS);
    let mut sched = LevelBased::new(dag.clone());
    // Warm start: the first `start()` pays one-time allocation, and the
    // pool/channels spin up once — admission is what's being measured.
    exec.run_stream_with(
        &mut sched,
        dag,
        &stream[..stream.len().min(4)],
        infallible(task.clone()),
        policy,
        None,
    )
    .expect("warmup stream completes");
    let report = exec
        .run_stream_with(&mut sched, dag, stream, infallible(task), policy, None)
        .expect("stream completes");
    assert_eq!(report.updates, stream.len());
    let mut lat = report.latency_seconds.clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    PolicyRun {
        label,
        p50: percentile(&lat, 0.50),
        p95: percentile(&lat, 0.95),
        p99: percentile(&lat, 0.99),
        report,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut results = ResultsWriter::new("stream_latency", 0);
    results.set_workers(WORKERS);
    let dag = stream_dag(smoke);
    println!(
        "stream_latency: closed-loop update streams over {} nodes, {WORKERS} workers, \
         max_coalesce {MAX_COALESCE}\n",
        dag.node_count()
    );

    let sizes: &[(usize, usize)] = if smoke {
        &[(1, 1200), (10, 120), (100, 40)]
    } else {
        &[(1, 2000), (10, 400), (100, 120)]
    };
    let policies: &[(&'static str, StreamPolicy)] = &[
        ("serial", StreamPolicy::serial()),
        ("pipelined", StreamPolicy::pipelined()),
        ("coalesced", StreamPolicy::coalesced(MAX_COALESCE)),
    ];

    let mut one_tuple_rates: Vec<(&str, f64)> = Vec::new();
    for &(size, count) in sizes {
        let stream = make_stream(&dag, count, size);
        println!("update size {size} x {count} updates:\n");
        let mut t = Table::new(&[
            "policy", "updates/s", "batches", "p50", "p95", "p99", "mean proc",
        ]);
        for (label, policy) in policies {
            let run = run_policy(label, &dag, &stream, policy);
            let r = &run.report;
            let rate = r.updates as f64 / r.wall_seconds.max(1e-9);
            let mean_proc =
                r.update_seconds.iter().sum::<f64>() / r.updates.max(1) as f64;
            t.row(vec![
                run.label.to_string(),
                format!("{rate:.0}"),
                r.batches.to_string(),
                fmt_secs(run.p50),
                fmt_secs(run.p95),
                fmt_secs(run.p99),
                fmt_secs(mean_proc),
            ]);
            results.push_row(obj([
                ("workload", "stream".into()),
                ("policy", run.label.into()),
                ("update_size", size.into()),
                ("updates", r.updates.into()),
                ("batches", r.batches.into()),
                ("coalesced_updates", r.coalesced.into()),
                ("executed", r.executed.into()),
                ("updates_per_sec", rate.into()),
                ("p50_latency_s", run.p50.into()),
                ("p95_latency_s", run.p95.into()),
                ("p99_latency_s", run.p99.into()),
                ("mean_update_seconds", mean_proc.into()),
                ("wall_seconds", r.wall_seconds.into()),
                ("coord_busy_fraction", r.coord_busy_fraction.into()),
            ]));
            if size == 1 {
                one_tuple_rates.push((run.label, rate));
            }
        }
        println!("{}", t.render());
        println!();
    }

    // Headline: the stream fast path vs the serial baseline on the
    // 1-tuple stream — the regime where fixed cost dominates.
    let rate_of = |label: &str| {
        one_tuple_rates
            .iter()
            .find(|(l, _)| *l == label)
            .map(|&(_, r)| r)
            .expect("policy measured")
    };
    let serial = rate_of("serial");
    let pipelined = rate_of("pipelined");
    let coalesced = rate_of("coalesced");
    let speedup = coalesced / serial.max(1e-9);
    println!("1-tuple stream updates/s: serial {serial:.0}, pipelined {pipelined:.0}, coalesced {coalesced:.0}");
    println!("coalesced+pipelined vs serial: {speedup:.2}x\n");
    results.push_row(obj([
        ("workload", "stream".into()),
        ("phase", "speedup".into()),
        ("update_size", 1u64.into()),
        ("serial_updates_per_sec", serial.into()),
        ("pipelined_updates_per_sec", pipelined.into()),
        ("coalesced_updates_per_sec", coalesced.into()),
        ("coalesced_speedup", speedup.into()),
    ]));
    // CI gate (smoke): the fast path must never lose to serial. Full
    // runs hold the ISSUE 5 acceptance bar of >= 3x.
    let bar = if smoke { 1.0 } else { 3.0 };
    assert!(
        speedup >= bar,
        "coalesced stream must be >= {bar}x serial on the 1-tuple stream (got {speedup:.2}x)"
    );

    results.write_default();
}
