//! Regenerate **Figure 2 / Theorem 9**: the tight example on which
//! LevelBased is `Θ(ML)` while the optimal schedule is `Θ(M + L)`.
//!
//! The instance: unit tasks `j_1 … j_L` in a chain; each `j_{i-1}` also
//! releases a sequential task `k_i` with work = span = `L - i + 1`. A
//! scheduler with exact readiness starts each `k_i` the moment its parent
//! finishes and overlaps them all (makespan `Θ(L + M)`, `M = L - 1`),
//! while LevelBased refuses to advance past level `i` until `k_i`
//! completes (makespan `Θ(L²)`). LBL(k) repairs the barrier.
//!
//! The binary sweeps `L`, prints the measured makespans and the fitted
//! growth, and checks the bounds of Lemma 7 on the same instances.
//!
//! Usage: `cargo run --release -p incr-bench --bin figure2 [max_L]`

use incr_bench::{ResultsWriter, Table};
use incr_obs::json::obj;
use incr_sched::SchedulerKind;
use incr_sim::{simulate_step, StepSimConfig};
use incr_traces::adversarial::figure2;

fn main() {
    let max_l: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160);
    let ls: Vec<u32> = [10u32, 20, 40, 80, max_l]
        .into_iter()
        .filter(|&l| l >= 10)
        .collect();

    println!("Figure 2 / Theorem 9: tight example sweep (unit-step simulator)\n");
    let mut t = Table::new(&[
        "L",
        "P",
        "LevelBased",
        "LBL(5)",
        "ExactGreedy",
        "LB/Exact",
        "Θ(L²) pred",
        "Θ(L) pred",
    ]);
    let mut ratios = Vec::new();
    let mut results = ResultsWriter::new("figure2", 0);
    for &l in &ls {
        let inst = figure2(l);
        // The construction assumes M <= P (Theorem 9): every k_i can have
        // its own processor under the optimal schedule.
        let p = l as usize;
        let cfg = StepSimConfig {
            processors: p,
            audit: l <= 40,
            batch_pops: false,
        };
        let run = |kind: SchedulerKind| {
            let mut s = kind.build(inst.dag.clone());
            simulate_step(s.as_mut(), &inst, &cfg).makespan
        };
        let lb = run(SchedulerKind::LevelBased);
        let lbl = run(SchedulerKind::Lookahead(5));
        let exact = run(SchedulerKind::ExactGreedy);
        let ratio = lb as f64 / exact as f64;
        ratios.push((l, ratio));
        for (sched, makespan) in [
            ("LevelBased", lb),
            ("LBL(k=5)", lbl),
            ("ExactGreedy", exact),
        ] {
            results.push_row(obj([
                ("trace", format!("figure2({l})").into()),
                ("scheduler", sched.into()),
                ("processors", p.into()),
                ("makespan_steps", makespan.into()),
                ("lb_over_exact", ratio.into()),
            ]));
        }
        t.row(vec![
            l.to_string(),
            p.to_string(),
            lb.to_string(),
            lbl.to_string(),
            exact.to_string(),
            format!("{ratio:.2}"),
            // Analytic forms: LB executes levels serially: sum_{i=2..L}
            // (L-i+1) + L = L(L-1)/2 + L; exact = 2L - 1ish.
            (l as u64 * (l as u64 - 1) / 2 + l as u64).to_string(),
            (2 * l as u64).to_string(),
        ]);
    }
    println!("{}", t.render());

    // The LB/Exact ratio must grow ~linearly in L (Theorem 9).
    let (l0, r0) = ratios[0];
    let (l1, r1) = *ratios.last().unwrap();
    let growth = (r1 / r0) / (l1 as f64 / l0 as f64);
    println!(
        "ratio growth vs linear-in-L: {:.2} (1.0 = exactly linear; Theorem 9 predicts Θ(L))",
        growth
    );
    assert!(
        r1 > 4.0 * r0,
        "LevelBased/optimal ratio must grow with L (Theorem 9)"
    );

    // Lemma 7 sanity on the same instances: makespan <= w/P + sum_i S_i.
    println!("\nLemma 7 bound check (LevelBased <= w/P + sum of level spans):");
    for &l in &ls {
        let inst = figure2(l);
        let p = l as usize;
        let cfg = StepSimConfig {
            processors: p,
            audit: false,
            batch_pops: false,
        };
        let mut s = SchedulerKind::LevelBased.build(inst.dag.clone());
        let m = simulate_step(s.as_mut(), &inst, &cfg).makespan;
        let w = inst.active_work_units();
        let sum_spans: u64 = inst.level_spans().iter().sum();
        let bound = w.div_ceil(p as u64) + sum_spans;
        println!("  L={l:>4}: makespan {m:>7}  bound {bound:>7}  ok={}", m <= bound);
        assert!(m <= bound, "Lemma 7 violated at L={l}");
    }
    results.write_default();
}
