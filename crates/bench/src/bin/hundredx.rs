//! Regenerate the **§VI anecdote**: "we even managed to design a
//! synthetic instance, on which the hybrid scheduler was performing 100×
//! faster than the LogicBlox scheduler."
//!
//! The instance ([`incr_traces::adversarial::hundred_x`]) is shallow and
//! wide with a huge simultaneous active set of microsecond tasks: the
//! LogicBlox active-queue scan is `Θ(n²)` in simulated scheduler time
//! while the hybrid's LevelBased side feeds processors in `O(1)` per
//! task, so total execution time separates by orders of magnitude.
//!
//! Usage: `cargo run --release -p incr-bench --bin hundredx [n]`

use incr_bench::{fmt_secs, measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_sched::SchedulerKind;
use incr_sim::EventSimConfig;
use incr_traces::adversarial::hundred_x;

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let inst = hundred_x(n);
    let cfg = EventSimConfig {
        processors: PAPER_PROCESSORS,
        ..Default::default()
    };

    println!("the \"100x\" synthetic instance: n = {n} independent point updates\n");
    let mut t = Table::new(&["scheduler", "makespan", "overhead", "speedup vs LogicBlox"]);
    let mut results = ResultsWriter::new("hundredx", PAPER_PROCESSORS);
    let lbx = measure(SchedulerKind::LogicBlox, &inst, &cfg);
    for kind in [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::Hybrid,
        SchedulerKind::HybridBackground(1),
    ] {
        let m = measure(kind, &inst, &cfg);
        results.push_measurement(&format!("hundred_x({n})"), &m);
        t.row(vec![
            m.label.clone(),
            fmt_secs(m.result.makespan),
            fmt_secs(m.result.sched_overhead),
            format!("{:.1}x", lbx.result.makespan / m.result.makespan),
        ]);
    }
    println!("{}", t.render());

    let hy = measure(SchedulerKind::Hybrid, &inst, &cfg);
    let speedup = lbx.result.makespan / hy.result.makespan;
    println!("hybrid speedup over LogicBlox: {speedup:.0}x");
    results.write_default();
    assert!(
        speedup >= 100.0,
        "the anecdote instance should show >= 100x (got {speedup:.0}x); raise n"
    );
}
