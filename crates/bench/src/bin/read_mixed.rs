//! Read/write mixed-load benchmark for the MVCC snapshot path: reader
//! threads run point + scan queries against pinned snapshots while the
//! engine drives a churny 1-tuple update stream, and the headline is
//! that the writer keeps (nearly) its exclusive-access update rate.
//! Written to `results/read_mixed.json` (ResultsWriter schema v1).
//!
//! Three phases over the same transitive-closure program:
//!
//! 1. `writer_only` — the update stream with no readers: the baseline
//!    updates/s the MVCC layer must not tax.
//! 2. `mixed` — the same stream with `READERS` threads continuously
//!    opening snapshots and querying them: reports reader throughput,
//!    read p50/p95/p99, and the writer's retained rate.
//! 3. `read_only` — readers against a quiescent engine: the ceiling on
//!    snapshot query throughput.
//!
//! Usage: `cargo run --release -p incr-bench --bin read_mixed [--smoke]`
//!
//! Readers run closed-loop with a small think time ([`READ_PACE`])
//! between queries — real query traffic, not a busy-spin. An unpaced
//! reader pool is a pure CPU-contention test: on a single-core host it
//! steals ~4/5 of the writer's cycles regardless of lock design, which
//! measures the scheduler, not the MVCC layer.
//!
//! `--smoke` shrinks the graph/stream for CI and gates on reader
//! *progress during cascades* plus a loose writer-retention floor
//! (small hosts pay real context-switch overhead); full runs hold the
//! acceptance bar (writer within 10% of its exclusive rate).

use incr_bench::{fmt_secs, ResultsWriter, Table};
use incr_datalog::mvcc::ReaderHandle;
use incr_datalog::{FactEdit, IncrementalEngine};
use incr_obs::json::obj;
use incr_sched::LevelBased;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const READERS: usize = 4;

/// Per-reader think time between queries: each reader sustains up to
/// ~500 reads/s, ~2k/s across the pool — heavy query traffic, but not
/// a busy-spin that turns the benchmark into a core-count measurement.
const READ_PACE: std::time::Duration = std::time::Duration::from_millis(2);

/// One full `path(n0, ?)` scan per this many reads; the rest are point
/// lookups — the usual shape of serving traffic (hot keys + occasional
/// range reads).
const SCAN_EVERY: usize = 8;

const RULES: &str = "path(X, Y) :- edge(X, Y).\n\
                     path(X, Z) :- path(X, Y), edge(Y, Z).\n";

/// A chain `n0 -> n1 -> ... -> n{n-1}`: every mid-chain edge removal
/// tears down a quadratic slab of `path` facts and the re-insertion
/// rederives it — the churniest 1-tuple edit this program has.
fn chain_engine(n: usize) -> IncrementalEngine {
    let mut src = String::from(RULES);
    for i in 0..n - 1 {
        src.push_str(&format!("edge(n{}, n{}).\n", i, i + 1));
    }
    IncrementalEngine::new(&src).expect("valid program")
}

/// Drive `updates` single-edge edits (alternating remove / re-add of a
/// rotating mid-chain edge) and return the wall seconds spent.
fn run_writer(e: &mut IncrementalEngine, n: usize, updates: usize) -> f64 {
    let t0 = Instant::now();
    for i in 0..updates {
        let m = 1 + (i / 2) % (n - 2);
        let args = [format!("n{m}"), format!("n{}", m + 1)];
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        let edit = if i % 2 == 0 {
            FactEdit::remove("edge", &args)
        } else {
            FactEdit::add("edge", &args)
        };
        let mut s = LevelBased::new(e.dag().clone());
        e.update(&mut s, &[edit]).expect("valid edit");
    }
    t0.elapsed().as_secs_f64()
}

/// One reader iteration: pin a snapshot, answer a point lookup, and —
/// every [`SCAN_EVERY`]-th call — a full scan too. Returns the latency
/// in ns. On scan iterations the snapshot's view is checked for
/// internal consistency: `path(n0, ?)` reaches the chain's tail exactly
/// when the point lookup says so.
fn one_read(reader: &ReaderHandle, tail: &str, n: usize, seq: usize) -> u64 {
    let t0 = Instant::now();
    let snap = reader.snapshot();
    let point = snap.has("path", &["n0", tail]);
    if seq.is_multiple_of(SCAN_EVERY) {
        let scan = snap.query("path(n0, ?)").expect("valid pattern");
        assert_eq!(
            point,
            scan.len() == n - 1,
            "snapshot point lookup disagrees with its own scan"
        );
    }
    t0.elapsed().as_nanos() as u64
}

struct ReadStats {
    reads: usize,
    secs: f64,
    p50: u64,
    p95: u64,
    p99: u64,
}

impl ReadStats {
    fn from_latencies(mut lat: Vec<u64>, secs: f64) -> ReadStats {
        lat.sort_unstable();
        ReadStats {
            reads: lat.len(),
            secs,
            p50: percentile(&lat, 0.50),
            p95: percentile(&lat, 0.95),
            p99: percentile(&lat, 0.99),
        }
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates[rates.len() / 2]
}

/// Run `READERS` snapshot-query threads until `body` (the writer side)
/// finishes; every reader must make progress while the writer runs.
/// Returns the raw read latencies and the wall seconds covered.
fn with_readers(reader: &ReaderHandle, n: usize, body: impl FnOnce()) -> (Vec<u64>, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..READERS)
        .map(|_| {
            let reader = reader.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let tail = format!("n{}", n - 1);
                let mut lat = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    lat.push(one_read(&reader, &tail, n, lat.len()));
                    std::thread::sleep(READ_PACE);
                }
                lat
            })
        })
        .collect();
    body();
    stop.store(true, Ordering::Relaxed);
    let secs = t0.elapsed().as_secs_f64();
    let mut lat: Vec<u64> = Vec::new();
    for h in handles {
        let per_thread = h.join().expect("reader thread");
        assert!(
            !per_thread.is_empty(),
            "a reader made zero reads while the writer ran"
        );
        lat.extend(per_thread);
    }
    (lat, secs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, updates) = if smoke { (24, 120) } else { (48, 600) };
    let mut results = ResultsWriter::new("read_mixed", 0);
    results.set_workers(READERS);
    println!(
        "read_mixed: {READERS} snapshot readers vs a churny 1-tuple stream, \
         chain of {n} nodes, {updates} updates\n"
    );

    let mut e = chain_engine(n);
    let reader = e.reader();
    // Warm up caches, indices and the first cascades off the clock.
    run_writer(&mut e, n, 8);

    // Interleaved segments, medians compared: a noise spike (this is a
    // wall-clock benchmark on a possibly-shared host) lands on one
    // segment, not on a whole phase, so one bad scheduling quantum
    // cannot fake — or mask — a writer regression.
    const SEGMENTS: usize = 3;
    let per_seg = updates / SEGMENTS;
    let mut base_rates = Vec::new();
    let mut mixed_rates = Vec::new();
    let mut mixed_lat: Vec<u64> = Vec::new();
    let mut mixed_read_secs = 0.0;
    for _ in 0..SEGMENTS {
        let secs = run_writer(&mut e, n, per_seg);
        base_rates.push(per_seg as f64 / secs.max(1e-9));
        let mut secs = 0.0;
        let (lat, read_secs) = with_readers(&reader, n, || {
            secs = run_writer(&mut e, n, per_seg);
        });
        mixed_rates.push(per_seg as f64 / secs.max(1e-9));
        mixed_lat.extend(lat);
        mixed_read_secs += read_secs;
    }
    let base_rate = median(&mut base_rates);
    let mixed_rate = median(&mut mixed_rates);
    let retained = mixed_rate / base_rate.max(1e-9);
    let mixed = ReadStats::from_latencies(mixed_lat, mixed_read_secs);

    // Readers against the idle engine — the throughput ceiling.
    let quiet = {
        let (lat, secs) = with_readers(&reader, n, || {
            std::thread::sleep(std::time::Duration::from_millis(if smoke {
                150
            } else {
                500
            }));
        });
        ReadStats::from_latencies(lat, secs)
    };

    let mut t = Table::new(&["phase", "updates/s", "reads/s", "read p50", "p95", "p99"]);
    let row = |label: &str, rate: Option<f64>, s: Option<&ReadStats>| {
        vec![
            label.to_string(),
            rate.map_or_else(|| "-".into(), |r| format!("{r:.0}")),
            s.map_or_else(
                || "-".into(),
                |s| format!("{:.0}", s.reads as f64 / s.secs.max(1e-9)),
            ),
            s.map_or_else(|| "-".into(), |s| fmt_secs(s.p50 as f64 / 1e9)),
            s.map_or_else(|| "-".into(), |s| fmt_secs(s.p95 as f64 / 1e9)),
            s.map_or_else(|| "-".into(), |s| fmt_secs(s.p99 as f64 / 1e9)),
        ]
    };
    t.row(row("writer_only", Some(base_rate), None));
    t.row(row("mixed", Some(mixed_rate), Some(&mixed)));
    t.row(row("read_only", None, Some(&quiet)));
    println!("{}", t.render());
    println!(
        "\nwriter retained {:.1}% of its exclusive rate with {READERS} readers \
         ({} snapshot reads during the stream)",
        retained * 100.0,
        mixed.reads
    );

    for (phase, rate, stats) in [
        ("writer_only", Some(base_rate), None),
        ("mixed", Some(mixed_rate), Some(&mixed)),
        ("read_only", None, Some(&quiet)),
    ] {
        results.push_row(obj([
            ("workload", "read_mixed".into()),
            ("phase", phase.into()),
            ("chain_nodes", (n as u64).into()),
            ("updates", (updates as u64).into()),
            ("readers", (READERS as u64).into()),
            ("writer_updates_per_sec", rate.unwrap_or(0.0).into()),
            (
                "reads_per_sec",
                stats
                    .map(|s| s.reads as f64 / s.secs.max(1e-9))
                    .unwrap_or(0.0)
                    .into(),
            ),
            ("reads", stats.map(|s| s.reads as u64).unwrap_or(0).into()),
            ("read_p50_ns", stats.map(|s| s.p50).unwrap_or(0).into()),
            ("read_p95_ns", stats.map(|s| s.p95).unwrap_or(0).into()),
            ("read_p99_ns", stats.map(|s| s.p99).unwrap_or(0).into()),
            ("writer_retained", retained.into()),
        ]));
    }

    // CI gate: readers must have progressed during active cascades
    // (asserted per-thread in `with_readers`), and the writer must keep
    // its rate — within 10% on full runs, a loose floor under smoke's
    // noisy tiny timings.
    let bar = if smoke { 0.5 } else { 0.9 };
    assert!(
        retained >= bar,
        "writer must retain >= {bar}x of its exclusive update rate under \
         {READERS} readers (got {retained:.2}x)"
    );

    results.write_default();
}
