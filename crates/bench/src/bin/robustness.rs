//! Seed-robustness study: the paper-shape conclusions must not depend on
//! the particular random seeds baked into the trace presets. Regenerate
//! key traces under several seeds and check that every qualitative
//! ordering survives.
//!
//! Checks per seed:
//! * Table II shape — LogicBlox ≤ LBL(15) ≤ LevelBased on trace #3's
//!   structure (deep, many components);
//! * Table III shape — on trace #6's structure (shallow-wide):
//!   overhead(LB) ≪ overhead(Hybrid) < overhead(LogicBlox) and
//!   makespan(LB) ≪ makespan(LogicBlox);
//! * Theorem 10 bound on both structures.
//!
//! Writes `results/robustness.json` (ResultsWriter schema v1) alongside
//! the stdout tables.
//!
//! Usage: `cargo run --release -p incr-bench --bin robustness [n_seeds]`

use incr_bench::{measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_obs::json::obj;
use incr_sched::SchedulerKind;
use incr_sim::EventSimConfig;
use incr_traces::{generate, preset};

fn main() {
    let n_seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let cfg = EventSimConfig {
        processors: PAPER_PROCESSORS,
        ..Default::default()
    };

    println!("Table II shape across seeds (trace #3 structure)\n");
    let mut t2 = Table::new(&["seed", "LogicBlox", "LBL(15)", "LevelBased", "ordering ok"]);
    let mut results = ResultsWriter::new("robustness", PAPER_PROCESSORS);
    let mut ok_all = true;
    for seed in 0..n_seeds {
        let mut spec = preset(3);
        spec.seed = spec.seed.wrapping_add(seed * 0x9E37);
        let (inst, _) = generate(&spec);
        let lbx = measure(SchedulerKind::LogicBlox, &inst, &cfg).result.makespan;
        let lbl = measure(SchedulerKind::Lookahead(15), &inst, &cfg).result.makespan;
        let lb = measure(SchedulerKind::LevelBased, &inst, &cfg).result.makespan;
        // Tolerate greedy noise: LBL within 15% of LogicBlox; LB clearly worst.
        let ok = lbl <= lbx * 1.15 && lb > 1.3 * lbx;
        ok_all &= ok;
        t2.row(vec![
            seed.to_string(),
            format!("{lbx:.1}"),
            format!("{lbl:.1}"),
            format!("{lb:.1}"),
            ok.to_string(),
        ]);
        results.push_row(obj([
            ("trace", format!("table2/seed={seed}").as_str().into()),
            ("scheduler", "-".into()),
            ("logicblox_makespan_s", lbx.into()),
            ("lbl15_makespan_s", lbl.into()),
            ("levelbased_makespan_s", lb.into()),
            ("ordering_ok", ok.into()),
        ]));
    }
    println!("{}", t2.render());

    println!("Table III shape across seeds (trace #6 structure at 1/8 scale)\n");
    let mut t3 = Table::new(&[
        "seed",
        "LBX (mk, ovh)",
        "LB (mk, ovh)",
        "Hybrid ovh",
        "ordering ok",
    ]);
    for seed in 0..n_seeds {
        let mut spec = preset(6);
        spec.seed = spec.seed.wrapping_add(seed * 0x51D3);
        spec.nodes = spec.nodes / 8 + 4_000;
        spec.edges /= 8;
        spec.initial /= 8;
        spec.active /= 8;
        spec.classes[0].count /= 8;
        let (inst, _) = generate(&spec);
        let lbx = measure(SchedulerKind::LogicBlox, &inst, &cfg).result;
        let lb = measure(SchedulerKind::LevelBased, &inst, &cfg).result;
        let hy = measure(SchedulerKind::HybridBackground(1), &inst, &cfg).result;
        let ok = lb.sched_overhead * 10.0 < hy.sched_overhead
            && hy.sched_overhead < lbx.sched_overhead
            && lb.makespan * 2.0 < lbx.makespan;
        ok_all &= ok;
        t3.row(vec![
            seed.to_string(),
            format!("({:.3}, {:.3})", lbx.makespan, lbx.sched_overhead),
            format!("({:.3}, {:.4})", lb.makespan, lb.sched_overhead),
            format!("{:.3}", hy.sched_overhead),
            ok.to_string(),
        ]);
        results.push_row(obj([
            ("trace", format!("table3/seed={seed}").as_str().into()),
            ("scheduler", "-".into()),
            ("logicblox_makespan_s", lbx.makespan.into()),
            ("logicblox_overhead_s", lbx.sched_overhead.into()),
            ("levelbased_makespan_s", lb.makespan.into()),
            ("levelbased_overhead_s", lb.sched_overhead.into()),
            ("hybrid_bg_overhead_s", hy.sched_overhead.into()),
            ("ordering_ok", ok.into()),
        ]));
    }
    println!("{}", t3.render());

    assert!(ok_all, "a qualitative ordering failed under reseeding");
    println!("all qualitative orderings survive reseeding ({n_seeds} seeds).");
    results.write_default();
}
