//! Regenerate **Table I**: details of the workload traces.
//!
//! For each trace #1–#11 the binary generates the preset instance and
//! prints the measured statistics next to the paper's published values.
//! Nodes, edges, initial tasks, and levels must match exactly; active
//! jobs are matched by firing-probability calibration and reported with
//! their deviation.
//!
//! Usage: `cargo run --release -p incr-bench --bin table1 [max_id]`

use incr_bench::{ResultsWriter, Table};
use incr_obs::json::obj;
use incr_traces::{generate, presets, trace_stats};

fn main() {
    let max_id: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);

    println!("Table I: details of workload traces (measured vs paper)\n");
    let mut t = Table::new(&[
        "trace", "nodes", "edges", "initial", "levels", "active", "(paper)", "dev",
    ]);
    let mut results = ResultsWriter::new("table1", 0);
    for spec in presets().into_iter().filter(|s| s.id <= max_id) {
        let t0 = std::time::Instant::now();
        let (inst, rep) = generate(&spec);
        let st = trace_stats(&inst);
        assert_eq!(st.nodes as u32, spec.nodes, "{}: nodes", spec.name);
        assert_eq!(st.edges as u32, spec.edges, "{}: edges", spec.name);
        assert_eq!(
            st.initial_tasks as u32, spec.initial,
            "{}: initial",
            spec.name
        );
        assert_eq!(st.levels, spec.levels, "{}: levels", spec.name);
        let dev = (st.active_jobs as f64 - spec.active as f64) / spec.active as f64 * 100.0;
        t.row(vec![
            spec.name.to_string(),
            st.nodes.to_string(),
            st.edges.to_string(),
            st.initial_tasks.to_string(),
            st.levels.to_string(),
            st.active_jobs.to_string(),
            spec.active.to_string(),
            format!("{dev:+.1}%"),
        ]);
        results.push_row(obj([
            ("trace", spec.name.into()),
            ("scheduler", "-".into()),
            ("nodes", st.nodes.into()),
            ("edges", st.edges.into()),
            ("initial_tasks", st.initial_tasks.into()),
            ("levels", st.levels.into()),
            ("active_jobs", st.active_jobs.into()),
            ("paper_active", spec.active.into()),
            ("active_deviation_pct", dev.into()),
            ("generate_seconds", t0.elapsed().as_secs_f64().into()),
        ]));
        eprintln!(
            "generated {} in {:.2}s (fire threshold {:.4}, active {})",
            spec.name,
            t0.elapsed().as_secs_f64(),
            rep.fire_threshold,
            rep.achieved_active
        );
    }
    println!("{}", t.render());
    println!("nodes/edges/initial/levels are generator-exact; 'active' is calibrated.");
    results.write_default();
}
