//! Ablation: the hybrid's background-scan interleave (DESIGN.md §6.3).
//!
//! Sweeps the background-scan slice on the shallow-wide pathology (trace
//! #6 at 1/4 scale) and a deep trace (#4):
//!
//! * slice 0 (no background scan) — LogicBlox only scans when LevelBased
//!   stalls: minimum overhead, the "cooperative" extreme;
//! * slice 1 — the scan races the dispatch rate, reproducing the paper's
//!   ≈50% overhead reduction (completed tasks shrink the blocker set
//!   while the scan proceeds);
//! * large slices — the scan outruns dispatch and pays nearly the full
//!   LogicBlox price.
//!
//! Usage: `cargo run --release -p incr-bench --bin ablation_hybrid`

use incr_bench::{fmt_secs, measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_sched::SchedulerKind;
use incr_sim::EventSimConfig;
use incr_traces::{generate, preset};

fn main() {
    let mut results = ResultsWriter::new("ablation_hybrid", PAPER_PROCESSORS);
    let cfg = EventSimConfig {
        processors: PAPER_PROCESSORS,
        ..Default::default()
    };

    let spec6 = {
        let mut s = preset(6);
        s.name = "#6/4";
        s.nodes /= 4;
        s.edges /= 4;
        s.initial /= 4;
        s.active /= 4;
        s.classes[0].count /= 4;
        s
    };
    let (inst6, _) = generate(&spec6);
    let (inst4, _) = generate(&preset(4));

    for (name, inst) in [("#6 (1/4 scale, shallow-wide)", &inst6), ("#4 (deep)", &inst4)] {
        println!("hybrid interleave sweep on {name}\n");
        let lbx = measure(SchedulerKind::LogicBlox, inst, &cfg);
        results.push_measurement(name, &lbx);
        println!(
            "LogicBlox reference: makespan {}, overhead {}",
            fmt_secs(lbx.result.makespan),
            fmt_secs(lbx.result.sched_overhead)
        );
        let mut t = Table::new(&["variant", "makespan", "overhead", "overhead vs LBX"]);
        let mut overheads = Vec::new();
        for kind in [
            SchedulerKind::Hybrid, // no background scan
            SchedulerKind::HybridBackground(1),
            SchedulerKind::HybridBackground(8),
            SchedulerKind::HybridBackground(64),
        ] {
            let m = measure(kind, inst, &cfg);
            results.push_measurement(name, &m);
            overheads.push(m.result.sched_overhead);
            t.row(vec![
                m.label.clone(),
                fmt_secs(m.result.makespan),
                fmt_secs(m.result.sched_overhead),
                format!(
                    "{:.1}%",
                    m.result.sched_overhead / lbx.result.sched_overhead.max(1e-12) * 100.0
                ),
            ]);
        }
        println!("{}", t.render());
        assert!(
            overheads.windows(2).all(|w| w[0] <= w[1] * 1.05),
            "overhead should grow (weakly) with the background slice on {name}"
        );
    }
    println!("slice 0 minimizes overhead; slice 1 reproduces the paper's parallel deployment.");
    results.write_default();
}
