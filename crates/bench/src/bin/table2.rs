//! Regenerate **Table II**: total makespan of the LBL(k) scheduler as the
//! look-ahead parameter varies, against LogicBlox and plain LevelBased,
//! on traces #1–#5 with 8 processors.
//!
//! The paper's shape to reproduce: LevelBased is the slowest (the
//! per-level barrier), LBL improves monotonically with k, and by k ≈ 15–20
//! it is near the LogicBlox makespan. All schedulers incur negligible
//! scheduling overhead on these traces.
//!
//! Usage: `cargo run --release -p incr-bench --bin table2 [trace_ids...]`

use incr_bench::{measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_sched::SchedulerKind;
use incr_sim::EventSimConfig;
use incr_traces::{generate, preset};

fn main() {
    let ids: Vec<u32> = {
        let args: Vec<u32> = std::env::args()
            .skip(1)
            .filter_map(|s| s.parse().ok())
            .collect();
        if args.is_empty() {
            vec![1, 2, 3, 4, 5]
        } else {
            args
        }
    };
    let cfg = EventSimConfig {
        processors: PAPER_PROCESSORS,
        ..EventSimConfig::default()
    };
    let lineup = [
        SchedulerKind::LogicBlox,
        SchedulerKind::LevelBased,
        SchedulerKind::Lookahead(5),
        SchedulerKind::Lookahead(10),
        SchedulerKind::Lookahead(15),
        SchedulerKind::Lookahead(20),
    ];

    println!(
        "Table II: total makespan (s), {} processors (measured | paper)\n",
        PAPER_PROCESSORS
    );
    let mut table = Table::new(&[
        "trace", "LogicBlox", "LevelBased", "LBL(5)", "LBL(10)", "LBL(15)", "LBL(20)",
    ]);
    let mut paper_rows = Table::new(&[
        "trace", "LogicBlox", "LevelBased", "LBL(5)", "LBL(10)", "LBL(15)", "LBL(20)",
    ]);
    let mut results = ResultsWriter::new("table2", PAPER_PROCESSORS);
    for id in ids {
        let spec = preset(id);
        let (inst, _) = generate(&spec);
        let mut cells = vec![spec.name.to_string()];
        for kind in lineup {
            let m = measure(kind, &inst, &cfg);
            results.push_measurement(spec.name, &m);
            cells.push(format!("{:.2}", m.result.makespan));
            eprintln!(
                "{} {:<12} makespan {:>10.2}s overhead {:>10.6}s (wall {:.2}s)",
                spec.name,
                m.label,
                m.result.makespan,
                m.result.sched_overhead,
                m.wall_seconds
            );
        }
        table.row(cells);
        let p = &spec.paper;
        let lbl = p.lbl.unwrap_or([f64::NAN; 4]);
        paper_rows.row(vec![
            spec.name.to_string(),
            format!("{:.2}", p.lbx_makespan.unwrap_or(f64::NAN)),
            format!("{:.2}", p.lb_makespan.unwrap_or(f64::NAN)),
            format!("{:.2}", lbl[0]),
            format!("{:.2}", lbl[1]),
            format!("{:.2}", lbl[2]),
            format!("{:.2}", lbl[3]),
        ]);
    }
    println!("measured:\n{}", table.render());
    println!("paper:\n{}", paper_rows.render());
    results.write_default();
}
