//! Shard-scaling benchmark: the same TC + multi-bound-join workload
//! driven through [`ShardedEngine`] at 1, 2, 4 and 8 shards, measuring
//! update throughput and the scaling ratio against the 1-shard run
//! (same code path, so partitioning overheads cancel out of the ratio).
//!
//! The workload is chosen so the rules classify *shard-local*
//! (left-recursive closure anchored on the head's first variable, plus
//! an anchored triangle join): each shard re-derives only its owned
//! source slice against an exact `edge` mirror, which is the shape the
//! sharded runtime is built to scale.
//!
//! Results go to `results/shard_scaling.json` (ResultsWriter schema
//! v1). The `updates_per_sec_x` ratio is always *recorded*; it is only
//! *asserted* (≥ 1.7× at 2 shards) on a ≥ 4-core host outside smoke
//! mode, so CI on small runners stays green while real hardware gates
//! the speedup.
//!
//! Usage: `cargo run --release -p incr-bench --bin shard_scaling [--smoke]`
//!
//! `--smoke` shrinks the instances for CI and adds a sharded ≡
//! unsharded equivalence check (extents compared per batch) in place of
//! the perf gate.

use incr_bench::{fmt_secs, ResultsWriter, Table};
use incr_datalog::{FactEdit, IncrementalEngine, ShardedEngine};
use incr_obs::json::obj;
use incr_sched::{LevelBased, Scheduler};
use std::time::Instant;

/// Deterministic LCG (same constants as Numerical Recipes) — the graph
/// must be identical across runs and shard counts.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound
    }
}

/// Left-recursive closure (anchored on `X`, so it shards by source
/// node) plus an anchored triangle join — both classify `Local`, with
/// `edge` held as a mirror on every shard.
const RULES: &str = "path(X, Y) :- edge(X, Y).\n\
                     path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                     tri(X, Z) :- edge(X, Y), edge(Y, Z), edge(X, Z).\n";

/// Ring of `n` nodes (one big SCC, closure = n² paths) plus two random
/// out-edges per node (small diameter, dense triangle candidates).
fn workload(n: u64) -> (String, Vec<(String, String)>) {
    let mut rng = Lcg(0x9e3779b97f4a7c15);
    let mut src = String::from(RULES);
    let mut edges = Vec::new();
    for i in 0..n {
        let mut push = |a: u64, b: u64| {
            src.push_str(&format!("edge(v{a}, v{b}).\n"));
            edges.push((format!("v{a}"), format!("v{b}")));
        };
        push(i, (i + 1) % n);
        push(i, rng.next(n));
        push(i, rng.next(n));
    }
    (src, edges)
}

/// Alternating delete / re-insert batches over `k` spread-out ring
/// edges: deletions cascade through the closure on every shard's owned
/// slice (heavy DRed), re-insertions rebuild it.
fn edit_batches(n: u64, k: u64, cycles: usize) -> Vec<Vec<FactEdit>> {
    let picks: Vec<(String, String)> = (0..k)
        .map(|j| {
            let i = j * (n / k);
            (format!("v{i}"), format!("v{}", (i + 1) % n))
        })
        .collect();
    let mut batches = Vec::new();
    for _ in 0..cycles {
        batches.push(
            picks
                .iter()
                .map(|(a, b)| FactEdit::remove("edge", &[a, b]))
                .collect(),
        );
        batches.push(
            picks
                .iter()
                .map(|(a, b)| FactEdit::add("edge", &[a, b]))
                .collect(),
        );
    }
    batches
}

fn make_sched(dag: std::sync::Arc<incr_dag::Dag>) -> Box<dyn Scheduler + Send> {
    Box::new(LevelBased::new(dag))
}

struct ShardRun {
    materialize: f64,
    wall: f64,
    updates_per_sec: f64,
    rounds: usize,
    exchanged: usize,
    path_tuples: usize,
    tri_tuples: usize,
}

fn run_sharded(src: &str, shards: usize, batches: &[Vec<FactEdit>]) -> ShardRun {
    let t0 = Instant::now();
    let mut e = ShardedEngine::new(src, shards, make_sched).expect("valid program");
    let materialize = t0.elapsed().as_secs_f64();

    let mut rounds = 0;
    let mut exchanged = 0;
    let t0 = Instant::now();
    for batch in batches {
        let rep = e.update(batch).expect("batch applies");
        rounds += rep.rounds;
        exchanged += rep.exchanged_tuples;
    }
    let wall = t0.elapsed().as_secs_f64();
    ShardRun {
        materialize,
        wall,
        updates_per_sec: batches.len() as f64 / wall.max(1e-9),
        rounds,
        exchanged,
        path_tuples: e.count("path"),
        tri_tuples: e.count("tri"),
    }
}

/// Smoke-mode gate: a 2-shard run must stay extent-identical to the
/// unsharded engine on every derived predicate after every batch.
fn check_equivalence(src: &str, batches: &[Vec<FactEdit>]) {
    let mut reference = IncrementalEngine::new(src).expect("valid program");
    let mut sharded = ShardedEngine::new(src, 2, make_sched).expect("valid program");
    let image = |e: &IncrementalEngine, pat: &str| -> Vec<String> {
        let mut rows = e.query(pat).expect("query");
        rows.sort();
        rows
    };
    for (i, batch) in batches.iter().enumerate() {
        let mut sched = LevelBased::new(reference.dag().clone());
        reference.update(&mut sched, batch).expect("reference batch applies");
        sharded.update(batch).expect("sharded batch applies");
        for (pred, pat) in [("path", "path(?, ?)"), ("tri", "tri(?, ?)")] {
            let want = image(&reference, pat);
            let got = sharded.query(pat).expect("sharded query");
            assert_eq!(
                got, want,
                "sharded {pred} diverged from unsharded after batch {i}"
            );
            assert_eq!(sharded.count(pred), want.len(), "{pred} count after batch {i}");
        }
    }
    println!("smoke: sharded(2) extents match unsharded over {} batches\n", batches.len());
}

/// Fault-tolerance overhead A/B at 2 shards: armed (a no-op fault hook
/// installed and an explicit round deadline, so every round pays the
/// hook interrogation and watchdog arithmetic) vs stock. Arms are
/// interleaved and each keeps its best of 3 reps, so ambient noise hits
/// both equally. Returns `(armed_ups, stock_ups)`.
fn ft_overhead(src: &str, batches: &[Vec<FactEdit>]) -> (f64, f64) {
    use incr_datalog::ShardFaultHook;
    let run = |armed: bool| -> f64 {
        let mut e = ShardedEngine::new(src, 2, make_sched).expect("valid program");
        e.set_black_box(None);
        if armed {
            e.set_round_deadline(std::time::Duration::from_secs(30));
            e.set_fault_hook(Some(std::sync::Arc::new(|_, _| None) as ShardFaultHook));
        }
        let t0 = Instant::now();
        for batch in batches {
            e.update(batch).expect("batch applies");
        }
        batches.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let (mut armed, mut stock) = (0f64, 0f64);
    for _ in 0..3 {
        stock = stock.max(run(false));
        armed = armed.max(run(true));
    }
    (armed, stock)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, k, cycles) = if smoke { (24, 2, 2) } else { (192, 6, 2) };
    let (src, _edges) = workload(n);
    let batches = edit_batches(n, k, cycles);

    println!(
        "Shard scaling: TC + triangle join on ring(n={n}) + 2 random out-edges/node, \
         {} update batches of {k} edge edits\n",
        batches.len()
    );
    if smoke {
        check_equivalence(&src, &batches);
    }

    let mut results = ResultsWriter::new("shard_scaling", 0);
    let mut table = Table::new(&[
        "shards",
        "materialize",
        "update wall",
        "updates/s",
        "vs 1 shard",
        "rounds",
        "exchanged",
        "path",
    ]);
    let mut base: Option<f64> = None;
    let mut ratio_at_2 = None;
    for &shards in &[1usize, 2, 4, 8] {
        let run = run_sharded(&src, shards, &batches);
        let ratio = base.map_or(1.0, |b| run.updates_per_sec / b);
        if base.is_none() {
            base = Some(run.updates_per_sec);
        }
        if shards == 2 {
            ratio_at_2 = Some(ratio);
        }
        results.push_row(obj([
            ("trace", format!("tc+tri(n={n})").into()),
            ("scheduler", "LevelBased".into()),
            ("shards", (shards as u64).into()),
            ("batches", (batches.len() as u64).into()),
            ("materialize_seconds", run.materialize.into()),
            ("update_wall_seconds", run.wall.into()),
            ("updates_per_sec", run.updates_per_sec.into()),
            ("updates_per_sec_x", ratio.into()),
            ("rounds", (run.rounds as u64).into()),
            ("exchanged_tuples", (run.exchanged as u64).into()),
            ("path_tuples", (run.path_tuples as u64).into()),
            ("tri_tuples", (run.tri_tuples as u64).into()),
        ]));
        table.row(vec![
            shards.to_string(),
            fmt_secs(run.materialize),
            fmt_secs(run.wall),
            format!("{:.1}", run.updates_per_sec),
            format!("{ratio:.2}x"),
            run.rounds.to_string(),
            run.exchanged.to_string(),
            run.path_tuples.to_string(),
        ]);
    }
    println!("{}", table.render());

    // ISSUE 9 satellite: the fault-tolerance machinery (hook
    // interrogation, undo staging, barrier watchdog) must not tax the
    // fault-free path. Armed-no-fault vs stock, best of 3 interleaved.
    let (armed_ups, stock_ups) = ft_overhead(&src, &batches);
    let ft_ratio = armed_ups / stock_ups.max(1e-9);
    println!(
        "ft overhead @ 2 shards: armed {armed_ups:.1} ups vs stock {stock_ups:.1} ups \
         = {ft_ratio:.2}x (gate: >= 0.80x)"
    );
    results.push_row(obj([
        ("trace", format!("tc+tri(n={n})").into()),
        ("scheduler", "LevelBased".into()),
        ("kind", "shard_ft_overhead".into()),
        ("shards", 2u64.into()),
        ("batches", (batches.len() as u64).into()),
        ("armed_updates_per_sec", armed_ups.into()),
        ("stock_updates_per_sec", stock_ups.into()),
        ("ft_overhead_ratio", ft_ratio.into()),
    ]));
    results.write_default();
    assert!(
        ft_ratio >= 0.80,
        "armed-no-fault throughput {ft_ratio:.2}x of stock is below the 0.80x gate"
    );

    let cores = incr_bench::results::available_parallelism();
    let ratio_at_2 = ratio_at_2.expect("2-shard config always runs");
    if smoke || cores < 4 {
        println!(
            "scaling gate skipped (smoke={smoke}, cores={cores}); \
             2-shard ratio recorded: {ratio_at_2:.2}x"
        );
    } else {
        println!("2-shard scaling on {cores} cores: {ratio_at_2:.2}x (gate: >= 1.7x)");
        assert!(
            ratio_at_2 >= 1.7,
            "2-shard throughput ratio {ratio_at_2:.2}x below the 1.7x gate on a {cores}-core host"
        );
    }
}
