//! Ablations on scheduling cost:
//!
//! 1. **Theorem 2** — LevelBased scheduling work is `O(n + L)`: sweep the
//!    active count and level count independently and fit the growth.
//! 2. **§II-C worst cases** — the LogicBlox scan's `Θ(n³)` blow-up on the
//!    chain-fan instance, versus LevelBased's linear cost on the same
//!    instance; the interval-list `Θ(V²)` space blow-up.
//! 3. **Price-vector sensitivity** — the Table III orderings (hybrid
//!    overhead < LogicBlox overhead; LB ≪ both on shallow traces) must
//!    hold at 0.5×, 1× and 2× prices.
//!
//! Usage: `cargo run --release -p incr-bench --bin ablation_cost`

use incr_bench::{measure, ResultsWriter, Table, PAPER_PROCESSORS};
use incr_dag::IntervalList;
use incr_obs::json::obj;
use incr_sched::{CostPrices, SchedulerKind};
use incr_sim::EventSimConfig;
use incr_traces::adversarial::{hundred_x, interval_blowup, lbx_cubic};
use incr_traces::{generate, preset};

fn main() {
    let mut results = ResultsWriter::new("ablation_cost", PAPER_PROCESSORS);
    theorem2_scaling(&mut results);
    cubic_blowup(&mut results);
    interval_space(&mut results);
    price_sensitivity(&mut results);
    results.write_default();
}

/// LevelBased cost ops vs n and L.
fn theorem2_scaling(results: &mut ResultsWriter) {
    println!("Theorem 2: LevelBased scheduling operations scale as O(n + L)\n");
    let mut t = Table::new(&["n (active)", "L", "bucket_ops", "ops/(n+L)"]);
    for &(n, l) in &[(1_000u32, 2u32), (10_000, 2), (100_000, 2), (10_000, 64), (10_000, 512)] {
        // n/2 two-level chains padded to L levels by a spine.
        let spec = incr_traces::TraceSpec {
            name: "ablation",
            id: 99,
            seed: 7,
            nodes: 2 * n + l,
            edges: n + l - 1,
            initial: n / 2,
            active: n,
            levels: l,
            classes: vec![incr_traces::spec::CompClass {
                count: n / 2,
                depth: 2,
                width: 1,
                dirty: true,
            }],
            second_parent: 0.0,
            comp_scale_sigma: 0.0,
            duration: incr_traces::durations::DurationModel::new(1e-5, 0.5),
            paper: Default::default(),
        };
        let (inst, _) = generate(&spec);
        let m = measure(
            SchedulerKind::LevelBased,
            &inst,
            &EventSimConfig {
                processors: PAPER_PROCESSORS,
                ..Default::default()
            },
        );
        let ops = m.result.cost.bucket_ops;
        let n_actual = m.result.executed as u64;
        results.push_row(obj([
            ("trace", format!("theorem2(n={n},L={l})").into()),
            ("scheduler", m.label.as_str().into()),
            ("bucket_ops", ops.into()),
            ("ops_per_n_plus_l", (ops as f64 / (n_actual + l as u64) as f64).into()),
        ]));
        t.row(vec![
            n_actual.to_string(),
            l.to_string(),
            ops.to_string(),
            format!("{:.2}", ops as f64 / (n_actual + l as u64) as f64),
        ]);
    }
    println!("{}", t.render());
    println!("ops/(n+L) must stay bounded by a constant — it does.\n");
}

/// LogicBlox Θ(n³) vs LevelBased O(n + L) on the adversarial chain-fan.
fn cubic_blowup(results: &mut ResultsWriter) {
    println!("§II-C worst case: LogicBlox scan cost on the chain-fan instance\n");
    let mut t = Table::new(&[
        "n",
        "LBX ancestor queries",
        "growth exp.",
        "LB bucket_ops",
        "LB ops/n",
    ]);
    let mut prev: Option<(u32, u64)> = None;
    for &n in &[50u32, 100, 200, 400] {
        let inst = lbx_cubic(n);
        let cfg = EventSimConfig {
            processors: PAPER_PROCESSORS,
            ..Default::default()
        };
        let lbx = measure(SchedulerKind::LogicBlox, &inst, &cfg);
        let lb = measure(SchedulerKind::LevelBased, &inst, &cfg);
        let q = lbx.result.cost.ancestor_queries;
        let b = lb.result.cost.bucket_ops;
        let exp = prev
            .map(|(pn, pq)| (q as f64 / pq as f64).ln() / (n as f64 / pn as f64).ln())
            .map(|e| format!("{e:.2}"))
            .unwrap_or_else(|| "-".into());
        if let Some((_, pq)) = prev {
            assert!(
                (q as f64 / pq as f64).ln() / 2f64.ln() >= 2.0,
                "LogicBlox cost must grow at least quadratically on the worst case"
            );
        }
        prev = Some((n, q));
        results.push_row(obj([
            ("trace", format!("lbx_cubic({n})").into()),
            ("scheduler", "LogicBlox vs LevelBased".into()),
            ("lbx_ancestor_queries", q.into()),
            ("lb_bucket_ops", b.into()),
        ]));
        t.row(vec![
            n.to_string(),
            q.to_string(),
            exp,
            b.to_string(),
            format!("{:.2}", b as f64 / n as f64),
        ]);
    }
    println!("{}", t.render());
    println!("LBX grows superlinearly toward the O(n³) bound; LB stays linear.\n");
}

/// Interval-list Θ(V²) space blow-up.
fn interval_space(results: &mut ResultsWriter) {
    println!("§II-C worst case: interval-list space on the fragmentation crown\n");
    let mut t = Table::new(&["V", "intervals", "intervals/V²"]);
    for &k in &[64u32, 128, 256, 512] {
        let dag = interval_blowup(k);
        let il = IntervalList::build(&dag);
        let v = dag.node_count() as f64;
        let i = il.total_intervals();
        results.push_row(obj([
            ("trace", format!("interval_blowup({k})").into()),
            ("scheduler", "IntervalList".into()),
            ("nodes", dag.node_count().into()),
            ("intervals", i.into()),
            ("intervals_per_v2", (i as f64 / (v * v)).into()),
        ]));
        t.row(vec![
            dag.node_count().to_string(),
            i.to_string(),
            format!("{:.4}", i as f64 / (v * v)),
        ]);
    }
    println!("{}", t.render());
    println!("intervals/V² approaches a constant (quadratic space).\n");
}

/// Table III orderings must be stable under re-pricing.
fn price_sensitivity(results: &mut ResultsWriter) {
    println!("Price-vector sensitivity: Table III orderings at 0.5x / 1x / 2x\n");
    let mut t = Table::new(&[
        "instance",
        "prices",
        "LBX overhead",
        "LB overhead",
        "Hybrid overhead",
        "ordering ok",
    ]);
    // The shallow-wide pathologies: trace #6 scaled down for speed, plus
    // the hundred_x instance.
    let spec6 = {
        let mut s = preset(6);
        s.name = "#6/8";
        // 1/8-scale active structure; extra filler headroom so the
        // bipartite filler block can absorb the scaled edge budget.
        s.nodes = s.nodes / 8 + 4_000;
        s.edges /= 8;
        s.initial /= 8;
        s.active /= 8;
        s.classes[0].count /= 8;
        s
    };
    let (inst6, _) = generate(&spec6);
    let instx = hundred_x(20_000);
    for (name, inst) in [("#6 (1/8 scale)", &inst6), ("hundred_x", &instx)] {
        for scale in [0.5f64, 1.0, 2.0] {
            let cfg = EventSimConfig {
                processors: PAPER_PROCESSORS,
                prices: CostPrices::default().scaled(scale),
                ..Default::default()
            };
            let lbx = measure(SchedulerKind::LogicBlox, inst, &cfg);
            let lb = measure(SchedulerKind::LevelBased, inst, &cfg);
            let hy = measure(SchedulerKind::HybridBackground(1), inst, &cfg);
            let (o_lbx, o_lb, o_hy) = (
                lbx.result.sched_overhead,
                lb.result.sched_overhead,
                hy.result.sched_overhead,
            );
            let ok = o_lb < o_hy && o_hy < o_lbx;
            results.push_row(obj([
                ("trace", (*name).into()),
                ("scheduler", "price_sensitivity".into()),
                ("price_scale", scale.into()),
                ("lbx_overhead_s", o_lbx.into()),
                ("lb_overhead_s", o_lb.into()),
                ("hybrid_overhead_s", o_hy.into()),
                ("ordering_ok", ok.into()),
            ]));
            t.row(vec![
                name.to_string(),
                format!("{scale}x"),
                format!("{o_lbx:.4}"),
                format!("{o_lb:.6}"),
                format!("{o_hy:.4}"),
                ok.to_string(),
            ]);
            assert!(ok, "ordering broke at {scale}x on {name}");
        }
    }
    println!("{}", t.render());
    println!("LB < Hybrid < LogicBlox overhead holds at every price scale.");
}
