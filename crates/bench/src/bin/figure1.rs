//! Regenerate **Figure 1**: the anatomy of trace #1's computation DAG.
//!
//! The paper's caption: 64,910 vertices, 101,327 edges; scheduling starts
//! with updates to five initial tasks, whose changes cascade into the
//! activation of 532 descendants out of 1,680 total descendants — "most
//! of the descendants do not need to be recomputed."
//!
//! This binary reports the same census for the regenerated trace —
//! `results/figure1.json` (ResultsWriter schema v1) plus the table on
//! stdout — and writes a DOT excerpt of the activated region (the full
//! DAG "printed at 300 DPI would be a mile long").
//!
//! Usage: `cargo run --release -p incr-bench --bin figure1 [dot_path]`

use incr_bench::{ResultsWriter, Table};
use incr_dag::dot::{to_dot, DotOptions};
use incr_obs::json::obj;
use incr_traces::{generate, preset, trace_stats};

fn main() {
    let dot_path = std::env::args().nth(1);
    let spec = preset(1);
    let (inst, _) = generate(&spec);
    let st = trace_stats(&inst);

    println!("Figure 1: anatomy of trace #1 (measured vs paper caption)\n");
    let mut t = Table::new(&["quantity", "measured", "paper"]);
    t.row(vec!["vertices".into(), st.nodes.to_string(), "64910".into()]);
    t.row(vec!["edges".into(), st.edges.to_string(), "101327".into()]);
    t.row(vec![
        "initial tasks".into(),
        st.initial_tasks.to_string(),
        "5".into(),
    ]);
    t.row(vec![
        "activated descendants".into(),
        st.activated_descendants.to_string(),
        "532".into(),
    ]);
    t.row(vec![
        "total descendants".into(),
        st.total_descendants.to_string(),
        "1680".into(),
    ]);
    t.row(vec![
        "activated / descendants".into(),
        format!(
            "{:.1}%",
            st.activated_descendants as f64 / st.total_descendants.max(1) as f64 * 100.0
        ),
        format!("{:.1}%", 532.0 / 1680.0 * 100.0),
    ]);
    println!("{}", t.render());
    println!(
        "most descendants do not need recomputation: {} of {} stay clean",
        st.total_descendants - st.activated_descendants,
        st.total_descendants
    );

    let mut results = ResultsWriter::new("figure1", 0);
    results.push_row(obj([
        ("trace", "#1".into()),
        ("scheduler", "-".into()),
        ("vertices", (st.nodes as u64).into()),
        ("edges", (st.edges as u64).into()),
        ("initial_tasks", (st.initial_tasks as u64).into()),
        ("activated_descendants", (st.activated_descendants as u64).into()),
        ("total_descendants", (st.total_descendants as u64).into()),
        ("paper_vertices", 64910u64.into()),
        ("paper_edges", 101327u64.into()),
        ("paper_activated_descendants", 532u64.into()),
        ("paper_total_descendants", 1680u64.into()),
    ]));
    results.write_default();

    if let Some(path) = dot_path {
        // Excerpt: the DAG restricted to a renderable prefix, activated
        // nodes highlighted.
        let active = inst.active_closure();
        let dot = to_dot(
            &inst.dag,
            &DotOptions {
                name: "trace1_excerpt".into(),
                rank_by_level: true,
                max_nodes: Some(1_200),
            },
            |v| active.contains(v).then_some("tomato"),
        );
        std::fs::write(&path, dot).expect("write DOT file");
        println!("wrote DOT excerpt to {path}");
    }
}
