//! CI gate for observability overhead: the always-on layers must stay
//! cheap. Two checks, both median-of-K to shrug off scheduler noise:
//!
//! * **wrap gate** — the preset-5 scheduler drive (same loop as the
//!   `obs_overhead` Criterion bench: 8 in-flight slots) wrapped in
//!   [`Observed`] with tracing *off* must run within 2.5x of the plain
//!   scheduler. The wrapper costs three relaxed counter adds per
//!   protocol call plus one relaxed load per skipped emit site.
//! * **flight gate** — a 200-update executor stream with the flight
//!   recorder *on* (the production default) must run within 1.3x of the
//!   same stream with the recorder off. Recording is a few relaxed
//!   stores per event into a per-thread ring; it must never show up in
//!   stream throughput.
//!
//! Writes `results/obs_overhead.json` and exits nonzero when a gate
//! fails. Usage: `cargo run --release -p incr-bench --bin obs_overhead
//! [--smoke]`.

use incr_bench::{ResultsWriter, Table};
use incr_obs::json::obj;
use incr_obs::{flight, trace};
use incr_runtime::{ExecConfig, Executor, TaskFn};
use incr_sched::{Instance, Observed, Scheduler, SchedulerKind};
use incr_traces::{generate, preset};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Same in-memory environment as the Criterion bench: 8 in-flight slots.
fn drive(s: &mut dyn Scheduler, inst: &Instance) -> usize {
    s.start(&inst.initial_active);
    let mut in_flight: VecDeque<incr_dag::NodeId> = VecDeque::new();
    let mut executed = 0;
    loop {
        while in_flight.len() < 8 {
            match s.pop_ready() {
                Some(t) => in_flight.push_back(t),
                None => break,
            }
        }
        let Some(t) = in_flight.pop_front() else { break };
        executed += 1;
        s.on_completed(t, &inst.fired[t.index()]);
    }
    executed
}

/// Median of `reps` timings of `f` (seconds). Interleave-friendly: the
/// caller alternates variants so both see the same machine conditions.
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps: usize = if smoke { 5 } else { 9 };
    let mut results = ResultsWriter::new("obs_overhead", 0);
    let mut failed = false;

    // ---- Gate 1: Observed wrapper with tracing off vs plain. ----
    let (inst, _) = generate(&preset(5));
    let kind = SchedulerKind::Hybrid;
    let drives = if smoke { 10 } else { 30 };
    trace::disable();
    let mut plain_times = Vec::new();
    let mut wrapped_times = Vec::new();
    for _ in 0..reps {
        let mut s = kind.build(inst.dag.clone());
        let t0 = Instant::now();
        for _ in 0..drives {
            std::hint::black_box(drive(s.as_mut(), &inst));
        }
        plain_times.push(t0.elapsed().as_secs_f64());

        let mut s = Observed::new(kind.build(inst.dag.clone()));
        let t0 = Instant::now();
        for _ in 0..drives {
            std::hint::black_box(drive(&mut s, &inst));
        }
        wrapped_times.push(t0.elapsed().as_secs_f64());
    }
    let plain = median(plain_times);
    let wrapped = median(wrapped_times);
    let wrap_ratio = wrapped / plain.max(1e-9);
    const WRAP_LIMIT: f64 = 2.5;

    // ---- Gate 2: flight recorder on vs off on an executor stream. ----
    let updates = if smoke { 60 } else { 200 };
    let dag = Arc::new(incr_dag::random::layered(incr_dag::random::LayeredParams {
        layers: 20,
        width: 500,
        max_in: 4,
        back_span: 2,
        seed: 42,
    }));
    let mut state = 0xfeed_5eedu64;
    let mut lcg = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let stream: Vec<Vec<incr_dag::NodeId>> = (0..updates)
        .map(|_| (0..10).map(|_| incr_dag::NodeId((lcg() % 500) as u32)).collect())
        .collect();
    let dag2 = dag.clone();
    let task: TaskFn = Arc::new(move |v, out: &mut Vec<incr_dag::NodeId>| {
        for (i, &c) in dag2.children(v).iter().enumerate() {
            if i % 2 == 0 {
                out.push(c);
            }
        }
    });
    // No black-box dir: measure recording cost, not error-path IO.
    let mut cfg = ExecConfig::new(8);
    cfg.black_box = None;
    let run_once = |on: bool| -> f64 {
        flight::set_enabled(on);
        let mut sched = SchedulerKind::LevelBased.build(dag.clone());
        let t0 = Instant::now();
        let r = Executor::with_config(cfg.clone())
            .run_stream(sched.as_mut(), &dag, &stream, task.clone())
            .expect("stream completes");
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(r.executed);
        dt
    };
    run_once(false); // warm-up: page in the DAG and thread stacks
    let mut off_times = Vec::new();
    let mut on_times = Vec::new();
    for _ in 0..reps {
        off_times.push(run_once(false));
        on_times.push(run_once(true));
    }
    flight::set_enabled(true);
    flight::clear();
    let off = median(off_times);
    let on = median(on_times);
    let flight_ratio = on / off.max(1e-9);
    const FLIGHT_LIMIT: f64 = 1.3;

    let mut t = Table::new(&["gate", "baseline", "observed", "ratio", "limit", "pass"]);
    for (gate, base, obs, ratio, limit) in [
        ("wrapped, tracing off", plain, wrapped, wrap_ratio, WRAP_LIMIT),
        ("flight recorder on", off, on, flight_ratio, FLIGHT_LIMIT),
    ] {
        let pass = ratio <= limit;
        failed |= !pass;
        t.row(vec![
            gate.to_string(),
            format!("{:.1} ms", base * 1e3),
            format!("{:.1} ms", obs * 1e3),
            format!("{ratio:.3}x"),
            format!("{limit:.1}x"),
            if pass { "ok" } else { "FAIL" }.to_string(),
        ]);
        results.push_row(obj([
            ("gate", gate.into()),
            ("baseline_seconds", base.into()),
            ("observed_seconds", obs.into()),
            ("ratio", ratio.into()),
            ("limit", limit.into()),
            ("pass", pass.into()),
            ("reps", reps.into()),
            ("smoke", smoke.into()),
        ]));
    }
    println!("obs_overhead gates (median of {reps}):\n");
    println!("{}", t.render());
    results.write_default();
    println!("wrote results/obs_overhead.json");
    if failed {
        eprintln!("observability overhead gate FAILED");
        std::process::exit(1);
    }
}
