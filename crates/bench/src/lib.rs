//! # incr-bench — table/figure regeneration harness
//!
//! One binary per table or figure in the paper's evaluation (see
//! DESIGN.md §5 for the experiment index):
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `table1` | Table I — trace statistics |
//! | `table2` | Table II — LBL(k) sweep vs LogicBlox, traces #1–#5 |
//! | `table3` | Table III — makespan + overhead for LogicBlox / LevelBased / Hybrid, traces #6–#11 |
//! | `figure1` | Figure 1 — anatomy of trace #1 (+ DOT excerpt) |
//! | `figure2` | Figure 2 / Theorem 9 — the tight example sweep |
//! | `ablation_cost` | Theorem 2 cost scaling, LogicBlox `O(n³)` blow-up, price-vector sensitivity |
//! | `ablation_hybrid` | hybrid background-scan interleave sweep |
//! | `hundredx` | §VI's "100×" synthetic-instance anecdote |
//! | `meta_guarantee` | Theorem 10 / Corollary 11 meta-scheduler checks |
//!
//! This library holds the shared measurement helpers so every binary
//! reports the same quantities the same way.

pub mod attack;
pub mod results;

pub use attack::{AttackConfig, AttackWorkload};
pub use results::{measurement_row, peak_gauges, ResultsWriter, SCHEMA_VERSION};

use incr_sched::{Instance, SchedulerKind};
use incr_sim::{simulate_event, EventSimConfig, SimResult};
use std::time::Instant;

/// The paper's experimental setup: "All of the traces were simulated to
/// run with eight processors" (§VI-C).
pub const PAPER_PROCESSORS: usize = 8;

/// One scheduler's measurements on one instance.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub label: String,
    pub result: SimResult,
    /// Wall-clock seconds for the whole simulation.
    pub wall_seconds: f64,
    /// Wall-clock seconds spent building the scheduler (precomputation:
    /// levels, interval lists).
    pub precompute_seconds: f64,
}

/// Run one scheduler kind over an instance and collect measurements.
pub fn measure(kind: SchedulerKind, inst: &Instance, cfg: &EventSimConfig) -> Measurement {
    let t0 = Instant::now();
    let mut s = kind.build(inst.dag.clone());
    let precompute_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let result = simulate_event(s.as_mut(), inst, cfg);
    Measurement {
        label: kind.label(),
        result,
        wall_seconds: t1.elapsed().as_secs_f64(),
        precompute_seconds,
    }
}

/// Format seconds the way the paper's tables do (value + unit).
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s < 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s < 1.0 {
        format!("{:.3} s", s)
    } else if s < 100.0 {
        format!("{:.2} s", s)
    } else {
        format!("{:.1} s", s)
    }
}

/// Percentage difference `measured` vs `reference` (+ means larger).
pub fn pct_delta(measured: f64, reference: f64) -> String {
    if reference == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (measured - reference) / reference * 100.0)
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{DagBuilder, NodeId};
    use std::sync::Arc;

    #[test]
    fn measure_runs_end_to_end() {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        let dag = Arc::new(b.build().unwrap());
        let mut inst = Instance::unit(dag, vec![NodeId(0)]);
        inst.fired[0] = vec![NodeId(1)];
        let m = measure(
            SchedulerKind::LevelBased,
            &inst,
            &EventSimConfig::default(),
        );
        assert_eq!(m.result.executed, 2);
        assert_eq!(m.label, "LevelBased");
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(0.0), "0");
        assert!(fmt_secs(2e-5).ends_with("ms"));
        assert!(fmt_secs(0.5).ends_with('s'));
        assert!(fmt_secs(1234.5).starts_with("1234.5"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let out = t.render();
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn pct_delta_signs() {
        assert_eq!(pct_delta(110.0, 100.0), "+10.0%");
        assert_eq!(pct_delta(90.0, 100.0), "-10.0%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }
}
