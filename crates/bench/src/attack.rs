//! MulVAL-style dynamic attack-graph workload: the deletion-heavy
//! scenario the counting (FBF) maintenance backend exists for.
//!
//! The program models network attack reachability the way MulVAL-class
//! analyzers do:
//!
//! ```text
//! vulnerable(H)   :- service(H, P), vuln(P).
//! exposed(D)      :- hacl(S, D), vulnerable(D).
//! compromised(H)  :- attacker(H).
//! compromised(D)  :- compromised(S), hacl(S, D), vulnerable(D).
//! ```
//!
//! `vulnerable` and `exposed` have high derivation multiplicity (a host
//! runs many services, is reachable from many sources), so most
//! *remediation* edits — patching a program (`-vuln`), flipping a
//! firewall rule (`-hacl`), decommissioning a service (`-service`) —
//! destroy one derivation of a tuple that has several others. A
//! counting backend absorbs those with a decrement; DRed pays a full
//! overdelete/rederive pass plus old-extent clones per update. The
//! `compromised` SCC keeps one genuinely recursive rule so the
//! recursive fallback path stays exercised.
//!
//! All randomness comes from a seeded LCG: the same config produces the
//! same program and the same edit stream on every run and machine.

use incr_datalog::FactEdit;

/// Deterministic LCG (Numerical Recipes constants) — same idiom as the
/// other bench generators; workloads must be identical across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % bound.max(1)
    }
}

/// Shape of the generated network.
#[derive(Clone, Copy, Debug)]
pub struct AttackConfig {
    /// Hosts in the network (`h0..`).
    pub hosts: u64,
    /// Distinct installable programs (`p0..`).
    pub programs: u64,
    /// Services initially running per host (multiplicity of
    /// `vulnerable`'s derivations).
    pub services_per_host: u64,
    /// Initial ACL out-edges per host (multiplicity of `exposed` and
    /// fan-out of the recursive `compromised` rule).
    pub acl_per_host: u64,
    /// Percentage of programs initially carrying a vulnerability.
    pub vuln_pct: u64,
    /// RNG seed for both the initial network and the edit stream.
    pub seed: u64,
}

impl AttackConfig {
    /// CI-sized instance: materializes and sweeps in seconds. Pools
    /// are sized so a 90%-delete stream never drains them (a drained
    /// pool degenerates batches into no-ops and flatters both
    /// backends equally).
    pub fn smoke() -> AttackConfig {
        AttackConfig {
            hosts: 70,
            programs: 40,
            services_per_host: 10,
            acl_per_host: 8,
            vuln_pct: 60,
            seed: 0xa77ac4,
        }
    }

    /// Full-size instance for the real A/B sweep.
    pub fn full() -> AttackConfig {
        AttackConfig {
            hosts: 200,
            programs: 120,
            services_per_host: 12,
            acl_per_host: 12,
            vuln_pct: 60,
            seed: 0xa77ac4,
        }
    }
}

/// One base predicate's fact pools: what is currently in the database
/// and what could be inserted. Edits move facts between the two, so
/// deletes always target present facts and inserts absent ones.
struct FactPool {
    pred: &'static str,
    present: Vec<Vec<String>>,
    absent: Vec<Vec<String>>,
}

impl FactPool {
    /// Fisher–Yates shuffle `universe`, then split: the first `keep`
    /// entries start present, the rest are the insert reservoir.
    fn new(pred: &'static str, mut universe: Vec<Vec<String>>, keep: usize, rng: &mut Lcg) -> FactPool {
        for i in (1..universe.len()).rev() {
            universe.swap(i, rng.next(i as u64 + 1) as usize);
        }
        let absent = universe.split_off(keep.min(universe.len()));
        FactPool {
            pred,
            present: universe,
            absent,
        }
    }
}

/// Deterministic edit-stream generator over a fixed attack-graph
/// program. Construct once, render [`AttackWorkload::program`], then
/// pull [`AttackWorkload::batch`]es.
pub struct AttackWorkload {
    rng: Lcg,
    pools: Vec<FactPool>,
    program: String,
}

/// The rule set shared by every generated instance. `two_hop` /
/// `wide_open` model indirect reachability: a large non-recursive
/// extent whose tuples each have many derivations (one per relay
/// host), i.e. exactly the shape where counting absorbs deletions
/// that DRed must overdelete and rederive.
pub const ATTACK_RULES: &str = "vulnerable(H) :- service(H, P), vuln(P).\n\
     exposed(D) :- hacl(S, D), vulnerable(D).\n\
     two_hop(S, D) :- hacl(S, M), hacl(M, D).\n\
     wide_open(D) :- two_hop(S, D), vulnerable(D).\n\
     compromised(H) :- attacker(H).\n\
     compromised(D) :- compromised(S), hacl(S, D), vulnerable(D).\n";

impl AttackWorkload {
    pub fn new(cfg: &AttackConfig) -> AttackWorkload {
        let mut rng = Lcg(cfg.seed | 1);
        // Universes: every (host, program) service, every ordered host
        // pair ACL (no self-loops), every program's vulnerability.
        let mut services = Vec::new();
        for h in 0..cfg.hosts {
            for p in 0..cfg.programs {
                services.push(vec![format!("h{h}"), format!("p{p}")]);
            }
        }
        let mut hacl = Vec::new();
        for s in 0..cfg.hosts {
            for d in 0..cfg.hosts {
                if s != d {
                    hacl.push(vec![format!("h{s}"), format!("h{d}")]);
                }
            }
        }
        let vulns: Vec<Vec<String>> = (0..cfg.programs).map(|p| vec![format!("p{p}")]).collect();

        let service_pool = FactPool::new(
            "service",
            services,
            (cfg.hosts * cfg.services_per_host) as usize,
            &mut rng,
        );
        let hacl_pool = FactPool::new(
            "hacl",
            hacl,
            (cfg.hosts * cfg.acl_per_host) as usize,
            &mut rng,
        );
        let vuln_pool = FactPool::new(
            "vuln",
            vulns,
            (cfg.programs * cfg.vuln_pct / 100) as usize,
            &mut rng,
        );

        let mut program = String::from(ATTACK_RULES);
        program.push_str("attacker(h0).\n");
        for pool in [&service_pool, &hacl_pool, &vuln_pool] {
            for args in &pool.present {
                program.push_str(&format!("{}({}).\n", pool.pred, args.join(", ")));
            }
        }
        AttackWorkload {
            rng,
            pools: vec![service_pool, hacl_pool, vuln_pool],
            program,
        }
    }

    /// The full Datalog source: rules plus the initial network.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Generate one update batch of `size` edits, `delete_pct`% of
    /// which are deletions (firewall flips, patches, service
    /// decommissions); the rest re-insert previously removed or fresh
    /// facts. Pools are kept consistent so the stream never deletes an
    /// absent fact or inserts a present one.
    pub fn batch(&mut self, size: usize, delete_pct: u64) -> Vec<FactEdit> {
        let mut edits = Vec::with_capacity(size);
        for _ in 0..size {
            let deleting = self.rng.next(100) < delete_pct;
            // Pick a pool whose relevant side is non-empty, starting
            // from a random kind so edits spread across predicates.
            let start = self.rng.next(self.pools.len() as u64) as usize;
            let mut chosen = None;
            for off in 0..self.pools.len() {
                let i = (start + off) % self.pools.len();
                let side = if deleting {
                    &self.pools[i].present
                } else {
                    &self.pools[i].absent
                };
                if !side.is_empty() {
                    chosen = Some(i);
                    break;
                }
            }
            let Some(i) = chosen else { continue };
            let pool = &mut self.pools[i];
            if deleting {
                let j = self.rng.next(pool.present.len() as u64) as usize;
                let args = pool.present.swap_remove(j);
                let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                edits.push(FactEdit::remove(pool.pred, &refs));
                pool.absent.push(args);
            } else {
                let j = self.rng.next(pool.absent.len() as u64) as usize;
                let args = pool.absent.swap_remove(j);
                let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                edits.push(FactEdit::add(pool.pred, &refs));
                pool.present.push(args);
            }
        }
        edits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_datalog::IncrementalEngine;
    use incr_sched::SchedulerKind;

    #[test]
    fn same_seed_same_stream() {
        let cfg = AttackConfig::smoke();
        let mut a = AttackWorkload::new(&cfg);
        let mut b = AttackWorkload::new(&cfg);
        assert_eq!(a.program(), b.program());
        for _ in 0..5 {
            let ea = format!("{:?}", a.batch(20, 70));
            let eb = format!("{:?}", b.batch(20, 70));
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn delete_ratio_roughly_holds() {
        let cfg = AttackConfig::smoke();
        let mut w = AttackWorkload::new(&cfg);
        let edits = w.batch(400, 90);
        let dels = edits
            .iter()
            .filter(|e| matches!(e, FactEdit::Remove { .. }))
            .count();
        assert!(dels >= 320, "expected ~90% deletions, got {dels}/400");
    }

    #[test]
    fn program_materializes_and_maintains() {
        let cfg = AttackConfig {
            hosts: 12,
            programs: 8,
            services_per_host: 3,
            acl_per_host: 3,
            vuln_pct: 50,
            seed: 7,
        };
        let mut w = AttackWorkload::new(&cfg);
        let mut engine = IncrementalEngine::new(w.program()).unwrap();
        assert!(engine.count("compromised") >= 1, "attacker(h0) holds");
        let mut sched = SchedulerKind::LevelBased.build(engine.dag().clone());
        for _ in 0..4 {
            let edits = w.batch(10, 80);
            engine.update(sched.as_mut(), &edits).unwrap();
        }
        // The maintained database must match recomputation from the
        // current present pools.
        let mut src = String::from(ATTACK_RULES);
        src.push_str("attacker(h0).\n");
        for pool in &w.pools {
            for args in &pool.present {
                src.push_str(&format!("{}({}).\n", pool.pred, args.join(", ")));
            }
        }
        let fresh = IncrementalEngine::new(&src).unwrap();
        for pred in ["vulnerable", "exposed", "two_hop", "wide_open", "compromised"] {
            assert_eq!(
                engine.count(pred),
                fresh.count(pred),
                "{pred} diverged from recomputation"
            );
        }
    }
}
