//! Criterion check that observability is free when off: drive the same
//! scheduler over the same instance plain, wrapped in [`Observed`] with
//! tracing *disabled*, and wrapped with tracing *enabled*.
//!
//! The disabled-wrapped case must sit on top of the plain case — the
//! wrapper then costs three relaxed atomic adds per protocol call plus
//! one relaxed load per skipped emit site. The enabled case shows the
//! real price of recording (buffer pushes, gauge sampling), which only
//! the `dlsched trace` path ever pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incr_obs::trace;
use incr_sched::{Instance, Observed, Scheduler, SchedulerKind};
use incr_traces::{generate, preset};
use std::collections::VecDeque;

/// Same in-memory environment as `sched_overhead`: 8 in-flight slots.
fn drive(s: &mut dyn Scheduler, inst: &Instance) -> usize {
    s.start(&inst.initial_active);
    let mut in_flight: VecDeque<incr_dag::NodeId> = VecDeque::new();
    let mut executed = 0;
    loop {
        while in_flight.len() < 8 {
            match s.pop_ready() {
                Some(t) => in_flight.push_back(t),
                None => break,
            }
        }
        let Some(t) = in_flight.pop_front() else { break };
        executed += 1;
        s.on_completed(t, &inst.fired[t.index()]);
    }
    executed
}

fn bench_observed(c: &mut Criterion) {
    let spec = preset(5); // 1.7k nodes, ~300 active
    let (inst, _) = generate(&spec);
    let mut g = c.benchmark_group("observed_trace5");
    let kind = SchedulerKind::Hybrid;

    trace::disable();
    g.bench_function(BenchmarkId::from_parameter("plain"), |b| {
        let mut s = kind.build(inst.dag.clone());
        b.iter(|| {
            let n = drive(s.as_mut(), &inst);
            std::hint::black_box(n)
        });
    });
    g.bench_function(BenchmarkId::from_parameter("observed, tracing off"), |b| {
        let mut s = Observed::new(kind.build(inst.dag.clone()));
        b.iter(|| {
            let n = drive(&mut s, &inst);
            std::hint::black_box(n)
        });
    });
    g.bench_function(BenchmarkId::from_parameter("observed, tracing on"), |b| {
        let mut s = Observed::new(kind.build(inst.dag.clone()));
        b.iter(|| {
            trace::enable();
            let n = drive(&mut s, &inst);
            trace::disable();
            trace::clear();
            std::hint::black_box(n)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_observed);
criterion_main!(benches);
