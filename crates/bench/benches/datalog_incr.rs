//! Criterion micro-benchmarks for the Datalog substrate: incremental
//! maintenance versus recomputation from scratch — the reason incremental
//! computing matters at all (paper §I: "avoid redoing those parts of the
//! computation that have not been affected").

use criterion::{criterion_group, criterion_main, Criterion};
use incr_datalog::{EvalOptions, FactEdit, IncrementalEngine};
use incr_sched::{LevelBased, Scheduler};

/// Transitive closure over a grid-ish edge set.
fn program(n: u32) -> String {
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n",
    );
    // A chain of n nodes with a few shortcuts: closure is Θ(n²) facts.
    for i in 0..n {
        src.push_str(&format!("edge(v{}, v{}).\n", i, i + 1));
        if i % 7 == 0 && i + 3 <= n {
            src.push_str(&format!("edge(v{}, v{}).\n", i, i + 3));
        }
    }
    src
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let src = program(60);
    let mut g = c.benchmark_group("tc_chain60_one_edge_insert");
    g.sample_size(10);

    g.bench_function("full_rematerialization", |b| {
        b.iter(|| {
            let engine =
                IncrementalEngine::new(&format!("{src}edge(v5, v40).")).expect("valid program");
            std::hint::black_box(engine.count("path"))
        })
    });

    g.bench_function("incremental_update", |b| {
        b.iter_with_setup(
            || {
                let engine = IncrementalEngine::new(&src).expect("valid program");
                let sched = LevelBased::new(engine.dag().clone());
                (engine, sched)
            },
            |(mut engine, mut sched)| {
                engine
                    .update(&mut sched, &[FactEdit::add("edge", &["v5", "v40"])])
                    .expect("update applies");
                std::hint::black_box(engine.count("path"))
            },
        )
    });

    g.finish();
}

fn bench_scheduler_inside_engine(c: &mut Criterion) {
    // Wide program: many independent derived predicates so the scheduler
    // has real parallel structure to manage.
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!("out{i}(X) :- in{i}(X).\n"));
        src.push_str(&format!("agg{i}(X) :- out{i}(X), flag(X).\n"));
        src.push_str(&format!("in{i}(seed).\n"));
    }
    src.push_str("flag(seed).\n");
    let mut g = c.benchmark_group("engine_wide_update");
    g.sample_size(10);
    for kind in ["LevelBased", "LogicBlox", "Hybrid"] {
        g.bench_function(kind, |b| {
            b.iter_with_setup(
                || {
                    let engine = IncrementalEngine::new(&src).expect("valid program");
                    let dag = engine.dag().clone();
                    let sched: Box<dyn Scheduler> = match kind {
                        "LevelBased" => Box::new(incr_sched::LevelBased::new(dag)),
                        "LogicBlox" => Box::new(incr_sched::LogicBlox::new(dag)),
                        _ => Box::new(incr_sched::Hybrid::new(dag)),
                    };
                    (engine, sched)
                },
                |(mut engine, mut sched)| {
                    let edits: Vec<FactEdit> = (0..40)
                        .map(|i| FactEdit::add(&format!("in{i}"), &["fresh"]))
                        .collect();
                    let rep = engine.update(sched.as_mut(), &edits).expect("update");
                    std::hint::black_box(rep.tasks_executed)
                },
            )
        });
    }
    g.finish();
}

/// Ring + random shortcuts: one big SCC whose closure is n² facts, so
/// semi-naive rounds carry large deltas (the workload `datalog_perf`
/// measures end to end).
fn big_tc_program(n: u64) -> String {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rand = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(v{i}, v{}).\n", (i + 1) % n));
        src.push_str(&format!("edge(v{i}, v{}).\n", rand(n)));
    }
    src
}

fn bench_large_tc_update(c: &mut Criterion) {
    let n = 300u64;
    let src = big_tc_program(n);
    let mut g = c.benchmark_group("tc300_ten_edge_insert");
    g.sample_size(10);
    for (label, threads) in [("threads1", 1usize), ("threads4", 4usize)] {
        g.bench_function(label, |b| {
            b.iter_with_setup(
                || {
                    let engine =
                        IncrementalEngine::with_options(&src, EvalOptions::with_threads(threads))
                            .expect("valid program");
                    let sched = LevelBased::new(engine.dag().clone());
                    (engine, sched)
                },
                |(mut engine, mut sched)| {
                    let edits: Vec<FactEdit> = (0..10)
                        .map(|j| {
                            let i = j * (n / 10);
                            FactEdit::add(
                                "edge",
                                &[&format!("v{i}"), &format!("v{}", (i + n / 2) % n)],
                            )
                        })
                        .collect();
                    engine.update(&mut sched, &edits).expect("update");
                    std::hint::black_box(engine.count("path"))
                },
            )
        });
    }
    g.finish();
}

fn bench_multi_bound_join(c: &mut Criterion) {
    // `link`'s first column is unbound at probe time: the auto planner
    // uses the [1, 2] index while the legacy heuristic would scan.
    let rows = 800u64;
    let mut state = 0x51a7b2c93d4e5f60u64;
    let mut rand = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut src = String::from("joined(A, D) :- fact3(A, B, C), link(D, B, C).\n");
    for i in 0..rows {
        src.push_str(&format!("fact3(a{i}, b{}, c{}).\n", rand(40), rand(40)));
        src.push_str(&format!("link(d{i}, b{}, c{}).\n", rand(40), rand(40)));
    }
    let mut g = c.benchmark_group("multi_bound_join_800");
    g.sample_size(10);
    g.bench_function("materialize", |b| {
        b.iter(|| {
            let engine = IncrementalEngine::with_options(&src, EvalOptions::sequential())
                .expect("valid program");
            std::hint::black_box(engine.count("joined"))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_incremental_vs_full,
    bench_scheduler_inside_engine,
    bench_large_tc_update,
    bench_multi_bound_join
);
criterion_main!(benches);
