//! Criterion micro-benchmarks for the MVCC read path: what a query
//! costs at head, through a pinned snapshot, and what pinning itself
//! costs. The epoch visibility filter is one `u64` compare per row, so
//! head and snapshot reads should sit within noise of each other — this
//! group is the regression tripwire for that claim.

use criterion::{criterion_group, criterion_main, Criterion};
use incr_datalog::{FactEdit, IncrementalEngine};
use incr_sched::LevelBased;

/// Chain + shortcuts transitive closure, with one committed update so
/// the arena holds real tombstones (the read path must filter them, not
/// just fresh rows).
fn churned_engine(n: u32) -> IncrementalEngine {
    let mut src = String::from(
        "path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- path(X, Y), edge(Y, Z).\n",
    );
    for i in 0..n {
        src.push_str(&format!("edge(v{}, v{}).\n", i, i + 1));
        if i % 5 == 0 {
            src.push_str(&format!("edge(v{}, v{}).\n", i, (i + 7) % (n + 1)));
        }
    }
    let mut e = IncrementalEngine::new(&src).expect("valid program");
    let mut s = LevelBased::new(e.dag().clone());
    e.update(&mut s, &[FactEdit::remove("edge", &["v10", "v11"])])
        .expect("update");
    e
}

fn bench_read_path(c: &mut Criterion) {
    let e = churned_engine(80);
    // Keep one old epoch pinned throughout: the arena retains its
    // tombstones, so visibility filtering has dead rows to skip.
    let pinned = e.begin_snapshot();
    let mut g = c.benchmark_group("read_path");
    g.sample_size(20);

    g.bench_function("head_scan_query", |b| {
        b.iter(|| std::hint::black_box(e.query("path(v0, ?)").expect("query")))
    });

    g.bench_function("snapshot_scan_query", |b| {
        let snap = e.begin_snapshot();
        b.iter(|| std::hint::black_box(snap.query("path(v0, ?)").expect("query")))
    });

    g.bench_function("snapshot_point_lookup", |b| {
        let snap = e.begin_snapshot();
        b.iter(|| std::hint::black_box(snap.has("path", &["v0", "v40"])))
    });

    g.bench_function("pin_unpin", |b| {
        let reader = e.reader();
        b.iter(|| std::hint::black_box(reader.snapshot().epoch()))
    });

    drop(pinned);
    g.finish();
}

criterion_group!(benches, bench_read_path);
criterion_main!(benches);
