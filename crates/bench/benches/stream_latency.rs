//! Criterion micro-benchmarks for the stream fast path: a closed-loop
//! backlog of 1-tuple updates driven through `run_stream_with` under the
//! serial, pipelined and coalesced admission policies, plus the raw
//! `DeltaQueue` merge throughput. The `stream_latency` bin produces the
//! machine-readable percentile sweep; these give statistically solid
//! point comparisons for the admission layer itself.

use criterion::{criterion_group, criterion_main, Criterion};
use incr_dag::{random, Dag, NodeId};
use incr_datalog::{DeltaQueue, FactEdit};
use incr_runtime::{infallible, Executor, StreamPolicy, StreamUpdate, TaskFn};
use incr_sched::LevelBased;
use std::sync::Arc;

fn bench_dag() -> Arc<Dag> {
    Arc::new(random::layered(random::LayeredParams {
        layers: 6,
        width: 200,
        max_in: 4,
        back_span: 2,
        seed: 23,
    }))
}

/// 200 backlogged 1-node updates through each admission policy, 4 workers.
fn bench_stream_policies(c: &mut Criterion) {
    let dag = bench_dag();
    let task: TaskFn = {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| {
            if let Some(&ch) = dag.children(v).first() {
                fired.push(ch);
            }
        })
    };
    let updates: Vec<StreamUpdate> = (0..200)
        .map(|i| StreamUpdate::now(vec![NodeId(i % 200)]))
        .collect();
    let mut g = c.benchmark_group("stream_200_updates");
    g.sample_size(20);
    for (label, policy) in [
        ("serial", StreamPolicy::serial()),
        ("pipelined", StreamPolicy::pipelined()),
        ("coalesced_32", StreamPolicy::coalesced(32)),
    ] {
        let exec = Executor::new(4);
        let mut sched = LevelBased::new(dag.clone());
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = exec
                    .run_stream_with(
                        &mut sched,
                        &dag,
                        &updates,
                        infallible(task.clone()),
                        &policy,
                        None,
                    )
                    .unwrap();
                std::hint::black_box(r.updates)
            });
        });
    }
    g.finish();
}

/// Pure queue layer: merging a churny edit stream (repeated insert/delete
/// of the same keys) into a net delta, no engine or threads.
fn bench_delta_queue(c: &mut Criterion) {
    let edits: Vec<FactEdit> = (0..1000)
        .map(|i| {
            let a = format!("v{}", i % 50);
            let b = format!("v{}", (i + 1) % 50);
            if i % 3 == 2 {
                FactEdit::remove("edge", &[&a, &b])
            } else {
                FactEdit::add("edge", &[&a, &b])
            }
        })
        .collect();
    c.bench_function("delta_queue_merge_1k", |b| {
        b.iter(|| {
            let mut q = DeltaQueue::new();
            for e in &edits {
                q.push(e.clone());
            }
            q.end_update();
            let (net, updates) = q.drain();
            std::hint::black_box((net.len(), updates))
        });
    });
}

criterion_group!(benches, bench_stream_policies, bench_delta_queue);
criterion_main!(benches);
