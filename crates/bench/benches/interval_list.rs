//! Criterion micro-benchmarks for the interval-list transitive closure:
//! construction cost, query cost vs ground-truth BFS, and the compaction
//! ablation (DESIGN.md §6.4 — how much the interval merge saves).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incr_dag::random::{self, LayeredParams};
use incr_dag::{reach, IntervalList, NodeId};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("interval_build");
    g.sample_size(10);
    for &(layers, width) in &[(20u32, 50u32), (50, 100), (100, 200)] {
        let dag = random::layered(LayeredParams {
            layers,
            width,
            max_in: 3,
            back_span: 3,
            seed: 11,
        });
        g.bench_function(
            BenchmarkId::from_parameter(format!("{}x{}", layers, width)),
            |b| b.iter(|| std::hint::black_box(IntervalList::build(&dag).total_intervals())),
        );
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let dag = random::layered(LayeredParams {
        layers: 60,
        width: 60,
        max_in: 3,
        back_span: 4,
        seed: 3,
    });
    let il = IntervalList::build(&dag);
    let pairs: Vec<(NodeId, NodeId)> = (0..1000u32)
        .map(|i| {
            (
                NodeId((i * 37) % dag.node_count() as u32),
                NodeId((i * 101 + 13) % dag.node_count() as u32),
            )
        })
        .collect();
    let mut g = c.benchmark_group("ancestor_query_1k_pairs");
    g.bench_function("interval_list", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(a, d) in &pairs {
                hits += u32::from(il.is_ancestor(a, d));
            }
            std::hint::black_box(hits)
        })
    });
    g.bench_function("bfs_ground_truth", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for &(a, d) in &pairs {
                hits += u32::from(reach::is_ancestor(&dag, a, d));
            }
            std::hint::black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
