//! Criterion micro-benchmarks for the executor dispatch core: the batched
//! scheduler→worker pipeline vs the legacy per-task path on real threads,
//! and the batched scheduler protocol (`pop_batch`/`complete_batch`) vs
//! one-call-per-task on a pure in-memory drive. The `exec_throughput` bin
//! produces the machine-readable sweep; these give statistically solid
//! point comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use incr_dag::{random, Dag, NodeId};
use incr_runtime::{ExecConfig, Executor, TaskFn};
use incr_sched::{CompletionBatch, LevelBased, Scheduler};
use std::sync::Arc;

fn bench_dag() -> Arc<Dag> {
    Arc::new(random::layered(random::LayeredParams {
        layers: 25,
        width: 80,
        max_in: 4,
        back_span: 2,
        seed: 7,
    }))
}

/// Real threads: full run of a 2k-node fire-all update, batched vs
/// per-task dispatch, 4 workers.
fn bench_executor_modes(c: &mut Criterion) {
    let dag = bench_dag();
    let initial: Vec<NodeId> = dag.sources().collect();
    let task: TaskFn = {
        let dag = dag.clone();
        Arc::new(move |v, fired: &mut Vec<NodeId>| fired.extend_from_slice(dag.children(v)))
    };
    let mut g = c.benchmark_group("executor_2k_tasks");
    g.sample_size(20);
    for (label, per_task) in [("batched", false), ("per_task", true)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = ExecConfig::new(4);
                cfg.per_task = per_task;
                let mut s = LevelBased::new(dag.clone());
                let r = Executor::with_config(cfg)
                    .run(&mut s, &dag, &initial, task.clone())
                    .unwrap();
                std::hint::black_box(r.executed)
            });
        });
    }
    g.finish();
}

/// No threads: the scheduler protocol alone. Batched calls amortize the
/// per-call virtual dispatch and cursor re-entry.
fn bench_protocol(c: &mut Criterion) {
    let dag = bench_dag();
    let initial: Vec<NodeId> = dag.sources().collect();
    let fired: Vec<Vec<NodeId>> = dag.nodes().map(|v| dag.children(v).to_vec()).collect();
    let mut g = c.benchmark_group("protocol_2k_tasks");
    g.bench_function("serial_calls", |b| {
        let mut s = LevelBased::new(dag.clone());
        b.iter(|| {
            s.start(&initial);
            let mut n = 0usize;
            while let Some(t) = s.pop_ready() {
                s.on_completed(t, &fired[t.index()]);
                n += 1;
            }
            std::hint::black_box(n)
        });
    });
    g.bench_function("batched_calls", |b| {
        let mut s = LevelBased::new(dag.clone());
        let mut buf = Vec::new();
        let mut done = CompletionBatch::new();
        b.iter(|| {
            s.start(&initial);
            let mut n = 0usize;
            loop {
                buf.clear();
                if s.pop_batch(&mut buf, 256) == 0 {
                    break;
                }
                done.clear();
                for &t in &buf {
                    done.push(t, &fired[t.index()]);
                    n += 1;
                }
                s.complete_batch(&done);
            }
            std::hint::black_box(n)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_executor_modes, bench_protocol);
criterion_main!(benches);
