//! Criterion micro-benchmarks: real (wall-clock) scheduling throughput of
//! each scheduler on a fixed mid-size instance.
//!
//! These complement the simulated-cost numbers of Tables II/III: they
//! measure how fast *our implementations* make decisions, confirming that
//! the LevelBased scheduler is lightweight in practice ("requires little
//! to no overhead", abstract) and that the LogicBlox scan is the
//! expensive step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use incr_sched::{Instance, Scheduler, SchedulerKind};
use incr_traces::adversarial::lbx_cubic;
use incr_traces::{generate, preset};
use std::collections::VecDeque;

/// Drive a scheduler over an instance with an in-memory environment
/// (8 in-flight slots, FIFO completion) and return executed count.
fn drive(s: &mut dyn Scheduler, inst: &Instance) -> usize {
    s.start(&inst.initial_active);
    let mut in_flight: VecDeque<incr_dag::NodeId> = VecDeque::new();
    let mut executed = 0;
    loop {
        while in_flight.len() < 8 {
            match s.pop_ready() {
                Some(t) => in_flight.push_back(t),
                None => break,
            }
        }
        let Some(t) = in_flight.pop_front() else { break };
        executed += 1;
        s.on_completed(t, &inst.fired[t.index()]);
    }
    executed
}

fn bench_schedulers(c: &mut Criterion) {
    let spec = preset(5); // 1.7k nodes, ~300 active: fast enough to iterate
    let (inst, _) = generate(&spec);
    let mut g = c.benchmark_group("drive_trace5");
    for kind in [
        SchedulerKind::LevelBased,
        SchedulerKind::Lookahead(10),
        SchedulerKind::LogicBlox,
        SchedulerKind::SignalPropagation,
        SchedulerKind::Hybrid,
    ] {
        g.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut s = kind.build(inst.dag.clone());
            b.iter(|| {
                let n = drive(s.as_mut(), &inst);
                std::hint::black_box(n)
            });
        });
    }
    g.finish();
}

fn bench_worst_case(c: &mut Criterion) {
    let inst = lbx_cubic(300);
    let mut g = c.benchmark_group("chain_fan_300");
    g.sample_size(10);
    for kind in [SchedulerKind::LevelBased, SchedulerKind::LogicBlox] {
        g.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            let mut s = kind.build(inst.dag.clone());
            b.iter(|| {
                let n = drive(s.as_mut(), &inst);
                std::hint::black_box(n)
            });
        });
    }
    g.finish();
}

fn bench_precompute(c: &mut Criterion) {
    let spec = preset(3);
    let (inst, _) = generate(&spec);
    let mut g = c.benchmark_group("precompute_trace3");
    g.sample_size(10);
    g.bench_function("levels (LevelBased)", |b| {
        b.iter(|| std::hint::black_box(incr_dag::levels::peel_levels(&inst.dag)))
    });
    g.bench_function("interval lists (LogicBlox)", |b| {
        b.iter(|| std::hint::black_box(incr_dag::IntervalList::build(&inst.dag).total_intervals()))
    });
    g.finish();
}

criterion_group!(benches, bench_schedulers, bench_worst_case, bench_precompute);
criterion_main!(benches);
