//! `incr-obs`: zero-dependency observability for the scheduling stack.
//!
//! Three pieces, all usable independently:
//!
//! * [`metrics`] — atomic [`Counter`]s, peak-tracking [`Gauge`]s and
//!   log₂ [`Histogram`]s behind a process-global named [`Registry`].
//! * [`trace`] — span/instant/counter events recorded into per-thread
//!   buffers. Recording is gated on one relaxed atomic load, so with
//!   tracing disabled ([`trace::enabled`] == false, the default) every
//!   instrumentation point is a near-free no-op. Events carry either a
//!   real wall-clock timestamp or an explicit *simulated* timestamp
//!   ([`Track::Sim`]), letting one trace file show the simulated
//!   makespan and the real scheduler wall-clock side by side.
//! * [`export`] — Chrome trace-event JSON (loadable in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`), flat
//!   JSONL, and a structural validator used by tests and CI.
//!
//! Two always-on production layers sit alongside them:
//!
//! * [`flight`] — a flight recorder: fixed-capacity per-thread lock-free
//!   ring buffers of recent coded events (a few relaxed stores each, no
//!   allocation), dumped to a valid Perfetto "black box" file when the
//!   executor fails. On by default, unlike [`trace`].
//! * [`slo`] — rolling-window p50/p95/p99 sojourn tracking against a
//!   stream latency budget, with burn-rate accounting for admission
//!   control.
//!
//! [`json`] is the hand-rolled JSON value/parser/serializer that backs
//! the exporters; other crates in the workspace reuse it instead of
//! pulling in serde.
//!
//! Typical use:
//!
//! ```
//! incr_obs::trace::enable();
//! {
//!     let _span = incr_obs::trace::span("pop_ready", "sched");
//!     // ... work ...
//! }
//! incr_obs::registry().counter("sched.pops").inc();
//! let threads = incr_obs::trace::drain();
//! let json = incr_obs::export::chrome_trace_json(&threads);
//! assert!(incr_obs::export::validate_chrome_trace(&json).is_ok());
//! incr_obs::trace::disable();
//! ```

pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use json::Json;
pub use metrics::{registry, Counter, Gauge, Histogram, Registry};
pub use trace::{SpanGuard, Track};
