//! Rolling-window SLO tracking for stream sojourn latency.
//!
//! The stream path promises each admitted update a sojourn bound
//! (`StreamPolicy::latency_budget`). This module keeps an always-on,
//! lock-free rolling window of recent sojourn samples and derives the
//! signals a front door needs for admission control:
//!
//! * windowed p50/p95/p99/max sojourn (exact over the window — the
//!   window is a few thousand samples, sorted only at snapshot time);
//! * a **burn rate**: the fraction of the window over budget. A burn
//!   rate near 0 means the budget is comfortable; sustained burn near 1
//!   means the stream is eating its error budget and admission should
//!   back off.
//!
//! Recording is three relaxed atomic ops; snapshots copy and sort the
//! window (cold path: periodic export, `dlsched top` repaints).

use crate::json::{obj, Json};
use crate::metrics::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default rolling-window size (samples).
pub const DEFAULT_WINDOW: usize = 1024;

/// Lock-free rolling window of sojourn samples plus budget accounting.
pub struct SloTracker {
    /// Latency budget in ns; 0 means "no budget set".
    budget_ns: AtomicU64,
    samples: Box<[AtomicU64]>,
    /// Total samples ever recorded (window writes wrap modulo len).
    head: AtomicU64,
    /// Total samples ever over budget.
    over_total: AtomicU64,
}

impl SloTracker {
    pub fn new(window: usize) -> SloTracker {
        SloTracker {
            budget_ns: AtomicU64::new(0),
            samples: (0..window.max(1)).map(|_| AtomicU64::new(0)).collect(),
            head: AtomicU64::new(0),
            over_total: AtomicU64::new(0),
        }
    }

    /// Set the budget (ns). Zero disables over-budget accounting.
    pub fn set_budget_ns(&self, budget_ns: u64) {
        self.budget_ns.store(budget_ns, Ordering::Relaxed);
    }

    pub fn budget_ns(&self) -> u64 {
        self.budget_ns.load(Ordering::Relaxed)
    }

    /// Record one sojourn sample. Returns whether it blew the budget.
    pub fn record(&self, sojourn_ns: u64) -> bool {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize;
        self.samples[i % self.samples.len()].store(sojourn_ns, Ordering::Relaxed);
        let budget = self.budget_ns();
        let over = budget > 0 && sojourn_ns > budget;
        if over {
            self.over_total.fetch_add(1, Ordering::Relaxed);
        }
        over
    }

    /// Total samples ever recorded.
    pub fn total(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Total samples ever over budget.
    pub fn over_budget_total(&self) -> u64 {
        self.over_total.load(Ordering::Relaxed)
    }

    /// Forget everything (bench/test isolation).
    pub fn reset(&self) {
        self.head.store(0, Ordering::Relaxed);
        self.over_total.store(0, Ordering::Relaxed);
        for s in self.samples.iter() {
            s.store(0, Ordering::Relaxed);
        }
    }

    /// Copy + sort the current window and derive percentiles/burn rate.
    /// Concurrent writers may tear individual slots (a sample from two
    /// different updates); percentiles over a rolling window are
    /// statistical by nature, so that is acceptable.
    pub fn snapshot(&self) -> SloSnapshot {
        let total = self.total();
        let n = (total as usize).min(self.samples.len());
        let mut window: Vec<u64> = self.samples[..n]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        window.sort_unstable();
        let budget = self.budget_ns();
        let over_in_window = if budget > 0 {
            // sorted: count of samples strictly above budget
            window.len() - window.partition_point(|&v| v <= budget)
        } else {
            0
        };
        let pct = |q: f64| -> u64 {
            if window.is_empty() {
                0
            } else {
                let idx = ((q * window.len() as f64).ceil() as usize).max(1) - 1;
                window[idx.min(window.len() - 1)]
            }
        };
        SloSnapshot {
            total,
            over_budget_total: self.over_budget_total(),
            window_len: window.len(),
            window_over_budget: over_in_window as u64,
            burn_rate: if window.is_empty() {
                0.0
            } else {
                over_in_window as f64 / window.len() as f64
            },
            budget_ns: budget,
            p50_ns: pct(0.50),
            p95_ns: pct(0.95),
            p99_ns: pct(0.99),
            max_ns: window.last().copied().unwrap_or(0),
            mean_ns: if window.is_empty() {
                0.0
            } else {
                window.iter().sum::<u64>() as f64 / window.len() as f64
            },
        }
    }
}

/// A point-in-time SLO reading over the rolling window.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSnapshot {
    pub total: u64,
    pub over_budget_total: u64,
    pub window_len: usize,
    pub window_over_budget: u64,
    /// Fraction of the window over budget, 0..=1 (0 when no budget).
    pub burn_rate: f64,
    pub budget_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    pub mean_ns: f64,
}

impl SloSnapshot {
    /// Machine-readable form (`stream.slo.*` export).
    pub fn to_json(&self) -> Json {
        obj([
            ("total", self.total.into()),
            ("over_budget_total", self.over_budget_total.into()),
            ("window_len", self.window_len.into()),
            ("window_over_budget", self.window_over_budget.into()),
            ("burn_rate", self.burn_rate.into()),
            ("budget_ns", self.budget_ns.into()),
            ("p50_ns", self.p50_ns.into()),
            ("p95_ns", self.p95_ns.into()),
            ("p99_ns", self.p99_ns.into()),
            ("max_ns", self.max_ns.into()),
            ("mean_ns", self.mean_ns.into()),
        ])
    }

    /// Publish into a registry as `stream.slo.*` gauges (µs / percent),
    /// so registry snapshots and `dlsched top` see the latest reading.
    pub fn publish(&self, registry: &Registry) {
        registry
            .gauge("stream.slo.p50_us")
            .set((self.p50_ns / 1_000) as i64);
        registry
            .gauge("stream.slo.p95_us")
            .set((self.p95_ns / 1_000) as i64);
        registry
            .gauge("stream.slo.p99_us")
            .set((self.p99_ns / 1_000) as i64);
        registry
            .gauge("stream.slo.burn_pct")
            .set((self.burn_rate * 100.0).round() as i64);
        registry
            .gauge("stream.slo.budget_us")
            .set((self.budget_ns / 1_000) as i64);
    }
}

/// The process-global stream SLO tracker, fed by the executor's stream
/// loop and read by exporters and `dlsched top`.
pub fn stream_tracker() -> &'static SloTracker {
    static TRACKER: OnceLock<SloTracker> = OnceLock::new();
    TRACKER.get_or_init(|| SloTracker::new(DEFAULT_WINDOW))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_distribution() {
        let t = SloTracker::new(100);
        for v in 1..=100u64 {
            t.record(v * 1_000);
        }
        let s = t.snapshot();
        assert_eq!(s.window_len, 100);
        assert_eq!(s.p50_ns, 50_000);
        assert_eq!(s.p95_ns, 95_000);
        assert_eq!(s.p99_ns, 99_000);
        assert_eq!(s.max_ns, 100_000);
        assert!((s.mean_ns - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn burn_rate_tracks_budget_violations() {
        let t = SloTracker::new(10);
        t.set_budget_ns(5_000);
        for v in [1_000u64, 2_000, 3_000, 6_000, 7_000] {
            t.record(v);
        }
        let s = t.snapshot();
        assert_eq!(s.window_over_budget, 2);
        assert_eq!(s.over_budget_total, 2);
        assert!((s.burn_rate - 0.4).abs() < 1e-9);
        // No budget -> no burn.
        let free = SloTracker::new(10);
        free.record(1_000_000);
        assert_eq!(free.snapshot().burn_rate, 0.0);
    }

    #[test]
    fn window_wraps_and_keeps_recent_shape() {
        let t = SloTracker::new(8);
        for _ in 0..100 {
            t.record(1_000);
        }
        for _ in 0..8 {
            t.record(9_000);
        }
        let s = t.snapshot();
        assert_eq!(s.total, 108);
        assert_eq!(s.window_len, 8);
        assert_eq!(s.p50_ns, 9_000, "window must reflect only recent samples");
    }

    #[test]
    fn snapshot_json_and_publish() {
        let t = SloTracker::new(16);
        t.set_budget_ns(2_000_000);
        t.record(1_000_000);
        t.record(3_000_000);
        let s = t.snapshot();
        let json = s.to_json();
        let back = Json::parse(&json.to_json()).unwrap();
        assert_eq!(back.get("window_len").unwrap().as_u64(), Some(2));
        assert_eq!(back.get("window_over_budget").unwrap().as_u64(), Some(1));
        let r = Registry::new();
        s.publish(&r);
        assert_eq!(r.gauge("stream.slo.p99_us").get(), 3_000);
        assert_eq!(r.gauge("stream.slo.burn_pct").get(), 50);
        assert_eq!(r.gauge("stream.slo.budget_us").get(), 2_000);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = std::sync::Arc::new(SloTracker::new(64));
        t.set_budget_ns(1);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..10_000u64 {
                    t.record(v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.total(), 40_000);
        let s = t.snapshot();
        assert_eq!(s.window_len, 64);
    }
}
