//! Cheap atomic metrics: counters, gauges (with peak tracking) and
//! log₂-bucketed histograms, plus a process-global named registry.
//!
//! Everything is lock-free on the hot path (`Relaxed` atomics); the
//! registry takes a lock only on registration and snapshot. Metrics stay
//! live for the process lifetime — handles are `Arc`s that can be cached
//! by the instrumented code.

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, frontier index, …) tracking two
/// peaks: a *window* peak that instrumentation resets at update
/// boundaries ([`Gauge::reset_peak`] / [`Registry::reset_gauge_peaks`]),
/// and a process-lifetime peak that never resets. Per-update snapshots
/// read `peak`; capacity planning reads `lifetime_peak`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
    lifetime_peak: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
        self.lifetime_peak.fetch_max(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        let v = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(v, Ordering::Relaxed);
        self.lifetime_peak.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value since the last [`Gauge::reset_peak`] (0 if never
    /// above zero in the window).
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Highest value over the process lifetime; never reset by window
    /// boundaries (only by [`Registry::reset`]).
    pub fn lifetime_peak(&self) -> i64 {
        self.lifetime_peak.load(Ordering::Relaxed)
    }

    /// Start a new peak window: the peak restarts from the *current*
    /// level (a backlog present at the boundary is still this window's
    /// floor), not from zero.
    pub fn reset_peak(&self) {
        self.peak.store(self.get(), Ordering::Relaxed);
    }
}

/// Histogram over `u64` samples with power-of-two buckets: bucket `i`
/// counts samples whose highest set bit is `i` (bucket 0 additionally
/// holds zeros). 65 slots cover the full domain.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs in ascending
    /// bound order. The order is a function of the bucket layout alone —
    /// never of recording or merge order across worker threads — so JSON
    /// exports embedding it are byte-stable run to run for equal counts.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    None
                } else {
                    Some((bucket_bound(i), n))
                }
            })
            .collect()
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1) — a
    /// factor-of-two estimate, which is enough to spot tail blow-ups.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target.max(1) {
                return bucket_bound(i);
            }
        }
        u64::MAX
    }
}

/// Upper bound of log₂ bucket `i` (the top bucket is unbounded).
fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        1..=63 => 1u64 << i,
        _ => u64::MAX,
    }
}

/// A named collection of metrics. One process-global instance lives
/// behind [`registry`]; tests can build private ones.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// One JSON object per metric kind: counters as totals, gauges as
    /// `{current, peak, lifetime_peak}`, histograms as summary stats
    /// plus their non-empty buckets in ascending-bound (deterministic)
    /// order. Map keys are BTreeMap-sorted, so two snapshots with equal
    /// metric values serialize to identical bytes regardless of thread
    /// interleaving.
    pub fn snapshot(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get().into()))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    obj([
                        ("current", g.get().into()),
                        ("peak", g.peak().into()),
                        ("lifetime_peak", g.lifetime_peak().into()),
                    ]),
                )
            })
            .collect();
        let histograms: Vec<(String, Json)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<Json> = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(bound, n)| Json::Arr(vec![bound.into(), n.into()]))
                    .collect();
                (
                    k.clone(),
                    obj([
                        ("count", h.count().into()),
                        ("sum", h.sum().into()),
                        ("mean", h.mean().into()),
                        ("p50_bound", h.quantile_bound(0.5).into()),
                        ("p95_bound", h.quantile_bound(0.95).into()),
                        ("p99_bound", h.quantile_bound(0.99).into()),
                        ("buckets", Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }

    /// Start a new peak window on every gauge (called by the executor at
    /// update boundaries so per-update snapshots report per-update peaks,
    /// not process-lifetime ones).
    pub fn reset_gauge_peaks(&self) {
        for g in self.gauges.lock().unwrap().values() {
            g.reset_peak();
        }
    }

    /// Reset every registered metric to zero (between bench repetitions).
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.value.store(0, Ordering::Relaxed);
            g.peak.store(0, Ordering::Relaxed);
            g.lifetime_peak.store(0, Ordering::Relaxed);
        }
        let hists = self.histograms.lock().unwrap();
        for h in hists.values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("ops").get(), 5, "same handle by name");

        let g = r.gauge("depth");
        g.set(3);
        g.add(4);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1107);
        assert!(h.mean() > 150.0);
        assert_eq!(h.quantile_bound(0.0), 0);
        // All samples ≤ 1024.
        assert!(h.quantile_bound(1.0) <= 1024);
    }

    #[test]
    fn snapshot_is_valid_json_and_reset_zeroes() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.gauge("b").set(9);
        r.histogram("c").record(17);
        let snap = r.snapshot();
        let text = snap.to_json();
        let back = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            back.get("gauges").unwrap().get("b").unwrap().get("peak").unwrap().as_u64(),
            Some(9)
        );
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.gauge("b").peak(), 0);
        assert_eq!(r.histogram("c").count(), 0);
    }

    #[test]
    fn gauge_peak_resets_per_window_but_lifetime_survives() {
        let r = Registry::new();
        let g = r.gauge("exec.queue_depth");
        // "Update 1" spikes to 50, drains to 3.
        g.set(50);
        g.set(3);
        assert_eq!(g.peak(), 50);
        // Update boundary: the window peak restarts from the current
        // level, not from zero and not from the old spike.
        r.reset_gauge_peaks();
        assert_eq!(g.peak(), 3, "window peak must restart at current level");
        assert_eq!(g.lifetime_peak(), 50, "lifetime peak must survive");
        // "Update 2" only reaches 7 — its snapshot peak must be 7, not
        // the process-lifetime 50 (the original regression).
        g.set(7);
        g.set(0);
        assert_eq!(g.peak(), 7);
        assert_eq!(g.lifetime_peak(), 50);
        let snap = r.snapshot();
        let gj = snap.get("gauges").unwrap().get("exec.queue_depth").unwrap();
        assert_eq!(gj.get("peak").unwrap().as_u64(), Some(7));
        assert_eq!(gj.get("lifetime_peak").unwrap().as_u64(), Some(50));
        // Full reset clears all three.
        r.reset();
        assert_eq!(g.lifetime_peak(), 0);
    }

    #[test]
    fn histogram_bucket_export_is_interleaving_independent() {
        let samples: Vec<u64> = (0..4096u64).map(|i| (i * 2654435761) % 100_000).collect();
        // Same multiset of samples recorded under two very different
        // thread interleavings must export identical JSON.
        let run = |threads: usize| -> String {
            let r = Arc::new(Registry::new());
            let chunk = samples.len() / threads;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let r = r.clone();
                    let part: Vec<u64> =
                        samples[t * chunk..(t + 1) * chunk].to_vec();
                    std::thread::spawn(move || {
                        let h = r.histogram("exec.task_ns");
                        for v in part {
                            h.record(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            r.snapshot().to_json()
        };
        assert_eq!(run(1), run(8), "histogram export must be deterministic");
        // And bucket bounds come out ascending.
        let r = Registry::new();
        let h = r.histogram("x");
        for v in [70_000u64, 3, 0, 900] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|b| b.1).sum::<u64>(), 4);
        // Top bucket is representable (no shift overflow).
        h.record(u64::MAX);
        assert_eq!(h.nonzero_buckets().last().unwrap().0, u64::MAX);
        assert_eq!(h.quantile_bound(1.0), u64::MAX);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let c = r.counter("hot");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("hot").get(), 80_000);
    }
}
