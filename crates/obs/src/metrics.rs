//! Cheap atomic metrics: counters, gauges (with peak tracking) and
//! log₂-bucketed histograms, plus a process-global named registry.
//!
//! Everything is lock-free on the hot path (`Relaxed` atomics); the
//! registry takes a lock only on registration and snapshot. Metrics stay
//! live for the process lifetime — handles are `Arc`s that can be cached
//! by the instrumented code.

use crate::json::{obj, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depth, frontier index, …) tracking its peak.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    peak: AtomicI64,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        let v = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever `set`/`add`-ed (0 if never above zero).
    pub fn peak(&self) -> i64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// Histogram over `u64` samples with power-of-two buckets: bucket `i`
/// counts samples whose highest set bit is `i` (bucket 0 additionally
/// holds zeros). 65 slots cover the full domain.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, v: u64) {
        let idx = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1) — a
    /// factor-of-two estimate, which is enough to spot tail blow-ups.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }
}

/// A named collection of metrics. One process-global instance lives
/// behind [`registry`]; tests can build private ones.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// One JSON object per metric kind: counters as totals, gauges as
    /// `{current, peak}`, histograms as `{count, sum, mean, p50, p99}`.
    pub fn snapshot(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get().into()))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    obj([("current", g.get().into()), ("peak", g.peak().into())]),
                )
            })
            .collect();
        let histograms: Vec<(String, Json)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    obj([
                        ("count", h.count().into()),
                        ("sum", h.sum().into()),
                        ("mean", h.mean().into()),
                        ("p50_bound", h.quantile_bound(0.5).into()),
                        ("p99_bound", h.quantile_bound(0.99).into()),
                    ]),
                )
            })
            .collect();
        obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(histograms)),
        ])
    }

    /// Reset every registered metric to zero (between bench repetitions).
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.value.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.value.store(0, Ordering::Relaxed);
            g.peak.store(0, Ordering::Relaxed);
        }
        let hists = self.histograms.lock().unwrap();
        for h in hists.values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("ops").get(), 5, "same handle by name");

        let g = r.gauge("depth");
        g.set(3);
        g.add(4);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.peak(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1107);
        assert!(h.mean() > 150.0);
        assert_eq!(h.quantile_bound(0.0), 0);
        // All samples ≤ 1024.
        assert!(h.quantile_bound(1.0) <= 1024);
    }

    #[test]
    fn snapshot_is_valid_json_and_reset_zeroes() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.gauge("b").set(9);
        r.histogram("c").record(17);
        let snap = r.snapshot();
        let text = snap.to_json();
        let back = crate::json::Json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters").unwrap().get("a").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(
            back.get("gauges").unwrap().get("b").unwrap().get("peak").unwrap().as_u64(),
            Some(9)
        );
        r.reset();
        assert_eq!(r.counter("a").get(), 0);
        assert_eq!(r.gauge("b").peak(), 0);
        assert_eq!(r.histogram("c").count(), 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let c = r.counter("hot");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("hot").get(), 80_000);
    }
}
