//! Always-on flight recorder: fixed-capacity per-thread ring buffers of
//! recent events, dumped to a Perfetto-loadable "black box" file when the
//! executor fails.
//!
//! Unlike [`crate::trace`] — which is off by default, unbounded up to a
//! large cap, and records rich string events — the flight recorder is
//! *on* by default and designed to cost a few relaxed atomic stores per
//! event with no allocation on the hot path:
//!
//! * Events are identified by a compact [`FlightCode`] (a `u16` indexing
//!   a static name/category table), not by strings.
//! * Each thread writes into its own [`RING_CAPACITY`]-slot ring; a slot
//!   is five `u64` words guarded by a seqlock word, so writers never
//!   block and readers (the dump path) detect torn slots and skip them.
//! * Rings are recycled: when a thread exits its ring returns to a free
//!   pool *without being cleared*, so a post-mortem dump still sees the
//!   last events of recently-joined worker threads, and the total ring
//!   count stays bounded by the peak thread concurrency, not by the
//!   number of threads ever spawned.
//!
//! The dump ([`dump_to_dir`]) emits only self-contained Chrome phases
//! (`X`/`i`/`C`) — never `B`/`E` pairs — so a wrapped or torn ring can
//! never produce a structurally invalid trace. Dump files rotate modulo
//! [`DUMP_ROTATION`] per error label, bounding disk use under repeated
//! failures (e.g. the chaos harness).

use crate::json::{obj, Json};
use crate::trace;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread lane (power of two).
pub const RING_CAPACITY: usize = 1 << 12;

/// Chrome pid under which flight-recorder lanes are exported (real-time
/// traces use pids 1 and 2; keeping 3 distinct lets a dump be stitched
/// alongside a full trace without track collisions).
pub const FLIGHT_PID: u64 = 3;

/// Dumps keep only events whose timestamp falls within this trailing
/// window — the "recent history" a black box is for. Without it, a
/// long-lived process would serialize every lane at full capacity on
/// each of hundreds of chaos-induced errors.
pub const DUMP_WINDOW_US: f64 = 5_000_000.0;

/// Dump files rotate modulo this count (per error label).
pub const DUMP_ROTATION: u64 = 8;

/// Compact event identity. Adding a code: extend the enum, [`CODES`],
/// and the `name`/`cat`/`arg_name` tables below (kept in one place so
/// they cannot drift).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum FlightCode {
    /// One incremental update driven through the executor.
    UpdateRun = 0,
    /// A scheduler batch pop on the coordinator.
    PopBatch = 1,
    /// Validation + journal + scheduler completion for a wavefront.
    Commit = 2,
    /// Coordinator blocked waiting for worker completions.
    CoordWait = 3,
    /// A worker executing one chunk of tasks.
    ChunkRun = 4,
    /// A task attempt failed and will be retried.
    TaskRetry = 5,
    /// A task exhausted its retry budget.
    TaskFail = 6,
    /// The executor is about to return an `ExecError`.
    ExecError = 7,
    /// Executor queue depth (chunks queued to workers).
    QueueDepth = 8,
    /// Tasks in flight (popped, not yet committed).
    InFlight = 9,
    /// A stream batch admitted (possibly coalescing several updates).
    StreamAdmit = 10,
    /// Pending updates queued at the stream front door.
    StreamDepth = 11,
    /// Rolling p99 sojourn published by the SLO tracker (µs).
    StreamSojournP99 = 12,
    /// DRed phase 1: overdeletion.
    DredOverdelete = 13,
    /// DRed phase 2: rederivation.
    DredRederive = 14,
    /// DRed phase 3: insertion.
    DredInsert = 15,
    /// Full clique re-evaluation.
    Reevaluate = 16,
    /// Journal replay resumed a partially-committed update.
    JournalReplay = 17,
    /// One shard's participation in one cross-shard exchange round.
    ShardRound = 18,
    /// A sharded batch aborted and rolled back on every shard.
    ShardAbort = 19,
    /// FBF count phase: derivation-count deltas applied to a clique.
    FbfCount = 20,
    /// FBF backward phase: alternative-derivation searches.
    FbfBackward = 21,
    /// FBF forward phase: rederivation + insertion inside a recursive SCC.
    FbfForward = 22,
}

/// All codes, indexable by discriminant — the decode table for slots.
const CODES: [FlightCode; 23] = [
    FlightCode::UpdateRun,
    FlightCode::PopBatch,
    FlightCode::Commit,
    FlightCode::CoordWait,
    FlightCode::ChunkRun,
    FlightCode::TaskRetry,
    FlightCode::TaskFail,
    FlightCode::ExecError,
    FlightCode::QueueDepth,
    FlightCode::InFlight,
    FlightCode::StreamAdmit,
    FlightCode::StreamDepth,
    FlightCode::StreamSojournP99,
    FlightCode::DredOverdelete,
    FlightCode::DredRederive,
    FlightCode::DredInsert,
    FlightCode::Reevaluate,
    FlightCode::JournalReplay,
    FlightCode::ShardRound,
    FlightCode::ShardAbort,
    FlightCode::FbfCount,
    FlightCode::FbfBackward,
    FlightCode::FbfForward,
];

impl FlightCode {
    fn from_u16(v: u16) -> Option<FlightCode> {
        CODES.get(v as usize).copied()
    }

    /// Event name as it appears in dumps.
    pub fn name(self) -> &'static str {
        match self {
            FlightCode::UpdateRun => "exec.update",
            FlightCode::PopBatch => "sched.pop_batch",
            FlightCode::Commit => "exec.commit",
            FlightCode::CoordWait => "exec.wait_completion",
            FlightCode::ChunkRun => "exec.chunk",
            FlightCode::TaskRetry => "exec.retry",
            FlightCode::TaskFail => "exec.task_failure",
            FlightCode::ExecError => "exec.error",
            FlightCode::QueueDepth => "exec.queue_depth",
            FlightCode::InFlight => "exec.in_flight",
            FlightCode::StreamAdmit => "stream.admit",
            FlightCode::StreamDepth => "stream.queue_depth",
            FlightCode::StreamSojournP99 => "stream.slo.p99_us",
            FlightCode::DredOverdelete => "dred.overdelete",
            FlightCode::DredRederive => "dred.rederive",
            FlightCode::DredInsert => "dred.insert",
            FlightCode::Reevaluate => "clique.reevaluate",
            FlightCode::JournalReplay => "exec.journal_replay",
            FlightCode::ShardRound => "shard.round",
            FlightCode::ShardAbort => "shard.abort",
            FlightCode::FbfCount => "fbf.count",
            FlightCode::FbfBackward => "fbf.backward",
            FlightCode::FbfForward => "fbf.forward",
        }
    }

    /// Chrome category.
    pub fn cat(self) -> &'static str {
        match self {
            FlightCode::PopBatch => "sched",
            FlightCode::StreamAdmit
            | FlightCode::StreamDepth
            | FlightCode::StreamSojournP99 => "stream",
            FlightCode::DredOverdelete
            | FlightCode::DredRederive
            | FlightCode::DredInsert
            | FlightCode::Reevaluate
            | FlightCode::FbfCount
            | FlightCode::FbfBackward
            | FlightCode::FbfForward => "datalog",
            FlightCode::ShardRound | FlightCode::ShardAbort => "shard",
            _ => "exec",
        }
    }

    /// Label for the event's integer argument in dumps.
    pub fn arg_name(self) -> &'static str {
        match self {
            FlightCode::UpdateRun => "executed",
            FlightCode::PopBatch => "popped",
            FlightCode::Commit => "completions",
            FlightCode::CoordWait => "in_flight",
            FlightCode::ChunkRun => "tasks",
            FlightCode::TaskRetry | FlightCode::TaskFail => "node",
            FlightCode::ExecError => "kind",
            FlightCode::StreamAdmit => "members",
            FlightCode::DredOverdelete => "overdeleted",
            FlightCode::DredRederive => "rederived",
            FlightCode::DredInsert => "inserted",
            FlightCode::Reevaluate => "nodes",
            FlightCode::JournalReplay => "replayed",
            FlightCode::ShardRound => "round",
            FlightCode::ShardAbort => "shard",
            FlightCode::FbfCount => "saved",
            FlightCode::FbfBackward => "checks",
            FlightCode::FbfForward => "seed_inserts",
            _ => "value",
        }
    }
}

/// How an event was recorded — decides its Chrome phase on export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// Self-contained span (`X`): `dv` is the duration in µs.
    Span = 0,
    /// Point event (`i`).
    Instant = 1,
    /// Numeric series sample (`C`): `dv` is the value.
    Counter = 2,
}

/// One slot: a seqlock word plus four payload words. The writer marks
/// the slot in-progress (`seq = u64::MAX`), stores the payload with
/// relaxed ordering, then publishes `seq = index + 1` with release;
/// readers accept a slot only if `seq` reads `index + 1` both before and
/// after the payload loads. Decode is additionally defensive (bounds
/// checks, duration clamping), so even an undetected torn read cannot
/// corrupt a dump structurally.
struct Slot {
    seq: AtomicU64,
    meta: AtomicU64,
    ts: AtomicU64,
    dv: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            ts: AtomicU64::new(0),
            dv: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

thread_local! {
    /// The shard this thread is working for: 0 = unsharded/none,
    /// 1..=N = shard `id - 1` of a sharded runtime. Stored in each
    /// event's meta word so per-shard attribution survives lane
    /// recycling (a ring may serve different shards over its lifetime).
    static SHARD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Tag this thread's subsequent flight events with a shard id
/// (`shard_index + 1`; 0 means unsharded). Sharded runtimes call this
/// at the top of each shard worker.
pub fn set_shard(shard: u64) {
    SHARD.with(|s| s.set(shard));
}

/// The current thread's shard tag (0 = unsharded).
pub fn current_shard() -> u64 {
    SHARD.try_with(std::cell::Cell::get).unwrap_or(0)
}

/// A per-thread event ring. Exactly one live thread writes at a time
/// (enforced by ownership through the thread-local handle); any thread
/// may read concurrently via the seqlock.
pub struct FlightRing {
    lane: u64,
    name: Mutex<Option<String>>,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRing {
    fn new(lane: u64) -> FlightRing {
        FlightRing {
            lane,
            name: Mutex::new(None),
            head: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
        }
    }

    fn write(&self, kind: FlightKind, code: FlightCode, ts_us: f64, dv: f64, arg: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAPACITY - 1)];
        slot.seq.store(u64::MAX, Ordering::Release);
        // Meta packs code (16 bits), kind (8), and shard tag (40).
        slot.meta.store(
            code as u64 | ((kind as u64) << 16) | (current_shard() << 24),
            Ordering::Relaxed,
        );
        slot.ts.store(ts_us.to_bits(), Ordering::Relaxed);
        slot.dv.store(dv.to_bits(), Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.seq.store(h + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }
}

struct FlightCollector {
    rings: Mutex<Vec<Arc<FlightRing>>>,
    free: Mutex<Vec<Arc<FlightRing>>>,
    next_lane: AtomicU64,
    dump_seq: AtomicU64,
    last_dump: Mutex<Option<PathBuf>>,
}

/// On by default: the whole point of a flight recorder is that it is
/// already running when something goes wrong.
static ENABLED: AtomicBool = AtomicBool::new(true);

fn collector() -> &'static FlightCollector {
    static COLLECTOR: OnceLock<FlightCollector> = OnceLock::new();
    COLLECTOR.get_or_init(|| FlightCollector {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        next_lane: AtomicU64::new(1),
        dump_seq: AtomicU64::new(0),
        last_dump: Mutex::new(None),
    })
}

/// Returns the thread's ring to the free pool on thread exit — without
/// clearing it, so its tail of events stays visible to later dumps.
struct LaneHandle {
    ring: Arc<FlightRing>,
}

impl Drop for LaneHandle {
    fn drop(&mut self) {
        collector().free.lock().unwrap().push(self.ring.clone());
    }
}

thread_local! {
    static LOCAL_RING: std::cell::RefCell<Option<LaneHandle>> =
        const { std::cell::RefCell::new(None) };
}

fn acquire_ring() -> Arc<FlightRing> {
    let c = collector();
    if let Some(ring) = c.free.lock().unwrap().pop() {
        return ring;
    }
    let ring = Arc::new(FlightRing::new(c.next_lane.fetch_add(1, Ordering::Relaxed)));
    c.rings.lock().unwrap().push(ring.clone());
    ring
}

fn with_ring(f: impl FnOnce(&FlightRing)) {
    // try_with: during thread teardown another destructor may still emit
    // events; dropping them beats panicking.
    let _ = LOCAL_RING.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            *slot = Some(LaneHandle {
                ring: acquire_ring(),
            });
        }
        f(&slot.as_ref().expect("just initialized").ring);
    });
}

/// Is the recorder on? Emit sites check this single relaxed load first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle recording (A/B overhead benches; normally left on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

#[inline]
fn record(kind: FlightKind, code: FlightCode, ts_us: f64, dv: f64, arg: u64) {
    if !enabled() {
        return;
    }
    with_ring(|ring| ring.write(kind, code, ts_us, dv, arg));
}

/// Record a point event.
#[inline]
pub fn instant(code: FlightCode, arg: u64) {
    record(FlightKind::Instant, code, trace::now_us(), 0.0, arg);
}

/// Sample a numeric series.
#[inline]
pub fn counter(code: FlightCode, value: f64) {
    record(FlightKind::Counter, code, trace::now_us(), value, 0);
}

/// Record a self-contained span with explicit start and duration.
#[inline]
pub fn complete(code: FlightCode, start_us: f64, dur_us: f64, arg: u64) {
    record(FlightKind::Span, code, start_us, dur_us, arg);
}

/// RAII span: records one complete event on drop. Inert when the
/// recorder is off at construction.
pub struct FlightSpan {
    code: FlightCode,
    start_us: f64,
    arg: u64,
    live: bool,
}

impl FlightSpan {
    /// Attach/overwrite the integer argument before the span closes.
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        if self.live {
            let now = trace::now_us();
            record(
                FlightKind::Span,
                self.code,
                self.start_us,
                (now - self.start_us).max(0.0),
                self.arg,
            );
        }
    }
}

/// Open a flight span; closes (records) when the guard drops.
#[inline]
pub fn span(code: FlightCode) -> FlightSpan {
    span_arg(code, 0)
}

/// Open a flight span with an initial argument.
#[inline]
pub fn span_arg(code: FlightCode, arg: u64) -> FlightSpan {
    if !enabled() {
        return FlightSpan {
            code,
            start_us: 0.0,
            arg,
            live: false,
        };
    }
    FlightSpan {
        code,
        start_us: trace::now_us(),
        arg,
        live: true,
    }
}

/// Name the current thread's lane in dumps (idempotent; latest wins —
/// recycled lanes take the name of their newest owner).
pub fn set_thread_name(name: &str) {
    with_ring(|ring| {
        *ring.name.lock().unwrap() = Some(name.to_string());
    });
}

/// One decoded event from a lane snapshot.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    pub code: FlightCode,
    pub kind: FlightKind,
    pub ts_us: f64,
    /// Duration (spans) or sample value (counters), µs / unitless.
    pub dv: f64,
    pub arg: u64,
    /// Shard tag the recording thread carried (0 = unsharded,
    /// `s + 1` = shard `s`). See [`set_shard`].
    pub shard: u64,
}

/// A lane's decoded recent history.
#[derive(Clone, Debug)]
pub struct FlightLane {
    pub lane: u64,
    pub name: Option<String>,
    pub events: Vec<FlightEvent>,
    /// Events lost to ring wraparound (total written minus capacity).
    pub overwritten: u64,
    /// Slots skipped because a concurrent writer tore them.
    pub torn: u64,
}

/// Snapshot every lane's retained events (non-destructive; writers keep
/// going). Torn slots are skipped and counted, never misread.
pub fn snapshot() -> Vec<FlightLane> {
    let rings: Vec<Arc<FlightRing>> = collector().rings.lock().unwrap().clone();
    rings
        .iter()
        .map(|ring| {
            let head = ring.head.load(Ordering::Acquire);
            let start = head.saturating_sub(RING_CAPACITY as u64);
            let mut events = Vec::with_capacity((head - start) as usize);
            let mut torn = 0u64;
            for i in start..head {
                let slot = &ring.slots[(i as usize) & (RING_CAPACITY - 1)];
                if slot.seq.load(Ordering::Acquire) != i + 1 {
                    torn += 1;
                    continue;
                }
                let meta = slot.meta.load(Ordering::Relaxed);
                let ts = f64::from_bits(slot.ts.load(Ordering::Relaxed));
                let dv = f64::from_bits(slot.dv.load(Ordering::Relaxed));
                let arg = slot.arg.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != i + 1 {
                    torn += 1;
                    continue;
                }
                let Some(code) = FlightCode::from_u16(meta as u16) else {
                    torn += 1;
                    continue;
                };
                let kind = match (meta >> 16) & 0xff {
                    0 => FlightKind::Span,
                    1 => FlightKind::Instant,
                    2 => FlightKind::Counter,
                    _ => {
                        torn += 1;
                        continue;
                    }
                };
                if !ts.is_finite() || !dv.is_finite() {
                    torn += 1;
                    continue;
                }
                events.push(FlightEvent {
                    code,
                    kind,
                    ts_us: ts,
                    dv,
                    arg,
                    shard: meta >> 24,
                });
            }
            FlightLane {
                lane: ring.lane,
                name: ring.name.lock().unwrap().clone(),
                events,
                overwritten: head.saturating_sub(RING_CAPACITY as u64),
                torn,
            }
        })
        .collect()
}

/// Reset all lanes (test isolation). Only safe when no other thread is
/// actively recording — callers serialize around it.
pub fn clear() {
    for ring in collector().rings.lock().unwrap().iter() {
        ring.head.store(0, Ordering::Release);
        for slot in ring.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
    }
}

fn flight_event_json(e: &FlightEvent, lane: u64) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(e.code.name().into())),
        ("cat".into(), Json::Str(e.code.cat().into())),
        (
            "ph".into(),
            Json::Str(
                match e.kind {
                    FlightKind::Span => "X",
                    FlightKind::Instant => "i",
                    FlightKind::Counter => "C",
                }
                .into(),
            ),
        ),
        ("ts".into(), Json::Num(e.ts_us)),
        ("pid".into(), FLIGHT_PID.into()),
        ("tid".into(), lane.into()),
    ];
    let with_shard = |mut args: Vec<(String, Json)>| {
        if e.shard != 0 {
            args.push(("shard".into(), ((e.shard - 1) as f64).into()));
        }
        Json::Obj(args)
    };
    match e.kind {
        FlightKind::Span => {
            fields.push(("dur".into(), Json::Num(e.dv.max(0.0))));
            fields.push((
                "args".into(),
                with_shard(vec![(e.code.arg_name().into(), (e.arg as f64).into())]),
            ));
        }
        FlightKind::Instant => {
            fields.push(("s".into(), Json::Str("t".into())));
            fields.push((
                "args".into(),
                with_shard(vec![(e.code.arg_name().into(), (e.arg as f64).into())]),
            ));
        }
        FlightKind::Counter => {
            fields.push((
                "args".into(),
                with_shard(vec![("value".into(), Json::Num(e.dv))]),
            ));
        }
    }
    Json::Obj(fields)
}

/// Build the black-box Chrome trace document: one process ("flight
/// recorder"), one thread per lane, plus a `flight.context` instant
/// carrying the caller's context (error text, `ExecSnapshot` fields, …).
/// Only `X`/`i`/`C` phases are emitted, so the document is structurally
/// valid regardless of ring wraparound or torn slots.
pub fn chrome_dump(lanes: &[FlightLane], context: &[(&'static str, Json)]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(obj([
        ("name", "process_name".into()),
        ("ph", "M".into()),
        ("pid", FLIGHT_PID.into()),
        ("tid", 0u64.into()),
        ("args", obj([("name", "flight recorder".into())])),
    ]));
    let mut dropped_total = 0u64;
    for lane in lanes {
        if lane.events.is_empty() {
            continue;
        }
        let label = match &lane.name {
            Some(n) => format!("lane {}: {}", lane.lane, n),
            None => format!("lane {}", lane.lane),
        };
        events.push(obj([
            ("name", "thread_name".into()),
            ("ph", "M".into()),
            ("pid", FLIGHT_PID.into()),
            ("tid", lane.lane.into()),
            ("args", obj([("name", label.into())])),
        ]));
        dropped_total += lane.overwritten + lane.torn;
        for e in &lane.events {
            events.push(flight_event_json(e, lane.lane));
        }
    }
    let ts = lanes
        .iter()
        .flat_map(|l| l.events.iter())
        .map(|e| e.ts_us + e.dv.max(0.0))
        .fold(0.0f64, f64::max);
    let mut ctx_args: Vec<(String, Json)> = context
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    ctx_args.push(("events_lost".into(), dropped_total.into()));
    events.push(Json::Obj(vec![
        ("name".into(), Json::Str("flight.context".into())),
        ("cat".into(), Json::Str("flight".into())),
        ("ph".into(), Json::Str("i".into())),
        ("ts".into(), Json::Num(ts)),
        ("pid".into(), FLIGHT_PID.into()),
        ("tid".into(), 0u64.into()),
        ("s".into(), Json::Str("g".into())),
        ("args".into(), Json::Obj(ctx_args.clone())),
    ]));
    obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
        ("flight", Json::Obj(ctx_args)),
    ])
}

/// Snapshot all lanes, keep the trailing [`DUMP_WINDOW_US`] of events,
/// and write a rotated black-box file `blackbox-<label>-<seq%N>` into
/// `dir`. Returns the written path; IO failures are the caller's to
/// count (the executor must never fail an update because a dump did).
pub fn dump_to_dir(
    dir: &Path,
    label: &str,
    context: &[(&'static str, Json)],
) -> std::io::Result<PathBuf> {
    let cutoff = trace::now_us() - DUMP_WINDOW_US;
    let mut lanes = snapshot();
    for lane in &mut lanes {
        lane.events.retain(|e| e.ts_us + e.dv.max(0.0) >= cutoff);
    }
    let doc = chrome_dump(&lanes, context);
    std::fs::create_dir_all(dir)?;
    let seq = collector().dump_seq.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "blackbox-{label}-{}.trace.json",
        seq % DUMP_ROTATION
    ));
    std::fs::write(&path, doc.to_json())?;
    *collector().last_dump.lock().unwrap() = Some(path.clone());
    Ok(path)
}

/// Path of the most recent successful dump, if any (test hook).
pub fn last_dump() -> Option<PathBuf> {
    collector().last_dump.lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_chrome_trace;

    // The recorder is process-global; serialize mutating tests.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn my_lane_events(name: &str) -> Vec<FlightEvent> {
        snapshot()
            .into_iter()
            .filter(|l| l.name.as_deref() == Some(name))
            .flat_map(|l| l.events)
            .collect()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = serial();
        clear();
        set_enabled(false);
        set_thread_name("flight-disabled");
        instant(FlightCode::PopBatch, 1);
        counter(FlightCode::QueueDepth, 3.0);
        drop(span(FlightCode::ChunkRun));
        set_enabled(true);
        assert!(my_lane_events("flight-disabled").is_empty());
    }

    #[test]
    fn span_instant_counter_roundtrip() {
        let _g = serial();
        clear();
        set_enabled(true);
        set_thread_name("flight-rt");
        {
            let mut s = span_arg(FlightCode::ChunkRun, 0);
            s.set_arg(9);
        }
        instant(FlightCode::TaskFail, 42);
        counter(FlightCode::InFlight, 7.5);
        let events = my_lane_events("flight-rt");
        assert_eq!(events.len(), 3);
        let chunk = events
            .iter()
            .find(|e| e.code == FlightCode::ChunkRun)
            .unwrap();
        assert_eq!(chunk.kind, FlightKind::Span);
        assert_eq!(chunk.arg, 9);
        assert!(chunk.dv >= 0.0);
        let fail = events
            .iter()
            .find(|e| e.code == FlightCode::TaskFail)
            .unwrap();
        assert_eq!(fail.arg, 42);
        let inflight = events
            .iter()
            .find(|e| e.code == FlightCode::InFlight)
            .unwrap();
        assert_eq!(inflight.dv, 7.5);
        // Per-lane order is chronological.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn wraparound_keeps_last_capacity_and_counts_loss() {
        let _g = serial();
        clear();
        set_enabled(true);
        set_thread_name("flight-wrap");
        let extra = 100;
        for i in 0..(RING_CAPACITY + extra) {
            instant(FlightCode::PopBatch, i as u64);
        }
        let lane = snapshot()
            .into_iter()
            .find(|l| l.name.as_deref() == Some("flight-wrap"))
            .unwrap();
        assert!(lane.events.len() <= RING_CAPACITY);
        assert!(lane.overwritten >= extra as u64);
        // The survivors are the *newest* events.
        assert_eq!(
            lane.events.last().unwrap().arg,
            (RING_CAPACITY + extra - 1) as u64
        );
        // A wrapped ring still dumps to a structurally valid trace.
        let doc = chrome_dump(&[lane], &[("error", "test".into())]);
        validate_chrome_trace(&doc.to_json()).unwrap();
    }

    #[test]
    fn rings_are_recycled_across_threads() {
        let _g = serial();
        clear();
        set_enabled(true);
        let lanes_before = collector().rings.lock().unwrap().len();
        for round in 0..4 {
            std::thread::spawn(move || {
                set_thread_name(&format!("flight-recycle-{round}"));
                instant(FlightCode::ChunkRun, round);
            })
            .join()
            .unwrap();
        }
        let lanes_after = collector().rings.lock().unwrap().len();
        // Sequential threads share one recycled ring (at most one new
        // lane total, not one per thread).
        assert!(
            lanes_after <= lanes_before + 1,
            "rings not recycled: {lanes_before} -> {lanes_after}"
        );
        // The recycled lane retains events from earlier owners.
        let lane = snapshot()
            .into_iter()
            .find(|l| l.name.as_deref() == Some("flight-recycle-3"))
            .unwrap();
        let rounds: Vec<u64> = lane
            .events
            .iter()
            .filter(|e| e.code == FlightCode::ChunkRun)
            .map(|e| e.arg)
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
        assert!(rounds.len() >= 2, "recycled ring lost prior events");
    }

    #[test]
    fn dump_rotation_bounds_files() {
        let _g = serial();
        clear();
        set_enabled(true);
        set_thread_name("flight-dump");
        instant(FlightCode::ExecError, 1);
        let dir = std::env::temp_dir().join(format!("flight-dump-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for _ in 0..(DUMP_ROTATION + 3) {
            let p = dump_to_dir(&dir, "stall", &[("error", "stalled".into())]).unwrap();
            assert_eq!(last_dump().as_deref(), Some(p.as_path()));
            let text = std::fs::read_to_string(&p).unwrap();
            validate_chrome_trace(&text).unwrap();
            assert!(text.contains("flight.context"));
        }
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert!(files as u64 <= DUMP_ROTATION, "rotation leaked: {files}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
