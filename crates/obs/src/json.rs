//! Minimal JSON value, writer and parser.
//!
//! The workspace has no crates.io access, so this module replaces
//! `serde_json` wherever structured output crosses a process boundary:
//! the job-trace format, the Chrome trace exporter, and the
//! `results/*.json` bench schema. Objects preserve insertion order (a
//! `Vec` of pairs, not a map) so emitted files are stable and diffable.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Builder shorthand for objects: `obj([("k", v.into()), ...])`.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(fields.map(|(k, v)| (k.to_string(), v)).into())
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric field as u64 (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like serde_json's lossy mode.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Ok(Json::Obj(fields));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(&format!("unexpected byte {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {kw:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("bad unicode escape"))?);
                            self.pos -= 1; // compensate the +1 below
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // at once; validating UTF-8 per run (not per character,
                    // and never past the run) keeps parsing linear.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_structured_value() {
        let v = obj([
            ("version", 1u32.into()),
            ("name", "trace #6 ✓".into()),
            ("edges", Json::Arr(vec![
                Json::Arr(vec![0u32.into(), 1u32.into()]),
                Json::Arr(vec![1u32.into(), 2u32.into()]),
            ])),
            ("ratio", 0.25.into()),
            ("flag", true.into()),
            ("missing", Json::Null),
        ]);
        let text = v.to_json();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("version").unwrap().as_u64(), Some(1));
        assert_eq!(back.get("name").unwrap().as_str(), Some("trace #6 ✓"));
        assert_eq!(back.get("edges").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(1_000_000.0).to_json(), "1000000");
        assert_eq!(Json::Num(0.5).to_json(), "0.5");
        assert_eq!(Json::Num(-3.0).to_json(), "-3");
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}";
        let text = Json::Str(s.to_string()).to_json();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
        // Standard escapes parse too.
        assert_eq!(
            Json::parse(r#""aA😀b\/""#).unwrap().as_str(),
            Some("aA😀b/")
        );
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "01x", "nul", "[1]]", ""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n\t\"a\" : [ 1 , 2 ] ,\r\"b\": null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn numbers_parse_all_forms() {
        for (text, want) in [
            ("0", 0.0),
            ("-0.5", -0.5),
            ("1e3", 1000.0),
            ("2.5E-2", 0.025),
            ("123456789", 123456789.0),
        ] {
            assert_eq!(Json::parse(text).unwrap().as_f64(), Some(want), "{text}");
        }
    }
}
