//! Structured trace events recorded into per-thread buffers.
//!
//! Recording is off by default: every emit site first checks one relaxed
//! atomic load ([`enabled`]), so the instrumentation is a no-op in
//! production paths unless a tool (the `dlsched trace` subcommand, a
//! test, a bench) turns it on. When enabled, events go into a per-thread
//! shard — a `Mutex<Vec>` that only its own thread touches until export,
//! so pushes are uncontended — with a hard per-thread cap; overflow
//! increments a drop counter instead of growing without bound.
//!
//! Two time domains coexist, distinguished by [`Track`]:
//!
//! * **Real** events carry microseconds since the process-global epoch and
//!   the recording thread's id — scheduler calls, executor workers.
//! * **Sim** events carry *simulated* microseconds and a lane number (a
//!   simulated processor, or the simulated scheduler clock). The Chrome
//!   exporter puts them under a separate process so Perfetto shows
//!   simulated makespan and real wall-clock side by side.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum buffered events per thread; beyond it events are counted as
/// dropped. ~64 B/event ⇒ ≲ 16 MiB per thread worst case.
pub const SHARD_CAPACITY: usize = 1 << 18;

/// Chrome-trace-compatible event phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span open ("B").
    Begin,
    /// Span close ("E").
    End,
    /// Point event ("i").
    Instant,
    /// Sampled numeric series ("C").
    Counter,
    /// Self-contained span with a duration ("X").
    Complete,
}

/// Which timeline an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Wall-clock event on a real thread.
    Real { tid: u64 },
    /// Simulated-time event on a simulated lane (processor index, or
    /// [`SIM_SCHED_LANE`] for the scheduler clock).
    Sim { lane: u32 },
}

/// Lane used for the simulated scheduler-clock track.
pub const SIM_SCHED_LANE: u32 = 1_000_000;

/// One argument attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    Num(f64),
    Str(String),
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::Num(v)
    }
}
impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::Num(v as f64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> ArgValue {
        ArgValue::Num(v as f64)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::Num(v as f64)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// A recorded trace event.
#[derive(Clone, Debug)]
pub struct Event {
    pub name: Cow<'static, str>,
    /// Layer category: `sched`, `sim`, `exec`, `datalog`, …
    pub cat: &'static str,
    pub phase: Phase,
    /// Microseconds — real (since epoch) or simulated, per `track`.
    pub ts_us: f64,
    /// Duration in µs; only meaningful for `Phase::Complete`.
    pub dur_us: f64,
    pub track: Track,
    pub args: Vec<(&'static str, ArgValue)>,
}

struct Shard {
    tid: u64,
    name: Mutex<Option<String>>,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

struct Collector {
    shards: Mutex<Vec<Arc<Shard>>>,
    epoch: Instant,
    next_tid: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Collector {
    static COLLECTOR: OnceLock<Collector> = OnceLock::new();
    COLLECTOR.get_or_init(|| Collector {
        shards: Mutex::new(Vec::new()),
        epoch: Instant::now(),
        next_tid: AtomicU64::new(1),
    })
}

thread_local! {
    static LOCAL_SHARD: std::cell::OnceCell<Arc<Shard>> = const { std::cell::OnceCell::new() };
}

fn with_shard<R>(f: impl FnOnce(&Shard) -> R) -> R {
    LOCAL_SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let c = collector();
            let shard = Arc::new(Shard {
                tid: c.next_tid.fetch_add(1, Ordering::Relaxed),
                name: Mutex::new(None),
                events: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            });
            c.shards.lock().unwrap().push(shard.clone());
            shard
        });
        f(shard)
    })
}

/// Turn recording on. Also usable mid-run; events before the switch are
/// simply absent.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turn recording off. Emit sites become a single relaxed load again.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Is recording currently on? Emit sites check this first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process-global trace epoch.
#[inline]
pub fn now_us() -> f64 {
    collector().epoch.elapsed().as_secs_f64() * 1e6
}

/// Returns whether the event was buffered. `End` events bypass the
/// capacity check: an `End` is only ever pushed for a `Begin` that was
/// itself buffered (see [`SpanGuard`]), so exempting them keeps truncated
/// traces *balanced* — the overshoot is bounded by the open-span depth.
fn push(event: Event) -> bool {
    with_shard(|shard| {
        let mut events = shard.events.lock().unwrap();
        if events.len() < SHARD_CAPACITY || event.phase == Phase::End {
            events.push(event);
            true
        } else {
            shard.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    })
}

/// Record a raw event (callers normally use the helpers below).
pub fn record(event: Event) {
    if enabled() {
        push(event);
    }
}

/// Name the current thread's track in exported traces, and its flight-
/// recorder lane in black-box dumps (one call names both).
pub fn set_thread_name(name: &str) {
    with_shard(|shard| {
        *shard.name.lock().unwrap() = Some(name.to_string());
    });
    crate::flight::set_thread_name(name);
}

/// RAII span on the current thread's real-time track. Construct via
/// [`span`]/[`span_with`]; records `End` on drop. When tracing is
/// disabled the guard is inert.
pub struct SpanGuard {
    live: bool,
}

impl SpanGuard {
    /// Attach arguments to the span close (visible on the "E" event).
    pub fn end_args(self, args: Vec<(&'static str, ArgValue)>) {
        if self.live {
            push(Event {
                name: Cow::Borrowed(""),
                cat: "",
                phase: Phase::End,
                ts_us: now_us(),
                dur_us: 0.0,
                track: Track::Real { tid: 0 },
                args,
            });
        }
        std::mem::forget(self);
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            push(Event {
                name: Cow::Borrowed(""),
                cat: "",
                phase: Phase::End,
                ts_us: now_us(),
                dur_us: 0.0,
                track: Track::Real { tid: 0 },
                args: Vec::new(),
            });
        }
    }
}

/// Open a real-time span; closes when the guard drops.
#[inline]
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> SpanGuard {
    span_with(cat, name, Vec::new())
}

/// Open a real-time span with arguments on the open event.
#[inline]
pub fn span_with(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgValue)>,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: false };
    }
    let live = push(Event {
        name: name.into(),
        cat,
        phase: Phase::Begin,
        ts_us: now_us(),
        dur_us: 0.0,
        track: Track::Real { tid: 0 },
        args,
    });
    SpanGuard { live }
}

/// Point event on the current thread's real-time track.
#[inline]
pub fn instant(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        cat,
        phase: Phase::Instant,
        ts_us: now_us(),
        dur_us: 0.0,
        track: Track::Real { tid: 0 },
        args,
    });
}

/// Sample a numeric series (rendered as a counter track in Perfetto).
#[inline]
pub fn counter(cat: &'static str, name: impl Into<Cow<'static, str>>, value: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        cat,
        phase: Phase::Counter,
        ts_us: now_us(),
        dur_us: 0.0,
        track: Track::Real { tid: 0 },
        args: vec![("value", ArgValue::Num(value))],
    });
}

/// Record a complete span in *simulated* time on the given lane.
#[inline]
pub fn sim_complete(
    lane: u32,
    name: impl Into<Cow<'static, str>>,
    ts_us: f64,
    dur_us: f64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        cat: "sim",
        phase: Phase::Complete,
        ts_us,
        dur_us,
        track: Track::Sim { lane },
        args,
    });
}

/// Point event in simulated time.
#[inline]
pub fn sim_instant(
    lane: u32,
    name: impl Into<Cow<'static, str>>,
    ts_us: f64,
    args: Vec<(&'static str, ArgValue)>,
) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        cat: "sim",
        phase: Phase::Instant,
        ts_us,
        dur_us: 0.0,
        track: Track::Sim { lane },
        args,
    });
}

/// Sample a counter series in simulated time.
#[inline]
pub fn sim_counter(lane: u32, name: impl Into<Cow<'static, str>>, ts_us: f64, value: f64) {
    if !enabled() {
        return;
    }
    push(Event {
        name: name.into(),
        cat: "sim",
        phase: Phase::Counter,
        ts_us,
        dur_us: 0.0,
        track: Track::Sim { lane },
        args: vec![("value", ArgValue::Num(value))],
    });
}

/// A thread's drained events plus its metadata.
#[derive(Clone, Debug)]
pub struct ThreadEvents {
    pub tid: u64,
    pub thread_name: Option<String>,
    pub events: Vec<Event>,
    pub dropped: u64,
}

/// Drain every thread's buffer (events are removed; metadata stays).
/// Spans still open on live threads will appear unbalanced — close spans
/// before collecting.
pub fn drain() -> Vec<ThreadEvents> {
    let shards = collector().shards.lock().unwrap();
    shards
        .iter()
        .map(|shard| {
            let mut events = shard.events.lock().unwrap();
            ThreadEvents {
                tid: shard.tid,
                thread_name: shard.name.lock().unwrap().clone(),
                events: std::mem::take(&mut *events),
                dropped: shard.dropped.swap(0, Ordering::Relaxed),
            }
        })
        .collect()
}

/// Discard all buffered events (fresh start before a traced run).
pub fn clear() {
    let _ = drain();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; run the mutating tests under one
    // lock so parallel test threads don't interleave enable/drain.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = serial();
        clear();
        disable();
        {
            let _s = span("test", "invisible");
            instant("test", "also invisible", vec![]);
            counter("test", "nope", 1.0);
        }
        let total: usize = drain().iter().map(|t| t.events.len()).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn spans_balance_and_timestamps_advance() {
        let _guard = serial();
        clear();
        enable();
        set_thread_name("test-thread");
        {
            let _outer = span("test", "outer");
            let _inner = span_with("test", "inner", vec![("k", 7u64.into())]);
        }
        instant("test", "tick", vec![("x", "y".into())]);
        disable();
        let mine: Vec<ThreadEvents> = drain()
            .into_iter()
            .filter(|t| t.thread_name.as_deref() == Some("test-thread"))
            .collect();
        assert_eq!(mine.len(), 1);
        let events = &mine[0].events;
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        // LIFO close order: inner's End precedes outer's End.
        assert_eq!(events.last().unwrap().phase, Phase::Instant);
    }

    #[test]
    fn sim_events_carry_their_own_clock() {
        let _guard = serial();
        clear();
        enable();
        sim_complete(0, "task 3", 1_000.0, 250.0, vec![("node", 3u64.into())]);
        sim_counter(SIM_SCHED_LANE, "ready", 2_000.0, 5.0);
        disable();
        let all: Vec<Event> = drain().into_iter().flat_map(|t| t.events).collect();
        let task = all.iter().find(|e| e.name == "task 3").unwrap();
        assert_eq!(task.ts_us, 1_000.0);
        assert_eq!(task.dur_us, 250.0);
        assert_eq!(task.track, Track::Sim { lane: 0 });
    }

    #[test]
    fn truncated_shard_stays_balanced() {
        let _guard = serial();
        clear();
        enable();
        std::thread::spawn(|| {
            set_thread_name("trunc-test");
            let open = span("test", "open-before-full");
            for _ in 0..SHARD_CAPACITY {
                instant("test", "fill", vec![]);
            }
            drop(open); // End bypasses the cap: still recorded.
            let late = span("test", "late"); // Begin dropped at capacity…
            drop(late); // …so no dangling End either.
        })
        .join()
        .unwrap();
        disable();
        let t = drain()
            .into_iter()
            .find(|t| t.thread_name.as_deref() == Some("trunc-test"))
            .unwrap();
        let begins = t.events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = t.events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, ends, "truncation must not unbalance spans");
        assert!(t.dropped > 0, "overflow must be counted");
        assert_eq!(t.events.len(), SHARD_CAPACITY + 1);
    }

    #[test]
    fn multi_thread_shards_do_not_mix() {
        let _guard = serial();
        clear();
        enable();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    set_thread_name(&format!("shard-test-{i}"));
                    for _ in 0..100 {
                        let _s = span("test", "work");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        disable();
        let shards: Vec<ThreadEvents> = drain()
            .into_iter()
            .filter(|t| {
                t.thread_name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("shard-test-"))
            })
            .collect();
        assert_eq!(shards.len(), 4);
        for t in &shards {
            assert_eq!(t.events.len(), 200, "{:?}", t.thread_name);
            assert_eq!(t.dropped, 0);
        }
    }
}
