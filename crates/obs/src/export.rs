//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`) and
//! flat JSONL, plus a structural validator used by tests and the CI smoke
//! step.
//!
//! Real-thread events land under process 1 ("real time"); simulated-time
//! events land under process 2 ("simulated time"), one thread per
//! simulated lane. Loading the file in Perfetto therefore shows the
//! simulated makespan and the real scheduler wall-clock side by side on a
//! shared horizontal axis.

use crate::json::{obj, Json};
use crate::trace::{ArgValue, Event, Phase, ThreadEvents, Track, SIM_SCHED_LANE};

/// Chrome pid for wall-clock events.
pub const REAL_PID: u64 = 1;
/// Chrome pid for simulated-time events.
pub const SIM_PID: u64 = 2;

fn phase_str(p: Phase) -> &'static str {
    match p {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
        Phase::Counter => "C",
        Phase::Complete => "X",
    }
}

fn args_json(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| {
                (
                    k.to_string(),
                    match v {
                        ArgValue::Num(n) => Json::Num(*n),
                        ArgValue::Str(s) => Json::Str(s.clone()),
                    },
                )
            })
            .collect(),
    )
}

fn event_json(e: &Event, shard_tid: u64) -> Json {
    let (pid, tid) = match e.track {
        Track::Real { .. } => (REAL_PID, shard_tid),
        Track::Sim { lane } => (SIM_PID, lane as u64),
    };
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::Str(e.name.to_string())),
        ("cat".into(), Json::Str(e.cat.to_string())),
        ("ph".into(), Json::Str(phase_str(e.phase).to_string())),
        ("ts".into(), Json::Num(e.ts_us)),
        ("pid".into(), pid.into()),
        ("tid".into(), tid.into()),
    ];
    if e.phase == Phase::Complete {
        fields.push(("dur".into(), Json::Num(e.dur_us)));
    }
    if e.phase == Phase::Instant {
        // Thread-scoped instant marks.
        fields.push(("s".into(), Json::Str("t".into())));
    }
    if !e.args.is_empty() {
        fields.push(("args".into(), args_json(&e.args)));
    }
    Json::Obj(fields)
}

fn metadata_event(pid: u64, tid: u64, kind: &str, name: &str) -> Json {
    obj([
        ("name", kind.into()),
        ("ph", "M".into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("args", obj([("name", name.into())])),
    ])
}

/// Build the Chrome trace-event document from drained thread buffers.
pub fn chrome_trace(threads: &[ThreadEvents]) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(metadata_event(REAL_PID, 0, "process_name", "real time"));
    events.push(metadata_event(SIM_PID, 0, "process_name", "simulated time"));
    let mut sim_lanes: Vec<u32> = Vec::new();
    for t in threads {
        if t.events
            .iter()
            .any(|e| matches!(e.track, Track::Real { .. }))
        {
            let name = t
                .thread_name
                .clone()
                .unwrap_or_else(|| format!("thread {}", t.tid));
            events.push(metadata_event(REAL_PID, t.tid, "thread_name", &name));
        }
        for e in &t.events {
            if let Track::Sim { lane } = e.track {
                if !sim_lanes.contains(&lane) {
                    sim_lanes.push(lane);
                }
            }
        }
    }
    sim_lanes.sort_unstable();
    for lane in sim_lanes {
        let name = if lane == SIM_SCHED_LANE {
            "scheduler clock".to_string()
        } else {
            format!("processor {lane}")
        };
        events.push(metadata_event(SIM_PID, lane as u64, "thread_name", &name));
    }
    for t in threads {
        for e in &t.events {
            events.push(event_json(e, t.tid));
        }
    }
    obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
    ])
}

/// Serialize the Chrome trace document to a string ready for Perfetto.
pub fn chrome_trace_json(threads: &[ThreadEvents]) -> String {
    chrome_trace(threads).to_json()
}

/// Like [`chrome_trace`], with extra pre-built events appended to
/// `traceEvents` — used by `dlsched explain` to add critical-path flow
/// annotations (`ph: "s"/"f"`) alongside the recorded spans.
pub fn chrome_trace_with(threads: &[ThreadEvents], extra: Vec<Json>) -> Json {
    let mut doc = chrome_trace(threads);
    if let Json::Obj(fields) = &mut doc {
        if let Some((_, Json::Arr(events))) =
            fields.iter_mut().find(|(k, _)| k == "traceEvents")
        {
            events.extend(extra);
        }
    }
    doc
}

/// Flat JSONL: one event object per line, in shard order. Suited to
/// `grep`/`jq`-style postprocessing rather than timeline UIs.
pub fn jsonl(threads: &[ThreadEvents]) -> String {
    let mut out = String::new();
    for t in threads {
        for e in &t.events {
            out.push_str(&event_json(e, t.tid).to_json());
            out.push('\n');
        }
    }
    out
}

/// Summary statistics from a validated Chrome trace file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    pub total_events: usize,
    /// Completed spans: matched B/E pairs plus "X" events.
    pub spans: usize,
    pub counters: usize,
    pub instants: usize,
    /// Flow events (`s`/`t`/`f` — critical-path annotations).
    pub flows: usize,
    /// Distinct categories seen on non-metadata events.
    pub categories: Vec<String>,
}

/// Parse and structurally validate a Chrome trace-event JSON document:
/// required fields present, per-track timestamps of B/E events monotone,
/// and every Begin matched by an End on the same track.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = TraceStats::default();
    // (pid, tid) -> (open span depth, last B/E timestamp)
    let mut tracks: std::collections::BTreeMap<(u64, u64), (usize, f64)> =
        std::collections::BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let pid = e
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let ts = e
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if let Some(cat) = e.get("cat").and_then(Json::as_str) {
            if !cat.is_empty() && !stats.categories.iter().any(|c| c == cat) {
                stats.categories.push(cat.to_string());
            }
        }
        stats.total_events += 1;
        let track = tracks.entry((pid, tid)).or_insert((0, f64::NEG_INFINITY));
        match ph {
            "B" | "E" => {
                if ts < track.1 {
                    return Err(format!(
                        "event {i}: timestamp {ts} goes backwards on track ({pid},{tid})"
                    ));
                }
                track.1 = ts;
                if ph == "B" {
                    track.0 += 1;
                } else {
                    track.0 = track
                        .0
                        .checked_sub(1)
                        .ok_or_else(|| format!("event {i}: E without matching B"))?;
                    stats.spans += 1;
                }
            }
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                stats.spans += 1;
            }
            "C" => stats.counters += 1,
            "i" => stats.instants += 1,
            "s" | "t" | "f" => {
                // Flow events bind to an enclosing slice by (pid, tid,
                // ts); structurally they only need an id to pair up.
                if e.get("id").and_then(Json::as_u64).is_none() {
                    return Err(format!("event {i}: flow event without id"));
                }
                stats.flows += 1;
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for ((pid, tid), (depth, _)) in tracks {
        if depth != 0 {
            return Err(format!("track ({pid},{tid}): {depth} unclosed span(s)"));
        }
    }
    stats.categories.sort();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Event, Phase, ThreadEvents, Track};
    use std::borrow::Cow;

    fn ev(phase: Phase, ts: f64, track: Track) -> Event {
        Event {
            name: Cow::Borrowed("e"),
            cat: "test",
            phase,
            ts_us: ts,
            dur_us: if phase == Phase::Complete { 5.0 } else { 0.0 },
            track,
            args: Vec::new(),
        }
    }

    fn threads(events: Vec<Event>) -> Vec<ThreadEvents> {
        vec![ThreadEvents {
            tid: 7,
            thread_name: Some("t7".into()),
            events,
            dropped: 0,
        }]
    }

    #[test]
    fn export_validates_cleanly() {
        let t = threads(vec![
            ev(Phase::Begin, 1.0, Track::Real { tid: 0 }),
            ev(Phase::Instant, 2.0, Track::Real { tid: 0 }),
            ev(Phase::End, 3.0, Track::Real { tid: 0 }),
            ev(Phase::Complete, 0.0, Track::Sim { lane: 2 }),
            ev(Phase::Counter, 4.0, Track::Real { tid: 0 }),
        ]);
        let text = chrome_trace_json(&t);
        let stats = validate_chrome_trace(&text).unwrap();
        assert_eq!(stats.total_events, 5);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.categories, vec!["test".to_string()]);
    }

    #[test]
    fn real_and_sim_land_in_separate_processes() {
        let t = threads(vec![
            ev(Phase::Complete, 1.0, Track::Real { tid: 0 }),
            ev(Phase::Complete, 1.0, Track::Sim { lane: 3 }),
        ]);
        let doc = chrome_trace(&t);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let pids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("pid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(pids, vec![REAL_PID, SIM_PID]);
        // Real events take the shard tid; sim events take the lane.
        let tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids, vec![7, 3]);
    }

    #[test]
    fn validator_rejects_unbalanced_and_backwards() {
        let unbalanced = threads(vec![ev(Phase::Begin, 1.0, Track::Real { tid: 0 })]);
        assert!(!chrome_trace_json(&unbalanced).is_empty());
        let err = validate_chrome_trace(&chrome_trace_json(&unbalanced)).unwrap_err();
        assert!(err.contains("unclosed"), "{err}");

        let backwards = threads(vec![
            ev(Phase::Begin, 5.0, Track::Real { tid: 0 }),
            ev(Phase::End, 4.0, Track::Real { tid: 0 }),
        ]);
        let err = validate_chrome_trace(&chrome_trace_json(&backwards)).unwrap_err();
        assert!(err.contains("backwards"), "{err}");

        let orphan_end = threads(vec![ev(Phase::End, 5.0, Track::Real { tid: 0 })]);
        let err = validate_chrome_trace(&chrome_trace_json(&orphan_end)).unwrap_err();
        assert!(err.contains("without matching"), "{err}");
    }

    #[test]
    fn validator_accepts_flow_events_and_requires_id() {
        let t = threads(vec![
            ev(Phase::Begin, 1.0, Track::Real { tid: 0 }),
            ev(Phase::End, 3.0, Track::Real { tid: 0 }),
        ]);
        let flow = |ph: &str, ts: f64, id: Option<u64>| {
            let mut fields = vec![
                ("name".to_string(), Json::Str("cp".into())),
                ("cat".to_string(), Json::Str("flow".into())),
                ("ph".to_string(), Json::Str(ph.into())),
                ("ts".to_string(), Json::Num(ts)),
                ("pid".to_string(), 1u64.into()),
                ("tid".to_string(), 7u64.into()),
            ];
            if let Some(id) = id {
                fields.push(("id".to_string(), id.into()));
            }
            Json::Obj(fields)
        };
        let doc = chrome_trace_with(
            &t,
            vec![flow("s", 1.5, Some(1)), flow("f", 2.5, Some(1))],
        );
        let stats = validate_chrome_trace(&doc.to_json()).unwrap();
        assert_eq!(stats.flows, 2);
        assert_eq!(stats.spans, 1);

        let bad = chrome_trace_with(&t, vec![flow("s", 1.5, None)]);
        let err = validate_chrome_trace(&bad.to_json()).unwrap_err();
        assert!(err.contains("without id"), "{err}");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let t = threads(vec![
            ev(Phase::Begin, 1.0, Track::Real { tid: 0 }),
            ev(Phase::End, 2.0, Track::Real { tid: 0 }),
        ]);
        let text = jsonl(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("ph").is_some());
            assert!(v.get("ts").is_some());
        }
    }
}
