//! Throughput smoke for the trace pipeline: 100k span pairs through
//! record → export → validate, with per-stage timings. Every stage must
//! scale linearly in the event count; a superlinear stage shows up here
//! immediately as seconds instead of milliseconds.

use incr_obs::trace;

fn main() {
    trace::clear();
    trace::enable();
    let t0 = std::time::Instant::now();
    for i in 0..100_000u64 {
        let s = trace::span_with("t", "pop", vec![("n", i.into())]);
        s.end_args(vec![("popped", i.into())]);
    }
    let push_time = t0.elapsed();
    trace::disable();
    let threads = trace::drain();
    let n: usize = threads.iter().map(|t| t.events.len()).sum();
    let t1 = std::time::Instant::now();
    let text = incr_obs::export::chrome_trace_json(&threads);
    let export_time = t1.elapsed();
    let t2 = std::time::Instant::now();
    let stats = incr_obs::export::validate_chrome_trace(&text).unwrap();
    let validate_time = t2.elapsed();
    println!("events {n}, spans {}", stats.spans);
    println!("push     {push_time:?}");
    println!("export   {export_time:?} ({} bytes)", text.len());
    println!("validate {validate_time:?}");
}
