//! Unit-step simulation of the paper's DAG model of computation (§IV).
//!
//! Every task is a DAG `D_u` of unit subtasks summarized by a
//! [`TaskShape`]: total work `w_u` split into `span` sequential stages,
//! each stage with a width cap. At each time step the `P` processors
//! greedily execute up to `P` available unit subtasks across the running
//! tasks (the list-scheduling discipline the Lemma 3/5/7 proofs assume).
//! Task durations in seconds are ignored here; the makespan is measured in
//! unit steps, matching the `w/P + L` style bounds exactly.

use incr_sched::{Instance, SafetyChecker, Scheduler, TaskShape};
use std::collections::VecDeque;

/// Configuration for a step-simulation run.
#[derive(Clone, Debug)]
pub struct StepSimConfig {
    /// Number of processors `P`.
    pub processors: usize,
    /// Audit pops against ground-truth reachability.
    pub audit: bool,
    /// Admit ready tasks through [`Scheduler::pop_batch`] instead of
    /// one-at-a-time `pop_ready` — lockstep with the runtime executor's
    /// batched dispatch path, so the simulator exercises (and its tests
    /// validate) the exact protocol the real pipeline uses.
    pub batch_pops: bool,
}

impl Default for StepSimConfig {
    fn default() -> Self {
        StepSimConfig {
            processors: 8,
            audit: false,
            batch_pops: false,
        }
    }
}

/// Outcome of a step-simulation run.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Makespan in unit time steps.
    pub makespan: u64,
    /// Tasks executed (must equal `|W|`).
    pub executed: usize,
    /// Unit subtasks executed (= total active work).
    pub work_done: u64,
    /// Steps during which at least one processor idled while work ran.
    pub idle_steps: u64,
}

/// Execution state of one running task.
struct Running {
    node: incr_dag::NodeId,
    /// Remaining sequential stages after the current one.
    stages_left: u32,
    /// Units left in the current stage.
    stage_remaining: u32,
    /// Width cap of each stage.
    stage_width: u32,
    /// Units left in total (to distribute across remaining stages).
    total_remaining: u64,
}

impl Running {
    fn new(node: incr_dag::NodeId, shape: TaskShape) -> Self {
        let (stages, width, total) = match shape {
            TaskShape::Unit => (1u32, 1u32, 1u64),
            TaskShape::Parallel { work } => (1, work.max(1), work.max(1) as u64),
            TaskShape::Chain { len } => (len.max(1), 1, len.max(1) as u64),
            TaskShape::WorkSpan { work, span } => {
                let span = span.max(1).min(work.max(1));
                let width = work.max(1).div_ceil(span);
                (span, width, work.max(1) as u64)
            }
        };
        let first_stage = stage_units(total, stages, width);
        Running {
            node,
            stages_left: stages - 1,
            stage_remaining: first_stage,
            stage_width: width,
            total_remaining: total,
        }
    }

    /// Units this task can absorb this step.
    fn available(&self) -> u32 {
        self.stage_remaining.min(self.stage_width)
    }

    /// Consume `units`; returns true when the whole task is done.
    fn advance(&mut self, units: u32) -> bool {
        debug_assert!(units <= self.available());
        self.stage_remaining -= units;
        self.total_remaining -= units as u64;
        while self.stage_remaining == 0 {
            if self.stages_left == 0 {
                debug_assert_eq!(self.total_remaining, 0);
                return true;
            }
            self.stage_remaining = stage_units(
                self.total_remaining,
                self.stages_left,
                self.stage_width,
            );
            self.stages_left -= 1;
        }
        false
    }
}

/// Units allotted to the next stage: spread `total` over `stages`
/// remaining stages without exceeding `width` per stage, front-loaded.
fn stage_units(total: u64, stages: u32, width: u32) -> u32 {
    debug_assert!(stages >= 1);
    let per = total.div_ceil(stages as u64);
    per.min(width as u64).max(1) as u32
}

/// Run `scheduler` over `instance` at unit-subtask granularity.
pub fn simulate_step(
    scheduler: &mut dyn Scheduler,
    instance: &Instance,
    cfg: &StepSimConfig,
) -> StepResult {
    debug_assert!(instance.validate().is_ok());
    assert!(cfg.processors >= 1);
    let p = cfg.processors as u32;

    let mut audit = cfg.audit.then(|| SafetyChecker::new(instance.dag.clone()));
    scheduler.start(&instance.initial_active);
    if let Some(a) = audit.as_mut() {
        a.on_start(&instance.initial_active);
    }

    let mut running: VecDeque<Running> = VecDeque::new();
    let mut batch_buf: Vec<incr_dag::NodeId> = Vec::new();
    let mut time = 0u64;
    let mut executed = 0usize;
    let mut work_done = 0u64;
    let mut idle_steps = 0u64;

    loop {
        // Admit ready tasks while spare capacity could exist this step.
        loop {
            let avail: u32 = running.iter().map(Running::available).sum();
            if avail >= p {
                break;
            }
            if cfg.batch_pops {
                batch_buf.clear();
                let need = (p - avail) as usize;
                if scheduler.pop_batch(&mut batch_buf, need) == 0 {
                    break;
                }
                for &t in &batch_buf {
                    if let Some(a) = audit.as_mut() {
                        a.on_pop(t);
                    }
                    running.push_back(Running::new(t, instance.shapes[t.index()]));
                }
            } else {
                match scheduler.pop_ready() {
                    Some(t) => {
                        if let Some(a) = audit.as_mut() {
                            a.on_pop(t);
                        }
                        running.push_back(Running::new(t, instance.shapes[t.index()]));
                    }
                    None => break,
                }
            }
        }

        if running.is_empty() {
            assert!(
                scheduler.is_quiescent(),
                "{} stalled in step simulation",
                scheduler.name()
            );
            break;
        }

        // One time step: hand out up to P units greedily, FIFO.
        let mut budget = p;
        let mut finished: Vec<incr_dag::NodeId> = Vec::new();
        for task in running.iter_mut() {
            if budget == 0 {
                break;
            }
            let units = task.available().min(budget);
            if units == 0 {
                continue;
            }
            budget -= units;
            work_done += units as u64;
            if task.advance(units) {
                finished.push(task.node);
            }
        }
        if budget > 0 {
            idle_steps += 1;
        }
        time += 1;

        running.retain(|t| !finished.contains(&t.node));
        for t in finished {
            executed += 1;
            let fired = &instance.fired[t.index()];
            scheduler.on_completed(t, fired);
            if let Some(a) = audit.as_mut() {
                a.on_complete(t, fired);
            }
        }
    }

    if let Some(a) = audit.as_mut() {
        a.on_finish();
    }

    StepResult {
        makespan: time,
        executed,
        work_done,
        idle_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{random, DagBuilder, NodeId};
    use incr_sched::{LevelBased, SchedulerKind};
    use std::sync::Arc;

    fn cfg(p: usize) -> StepSimConfig {
        StepSimConfig {
            processors: p,
            audit: true,
            batch_pops: false,
        }
    }

    #[test]
    fn unit_chain_takes_length_steps() {
        let dag = Arc::new(random::chain(5));
        let mut inst = Instance::unit(dag.clone(), vec![NodeId(0)]);
        for i in 0..4usize {
            inst.fired[i] = vec![NodeId(i as u32 + 1)];
        }
        let mut s = LevelBased::new(dag);
        let r = simulate_step(&mut s, &inst, &cfg(4));
        assert_eq!(r.makespan, 5);
        assert_eq!(r.executed, 5);
        assert_eq!(r.work_done, 5);
    }

    #[test]
    fn parallel_task_uses_all_processors() {
        let dag = Arc::new(random::chain(1));
        let mut inst = Instance::unit(dag.clone(), vec![NodeId(0)]);
        inst.shapes[0] = TaskShape::Parallel { work: 12 };
        let mut s = LevelBased::new(dag);
        let r = simulate_step(&mut s, &inst, &cfg(4));
        assert_eq!(r.makespan, 3, "12 units / 4 processors");
    }

    #[test]
    fn chain_task_is_sequential() {
        let dag = Arc::new(random::chain(1));
        let mut inst = Instance::unit(dag.clone(), vec![NodeId(0)]);
        inst.shapes[0] = TaskShape::Chain { len: 7 };
        let mut s = LevelBased::new(dag);
        let r = simulate_step(&mut s, &inst, &cfg(8));
        assert_eq!(r.makespan, 7, "no internal parallelism");
    }

    #[test]
    fn workspan_respects_both_limits() {
        let dag = Arc::new(random::chain(1));
        let mut inst = Instance::unit(dag.clone(), vec![NodeId(0)]);
        // 12 units over 3 stages of width 4.
        inst.shapes[0] = TaskShape::WorkSpan { work: 12, span: 3 };
        let mut s = LevelBased::new(dag.clone());
        // Plenty of processors: bounded by span.
        let r = simulate_step(&mut s, &inst, &cfg(16));
        assert_eq!(r.makespan, 3);
        // Two processors: bounded by work/P.
        let mut s = LevelBased::new(dag);
        let r = simulate_step(&mut s, &inst, &cfg(2));
        assert_eq!(r.makespan, 6);
    }

    /// Lemma 3: unit tasks, makespan <= w/P + L.
    #[test]
    fn lemma3_bound_on_random_dags() {
        for seed in 0..10u64 {
            let dag = Arc::new(random::layered(random::LayeredParams {
                layers: 6,
                width: 7,
                max_in: 3,
                back_span: 2,
                seed,
            }));
            let mut inst = Instance::unit(dag.clone(), dag.sources().collect());
            for v in dag.nodes() {
                inst.fired[v.index()] = dag.children(v).to_vec();
            }
            let w = inst.active_work_units();
            let l = dag.num_levels() as u64;
            for p in [1usize, 2, 4, 8] {
                let mut s = LevelBased::new(dag.clone());
                let r = simulate_step(&mut s, &inst, &cfg(p));
                let bound = w.div_ceil(p as u64) + l;
                assert!(
                    r.makespan <= bound,
                    "seed {seed} P={p}: makespan {} > bound {}",
                    r.makespan,
                    bound
                );
            }
        }
    }

    /// Every scheduler kind agrees on the executed set in step mode.
    #[test]
    fn schedulers_agree_in_step_mode() {
        let dag = Arc::new(random::gnp_ordered(20, 0.2, 99));
        let mut inst = Instance::unit(dag.clone(), dag.sources().take(2).collect());
        for v in dag.nodes() {
            inst.fired[v.index()] = dag
                .children(v)
                .iter()
                .copied()
                .filter(|c| c.0 % 3 != 0)
                .collect();
        }
        let expect = inst.active_count();
        for kind in [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(5),
            SchedulerKind::LogicBlox,
            SchedulerKind::SignalPropagation,
            SchedulerKind::Hybrid,
            SchedulerKind::ExactGreedy,
        ] {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_step(s.as_mut(), &inst, &cfg(3));
            assert_eq!(r.executed, expect, "{kind:?}");
        }
    }

    /// With unit task shapes, batched admission (`pop_batch`) is
    /// step-for-step identical to one-at-a-time admission: same makespan,
    /// executed set size, work, and idle accounting — for every scheduler.
    #[test]
    fn batched_admission_matches_serial_in_lockstep() {
        let dag = Arc::new(random::gnp_ordered(24, 0.18, 7));
        let mut inst = Instance::unit(dag.clone(), dag.sources().take(2).collect());
        for v in dag.nodes() {
            inst.fired[v.index()] = dag
                .children(v)
                .iter()
                .copied()
                .filter(|c| c.0 % 4 != 1)
                .collect();
        }
        for kind in [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(5),
            SchedulerKind::LogicBlox,
            SchedulerKind::SignalPropagation,
            SchedulerKind::Hybrid,
            SchedulerKind::ExactGreedy,
        ] {
            for p in [1usize, 3, 8] {
                let mut serial = kind.build(inst.dag.clone());
                let rs = simulate_step(serial.as_mut(), &inst, &cfg(p));
                let mut batched_cfg = cfg(p);
                batched_cfg.batch_pops = true;
                let mut batched = kind.build(inst.dag.clone());
                let rb = simulate_step(batched.as_mut(), &inst, &batched_cfg);
                assert_eq!(rs.executed, rb.executed, "{kind:?} P={p}");
                assert_eq!(rs.makespan, rb.makespan, "{kind:?} P={p}");
                assert_eq!(rs.work_done, rb.work_done, "{kind:?} P={p}");
                assert_eq!(rs.idle_steps, rb.idle_steps, "{kind:?} P={p}");
            }
        }
    }

    #[test]
    fn empty_initial_set_finishes_at_time_zero() {
        let dag = Arc::new(random::chain(3));
        let inst = Instance::unit(dag.clone(), vec![]);
        let mut b = DagBuilder::new(0);
        let _ = &mut b;
        let mut s = LevelBased::new(dag);
        let r = simulate_step(&mut s, &inst, &cfg(2));
        assert_eq!(r.makespan, 0);
    }
}
