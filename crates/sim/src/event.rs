//! Discrete-event simulation of duration-based tasks on `P` processors.
//!
//! Each task occupies one processor for its trace-supplied duration (the
//! production traces attach a processing time to every task, §VI-A). The
//! scheduler is modelled as a single sequential resource: every protocol
//! call (pop, completion handling) consumes simulated time according to
//! the operations it charged to its [`CostMeter`], priced by
//! [`CostPrices`]. A dispatch therefore cannot start before the scheduler
//! clock reaches it — slow scans visibly delay work, which is exactly how
//! scheduling overhead inflates the total execution times in Tables II
//! and III.

use incr_obs::trace;
use incr_sched::{CostMeter, CostPrices, Instance, SafetyChecker, Scheduler};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration for one event-simulation run.
#[derive(Clone, Debug)]
pub struct EventSimConfig {
    /// Number of processors `P` (the paper simulates with 8).
    pub processors: usize,
    /// Prices converting scheduler operation counts to simulated seconds.
    pub prices: CostPrices,
    /// Audit every pop against ground-truth reachability (`O(V+E)` per
    /// pop — test-scale instances only).
    pub audit: bool,
    /// Abort when the scheduler's run-state memory exceeds this many
    /// bytes (the meta-scheduler's budget, Theorem 10).
    pub space_budget: Option<usize>,
}

impl Default for EventSimConfig {
    fn default() -> Self {
        EventSimConfig {
            processors: 8,
            prices: CostPrices::default(),
            audit: false,
            space_budget: None,
        }
    }
}

/// Outcome of one simulated run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Total execution time including scheduling overhead (what Tables II
    /// and III call "total makespan").
    pub makespan: f64,
    /// Total simulated time the scheduler resource was busy ("scheduling
    /// overhead" in Table III).
    pub sched_overhead: f64,
    /// Tasks executed (must equal `|W|`).
    pub executed: usize,
    /// Final cost counters.
    pub cost: CostMeter,
    /// Peak run-state memory observed (bytes).
    pub peak_space: usize,
    /// Scheduler precomputation memory (bytes).
    pub precompute_space: usize,
    /// Real wall-clock seconds spent inside scheduler calls (reported
    /// alongside the modeled overhead; not used in the makespan).
    pub wall_sched_seconds: f64,
    /// True if the run was aborted because `space_budget` was exceeded
    /// (makespan is then the abort time, a lower bound).
    pub over_budget: bool,
    /// Total task execution time (sum of executed durations).
    pub busy_seconds: f64,
}

/// Min-heap entry: a running task completing at `time`.
struct Completion {
    time: f64,
    node: incr_dag::NodeId,
    /// Simulated processor index the task ran on (trace lane).
    lane: u32,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.node == other.node
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; ties broken by node id for determinism.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Run `scheduler` over `instance` and return the measured result.
///
/// Panics if the scheduler stalls (claims no ready work while active tasks
/// remain and nothing is running) — that is a scheduler bug, not a
/// workload property.
pub fn simulate_event(
    scheduler: &mut dyn Scheduler,
    instance: &Instance,
    cfg: &EventSimConfig,
) -> SimResult {
    debug_assert!(instance.validate().is_ok());
    assert!(cfg.processors >= 1, "need at least one processor");

    let mut audit = cfg.audit.then(|| SafetyChecker::new(instance.dag.clone()));

    let mut now = 0.0f64;
    let mut sched_clock = 0.0f64;
    let mut overhead = 0.0f64;
    let mut wall = 0.0f64;
    let mut peak_space = 0usize;
    let mut executed = 0usize;
    let mut busy = 0.0f64;
    let mut makespan = 0.0f64;
    let mut idle = cfg.processors;
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();

    // Charge a scheduler call: advance the scheduler clock by the delta of
    // weighted cost, starting no earlier than `now`. When tracing is on,
    // each nonzero charge becomes a span on the simulated scheduler-clock
    // lane, so Perfetto shows exactly where overhead delays dispatches.
    macro_rules! charge {
        ($name:literal, $before:expr, $t0:expr) => {{
            wall += $t0.elapsed().as_secs_f64();
            let delta = scheduler.cost().weighted(&cfg.prices) - $before;
            debug_assert!(delta >= -1e-12, "cost must be monotone");
            if sched_clock < now {
                sched_clock = now;
            }
            if delta > 0.0 && trace::enabled() {
                trace::sim_complete(
                    trace::SIM_SCHED_LANE,
                    $name,
                    sched_clock * 1e6,
                    delta * 1e6,
                    Vec::new(),
                );
            }
            sched_clock += delta.max(0.0);
            overhead += delta.max(0.0);
        }};
    }

    let mut free_lanes: Vec<u32> = (0..cfg.processors as u32).rev().collect();

    let before = scheduler.cost().weighted(&cfg.prices);
    let t0 = std::time::Instant::now();
    scheduler.start(&instance.initial_active);
    charge!("sched.start", before, t0);
    if let Some(a) = audit.as_mut() {
        a.on_start(&instance.initial_active);
    }

    let mut over_budget = false;
    'outer: loop {
        // Dispatch onto idle processors.
        while idle > 0 {
            let before = scheduler.cost().weighted(&cfg.prices);
            let t0 = std::time::Instant::now();
            let popped = scheduler.pop_ready();
            charge!("sched.pop_ready", before, t0);
            let Some(t) = popped else { break };
            if let Some(a) = audit.as_mut() {
                a.on_pop(t);
            }
            // The dispatch leaves the scheduler no earlier than the
            // scheduler clock: overhead delays work.
            let start = now.max(sched_clock);
            busy += instance.durations[t.index()];
            let finish = start + instance.durations[t.index()];
            makespan = makespan.max(finish);
            let lane = free_lanes.pop().expect("idle count tracks free lanes");
            if trace::enabled() {
                trace::sim_complete(
                    lane,
                    format!("task {}", t.0),
                    start * 1e6,
                    instance.durations[t.index()] * 1e6,
                    vec![
                        ("node", (t.0 as u64).into()),
                        ("level", (instance.dag.level(t) as u64).into()),
                    ],
                );
            }
            heap.push(Completion {
                time: finish,
                node: t,
                lane,
            });
            idle -= 1;
        }

        peak_space = peak_space.max(scheduler.space_bytes());
        if let Some(budget) = cfg.space_budget {
            if scheduler.space_bytes() > budget {
                over_budget = true;
                break 'outer;
            }
        }

        let Some(c) = heap.pop() else {
            assert!(
                scheduler.is_quiescent(),
                "{} stalled: no running tasks but active work remains",
                scheduler.name()
            );
            break;
        };
        now = c.time;
        idle += 1;
        free_lanes.push(c.lane);
        executed += 1;
        let fired = &instance.fired[c.node.index()];
        let before = scheduler.cost().weighted(&cfg.prices);
        let t0 = std::time::Instant::now();
        scheduler.on_completed(c.node, fired);
        charge!("sched.on_completed", before, t0);
        if let Some(a) = audit.as_mut() {
            a.on_complete(c.node, fired);
        }
    }

    if !over_budget {
        if let Some(a) = audit.as_mut() {
            a.on_finish();
        }
    }

    if trace::enabled() {
        trace::sim_instant(
            trace::SIM_SCHED_LANE,
            "makespan",
            makespan.max(now) * 1e6,
            vec![
                ("executed", executed.into()),
                ("sched_overhead_s", overhead.into()),
            ],
        );
    }

    SimResult {
        makespan: makespan.max(now),
        sched_overhead: overhead,
        executed,
        cost: scheduler.cost(),
        peak_space,
        precompute_space: scheduler.precompute_bytes(),
        wall_sched_seconds: wall,
        over_budget,
        busy_seconds: busy,
    }
}

impl SimResult {
    /// Processor utilization: executed work over `P · makespan` capacity.
    /// Low utilization = processors idled at barriers or behind the
    /// scheduler clock.
    pub fn utilization(&self, processors: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.busy_seconds / (processors as f64 * self.makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{DagBuilder, NodeId};
    use incr_sched::{LevelBased, SchedulerKind};
    use std::sync::Arc;

    fn two_chains() -> Instance {
        // 0 -> 2 -> 4 ; 1 -> 3 -> 5 (levels 0,1,2).
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut inst = Instance::unit(dag, vec![NodeId(0), NodeId(1)]);
        for v in 0..4u32 {
            if v < 4 {
                inst.fired[v as usize] = vec![NodeId(v + 2)];
            }
        }
        inst
    }

    fn free_cfg(p: usize) -> EventSimConfig {
        EventSimConfig {
            processors: p,
            prices: incr_sched::CostPrices::free(),
            audit: true,
            space_budget: None,
        }
    }

    #[test]
    fn serial_execution_sums_durations() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let r = simulate_event(&mut s, &inst, &free_cfg(1));
        assert_eq!(r.executed, 6);
        assert!((r.makespan - 6.0).abs() < 1e-9, "makespan {}", r.makespan);
        assert_eq!(r.sched_overhead, 0.0);
    }

    #[test]
    fn two_processors_halve_the_chains() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let r = simulate_event(&mut s, &inst, &free_cfg(2));
        // Perfectly parallel chains of length 3.
        assert!((r.makespan - 3.0).abs() < 1e-9, "makespan {}", r.makespan);
    }

    #[test]
    fn overhead_delays_dispatch() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let heavy = EventSimConfig {
            processors: 2,
            prices: incr_sched::CostPrices::default().scaled(1e7), // absurd prices
            audit: false,
            space_budget: None,
        };
        let r = simulate_event(&mut s, &inst, &heavy);
        assert!(r.sched_overhead > 0.0);
        assert!(
            r.makespan > 3.0 + r.sched_overhead / 2.0,
            "makespan {} must absorb overhead {}",
            r.makespan,
            r.sched_overhead
        );
    }

    #[test]
    fn all_schedulers_agree_on_executed_count() {
        let inst = two_chains();
        for kind in [
            SchedulerKind::LevelBased,
            SchedulerKind::Lookahead(4),
            SchedulerKind::LogicBlox,
            SchedulerKind::SignalPropagation,
            SchedulerKind::Hybrid,
            SchedulerKind::ExactGreedy,
        ] {
            let mut s = kind.build(inst.dag.clone());
            let r = simulate_event(s.as_mut(), &inst, &free_cfg(3));
            assert_eq!(r.executed, 6, "{kind:?}");
        }
    }

    #[test]
    fn barrier_vs_exact_makespan_gap() {
        // Straggler demo: chain A's level-1 task is long; chain B's
        // level-2 task is long too. Exact readiness overlaps them;
        // LevelBased's barrier serializes them.
        let mut inst = two_chains();
        inst.durations = vec![1.0, 1.0, 10.0, 1.0, 1.0, 10.0];
        let mut lb = incr_sched::LevelBased::new(inst.dag.clone());
        let mut ex = incr_sched::ExactGreedy::new(inst.dag.clone());
        let rl = simulate_event(&mut lb, &inst, &free_cfg(2));
        let re = simulate_event(&mut ex, &inst, &free_cfg(2));
        assert!(
            rl.makespan > re.makespan,
            "LB {} should exceed exact {}",
            rl.makespan,
            re.makespan
        );
    }

    #[test]
    fn utilization_reflects_barrier_idling() {
        let inst = two_chains();
        let mut lb = LevelBased::new(inst.dag.clone());
        let r = simulate_event(&mut lb, &inst, &free_cfg(2));
        assert!((r.busy_seconds - 6.0).abs() < 1e-9, "6 unit tasks");
        // Two perfectly parallel chains on 2 processors: full utilization.
        assert!((r.utilization(2) - 1.0).abs() < 1e-9);
        // Same work on 4 processors: half the slots idle.
        let mut lb = LevelBased::new(inst.dag.clone());
        let r = simulate_event(&mut lb, &inst, &free_cfg(4));
        assert!((r.utilization(4) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn budget_aborts_run() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let cfg = EventSimConfig {
            space_budget: Some(1), // absurdly small
            audit: false,
            ..free_cfg(2)
        };
        let r = simulate_event(&mut s, &inst, &cfg);
        assert!(r.over_budget);
    }

    #[test]
    fn zero_active_instance_is_trivial() {
        let inst = Instance::unit(two_chains().dag, vec![]);
        let mut s = LevelBased::new(inst.dag.clone());
        let r = simulate_event(&mut s, &inst, &free_cfg(2));
        assert_eq!(r.executed, 0);
        assert_eq!(r.makespan, 0.0);
    }
}
