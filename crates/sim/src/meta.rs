//! The meta-scheduler `A'` of Theorem 10 / Corollary 11 (paper §V).
//!
//! Given any scheduler `A` and the LevelBased scheduler `B`, `A'` devotes
//! `P/2` processors to each, running them independently (tasks may execute
//! twice), and finishes when either finishes. If `A`'s memory consumption
//! reaches half the budget `ζ`, `A` is stopped and LevelBased continues on
//! all processors. The resulting makespan is at most `2·min(T_A, T_B)`
//! within budget, and at most `2·T_B` otherwise.
//!
//! This is a *simulation-level* combinator (the practical cooperative
//! variant is [`incr_sched::Hybrid`]): it composes two independent
//! [`simulate_event`] runs exactly as the proof does.

use crate::event::{simulate_event, EventSimConfig, SimResult};
use incr_sched::{Instance, Scheduler};

/// Configuration for a meta-scheduler simulation.
#[derive(Clone, Debug)]
pub struct MetaConfig {
    /// Total processors `P`; each sub-scheduler gets `P/2` (min 1).
    pub processors: usize,
    /// Memory budget `ζ` in bytes; `A` may use at most `ζ/2`.
    pub budget: usize,
    /// Event-simulation settings shared by both runs (processor count is
    /// overridden per sub-run).
    pub base: EventSimConfig,
}

/// Outcome of a meta-scheduler simulation.
#[derive(Clone, Debug)]
pub struct MetaResult {
    /// The meta-scheduler's makespan: `min` of the finishing sub-run
    /// (each on `P/2` processors), or the LevelBased run if `A` blew the
    /// budget.
    pub makespan: f64,
    /// `A`'s sub-run (may be marked `over_budget`).
    pub a: SimResult,
    /// LevelBased's sub-run.
    pub b: SimResult,
    /// True if `A` exceeded `ζ/2` and was abandoned.
    pub a_aborted: bool,
    /// Which sub-scheduler determined the makespan.
    pub winner: &'static str,
}

/// Simulate `A'` over `instance`: `a` is the arbitrary scheduler, `b` the
/// LevelBased (or any guaranteed) scheduler.
pub fn simulate_meta(
    a: &mut dyn Scheduler,
    b: &mut dyn Scheduler,
    instance: &Instance,
    cfg: &MetaConfig,
) -> MetaResult {
    let half = (cfg.processors / 2).max(1);
    let a_cfg = EventSimConfig {
        processors: half,
        space_budget: Some(cfg.budget / 2),
        ..cfg.base.clone()
    };
    let b_cfg = EventSimConfig {
        processors: half,
        space_budget: None,
        ..cfg.base.clone()
    };
    let ra = simulate_event(a, instance, &a_cfg);
    let rb = simulate_event(b, instance, &b_cfg);
    let a_aborted = ra.over_budget;
    let (makespan, winner) = if a_aborted || rb.makespan <= ra.makespan {
        (rb.makespan, b.name_static())
    } else {
        (ra.makespan, a.name_static())
    };
    MetaResult {
        makespan,
        a: ra,
        b: rb,
        a_aborted,
        winner,
    }
}

/// Helper to get a `'static`-ish label out of a trait object (names are
/// string literals in every implementation, but the trait returns `&str`
/// tied to `self`; copy into a leaked static is overkill — map the known
/// names instead).
trait NameStatic {
    fn name_static(&self) -> &'static str;
}

impl NameStatic for dyn Scheduler + '_ {
    fn name_static(&self) -> &'static str {
        match self.name() {
            "LevelBased" => "LevelBased",
            "LBL" => "LBL",
            "LogicBlox" => "LogicBlox",
            "SignalPropagation" => "SignalPropagation",
            "Hybrid" => "Hybrid",
            "ExactGreedy" => "ExactGreedy",
            _ => "other",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incr_dag::{random, NodeId};
    use incr_sched::{CostPrices, ExactGreedy, LevelBased, LogicBlox};
    use std::sync::Arc;

    fn layered_instance(seed: u64) -> Instance {
        let dag = Arc::new(random::layered(random::LayeredParams {
            layers: 8,
            width: 6,
            max_in: 2,
            back_span: 2,
            seed,
        }));
        let mut inst = Instance::unit(dag.clone(), dag.sources().collect());
        for v in dag.nodes() {
            inst.fired[v.index()] = dag
                .children(v)
                .iter()
                .copied()
                .filter(|c| !(c.0 + seed as u32).is_multiple_of(4))
                .collect();
        }
        inst
    }

    fn meta_cfg(p: usize, budget: usize) -> MetaConfig {
        MetaConfig {
            processors: p,
            budget,
            base: EventSimConfig {
                processors: p,
                prices: CostPrices::free(),
                audit: false,
                space_budget: None,
            },
        }
    }

    /// Theorem 10: makespan(A') <= 2 * min(T_A, T_B) where T are measured
    /// on the full P processors.
    #[test]
    fn theorem10_bound_holds() {
        for seed in 0..6u64 {
            let inst = layered_instance(seed);
            let p = 8;
            let full = EventSimConfig {
                processors: p,
                prices: CostPrices::free(),
                audit: false,
                space_budget: None,
            };
            let ta = {
                let mut a = LogicBlox::new(inst.dag.clone());
                simulate_event(&mut a, &inst, &full).makespan
            };
            let tb = {
                let mut b = LevelBased::new(inst.dag.clone());
                simulate_event(&mut b, &inst, &full).makespan
            };
            let mut a = LogicBlox::new(inst.dag.clone());
            let mut b = LevelBased::new(inst.dag.clone());
            let r = simulate_meta(&mut a, &mut b, &inst, &meta_cfg(p, usize::MAX / 4));
            assert!(!r.a_aborted);
            let bound = 2.0 * ta.min(tb) + 1e-9;
            assert!(
                r.makespan <= bound,
                "seed {seed}: meta {} > bound {}",
                r.makespan,
                bound
            );
        }
    }

    /// With a tiny budget, A is abandoned and LevelBased's result stands.
    #[test]
    fn budget_violation_falls_back_to_levelbased() {
        let inst = layered_instance(1);
        let mut a = ExactGreedy::new(inst.dag.clone()); // any heuristic
        let mut b = LevelBased::new(inst.dag.clone());
        let r = simulate_meta(&mut a, &mut b, &inst, &meta_cfg(8, 4));
        assert!(r.a_aborted);
        assert_eq!(r.winner, "LevelBased");
        assert!((r.makespan - r.b.makespan).abs() < 1e-12);
    }

    #[test]
    fn winner_is_the_faster_subrun() {
        let inst = layered_instance(2);
        let mut a = ExactGreedy::new(inst.dag.clone());
        let mut b = LevelBased::new(inst.dag.clone());
        let r = simulate_meta(&mut a, &mut b, &inst, &meta_cfg(4, usize::MAX / 4));
        let faster = r.a.makespan.min(r.b.makespan);
        assert!((r.makespan - faster).abs() < 1e-12);
    }

    /// Corollary 11 memory claim: the LevelBased side uses O(V) beyond A.
    #[test]
    fn levelbased_side_memory_is_linear() {
        let inst = layered_instance(3);
        let v = inst.dag.node_count();
        let mut a = LogicBlox::new(inst.dag.clone());
        let mut b = LevelBased::new(inst.dag.clone());
        let r = simulate_meta(&mut a, &mut b, &inst, &meta_cfg(8, usize::MAX / 4));
        // Generous constant: state table + buckets + counters.
        assert!(
            r.b.peak_space <= 64 * v + 1024,
            "LevelBased peak {} not O(V={})",
            r.b.peak_space,
            v
        );
        let _ = NodeId(0);
    }
}
