//! Schedule timelines: record per-task dispatch/finish times during an
//! event simulation and export them as CSV or a self-contained Gantt SVG.
//!
//! The paper's Figure 2 argument is about *where processors idle*; a
//! timeline makes that visible: under LevelBased the lanes drain at every
//! level boundary, under exact-readiness schedulers the long `k_i` tasks
//! overlap. `cargo run -p incr-bench --bin schedviz` renders the
//! comparison.

use incr_sched::{CostPrices, Instance, Scheduler};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Write as _;

/// One executed task's placement.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    pub node: incr_dag::NodeId,
    pub lane: usize,
    pub start: f64,
    pub finish: f64,
    /// DAG level of the node (coloring key).
    pub level: u32,
}

/// A recorded schedule.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    pub spans: Vec<Span>,
    pub makespan: f64,
    pub lanes: usize,
}

impl Timeline {
    /// CSV rows: `node,lane,start,finish,level`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,lane,start,finish,level\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{:.9},{:.9},{}",
                s.node, s.lane, s.start, s.finish, s.level
            );
        }
        out
    }

    /// Self-contained Gantt SVG (one horizontal lane per processor, tasks
    /// colored by DAG level).
    pub fn to_svg(&self, title: &str) -> String {
        let width = 960.0f64;
        let lane_h = 26.0f64;
        let top = 40.0f64;
        let height = top + self.lanes as f64 * lane_h + 20.0;
        let scale = if self.makespan > 0.0 {
            (width - 120.0) / self.makespan
        } else {
            1.0
        };
        let x = |t: f64| 60.0 + t * scale;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="monospace" font-size="12">"#
        );
        let _ = writeln!(
            out,
            r#"<text x="10" y="20">{title} — makespan {:.3}</text>"#,
            self.makespan
        );
        for lane in 0..self.lanes {
            let y = top + lane as f64 * lane_h;
            let _ = writeln!(
                out,
                r##"<text x="10" y="{:.1}">P{lane}</text><line x1="60" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ccc"/>"##,
                y + lane_h * 0.7,
                y + lane_h - 2.0,
                x(self.makespan),
                y + lane_h - 2.0
            );
        }
        for s in &self.spans {
            let y = top + s.lane as f64 * lane_h + 2.0;
            let w = ((s.finish - s.start) * scale).max(1.0);
            // Level -> hue: cycle through a categorical wheel.
            let hue = (s.level as f64 * 47.0) % 360.0;
            let _ = writeln!(
                out,
                r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.1}" fill="hsl({hue:.0},65%,60%)" stroke="#333" stroke-width="0.5"><title>task {} level {} [{:.3}, {:.3}]</title></rect>"##,
                x(s.start),
                y,
                w,
                lane_h - 6.0,
                s.node,
                s.level,
                s.start,
                s.finish
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

struct Completion {
    time: f64,
    node: incr_dag::NodeId,
    lane: usize,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.node == other.node
    }
}
impl Eq for Completion {}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Event-simulate like [`crate::simulate_event`] but record the schedule.
/// Scheduler overhead is priced exactly the same way; the returned spans
/// include the overhead-induced dispatch delays.
pub fn record_timeline(
    scheduler: &mut dyn Scheduler,
    instance: &Instance,
    processors: usize,
    prices: &CostPrices,
) -> Timeline {
    assert!(processors >= 1);
    let mut sched_clock = 0.0f64;
    let mut now = 0.0f64;
    let mut free_lanes: Vec<usize> = (0..processors).rev().collect();
    let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
    let mut spans = Vec::new();
    let mut makespan = 0.0f64;

    let mut last_cost = 0.0f64;
    let charge = |s: &mut dyn Scheduler, now: f64, clock: &mut f64, last: &mut f64| {
        let c = s.cost().weighted(prices);
        if *clock < now {
            *clock = now;
        }
        *clock += (c - *last).max(0.0);
        *last = c;
    };

    scheduler.start(&instance.initial_active);
    charge(scheduler, now, &mut sched_clock, &mut last_cost);
    loop {
        while let Some(&lane) = free_lanes.last() {
            let popped = scheduler.pop_ready();
            charge(scheduler, now, &mut sched_clock, &mut last_cost);
            let Some(t) = popped else { break };
            free_lanes.pop();
            let start = now.max(sched_clock);
            let finish = start + instance.durations[t.index()];
            makespan = makespan.max(finish);
            spans.push(Span {
                node: t,
                lane,
                start,
                finish,
                level: instance.dag.level(t),
            });
            heap.push(Completion {
                time: finish,
                node: t,
                lane,
            });
        }
        let Some(c) = heap.pop() else {
            assert!(scheduler.is_quiescent(), "stall while recording timeline");
            break;
        };
        now = c.time;
        free_lanes.push(c.lane);
        scheduler.on_completed(c.node, &instance.fired[c.node.index()]);
        charge(scheduler, now, &mut sched_clock, &mut last_cost);
    }

    Timeline {
        spans,
        makespan,
        lanes: processors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{simulate_event, EventSimConfig};
    use incr_dag::{DagBuilder, NodeId};
    use incr_sched::LevelBased;
    use std::sync::Arc;

    fn two_chains() -> Instance {
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 2), (2, 4), (1, 3), (3, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let dag = Arc::new(b.build().unwrap());
        let mut inst = Instance::unit(dag, vec![NodeId(0), NodeId(1)]);
        for v in 0..4u32 {
            inst.fired[v as usize] = vec![NodeId(v + 2)];
        }
        inst
    }

    #[test]
    fn timeline_matches_simulator_makespan() {
        let inst = two_chains();
        let prices = CostPrices::free();
        let mut s1 = LevelBased::new(inst.dag.clone());
        let r = simulate_event(
            &mut s1,
            &inst,
            &EventSimConfig {
                processors: 2,
                prices,
                audit: false,
                space_budget: None,
            },
        );
        let mut s2 = LevelBased::new(inst.dag.clone());
        let t = record_timeline(&mut s2, &inst, 2, &prices);
        assert_eq!(t.spans.len(), 6);
        assert!((t.makespan - r.makespan).abs() < 1e-9);
        assert_eq!(t.lanes, 2);
    }

    #[test]
    fn spans_never_overlap_within_a_lane() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let t = record_timeline(&mut s, &inst, 3, &CostPrices::default());
        for lane in 0..t.lanes {
            let mut lane_spans: Vec<&Span> = t.spans.iter().filter(|s| s.lane == lane).collect();
            lane_spans.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in lane_spans.windows(2) {
                assert!(
                    w[0].finish <= w[1].start + 1e-12,
                    "overlap in lane {lane}: {:?} vs {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn csv_and_svg_render() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let t = record_timeline(&mut s, &inst, 2, &CostPrices::free());
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 7, "header + 6 spans");
        assert!(csv.starts_with("node,lane,start,finish,level"));
        let svg = t.to_svg("test");
        assert!(svg.starts_with("<svg"));
        assert!(svg.matches("<rect").count() == 6);
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn dispatch_respects_precedence() {
        let inst = two_chains();
        let mut s = LevelBased::new(inst.dag.clone());
        let t = record_timeline(&mut s, &inst, 4, &CostPrices::free());
        let span_of = |n: u32| t.spans.iter().find(|s| s.node == NodeId(n)).unwrap();
        for (parent, child) in [(0u32, 2u32), (2, 4), (1, 3), (3, 5)] {
            assert!(
                span_of(parent).finish <= span_of(child).start + 1e-12,
                "{parent} must finish before {child} starts"
            );
        }
    }
}
