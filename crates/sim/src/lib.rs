//! # incr-sim — scheduling simulators
//!
//! The paper evaluates its schedulers with a C++/Boost scheduling
//! simulator (§VI-A): "The simulator reconstructs the DAG from a job
//! trace, attaching meta-information, such as its processing time, to each
//! task ... runs the scheduler simulation ... and outputs the makespan."
//! This crate is that simulator, rebuilt in Rust, in two granularities:
//!
//! * [`event`] — a discrete-event simulator over *durations* (seconds per
//!   task, one processor per task), used for the production-trace
//!   experiments (Tables II and III). Scheduler decisions consume
//!   *simulated* time through the [`incr_sched::CostPrices`] model, so
//!   the reported makespan includes scheduling overhead exactly as the
//!   paper's totals do.
//! * [`step`] — a unit-step simulator over the paper's DAG model of
//!   computation (§IV): each task is a DAG of unit subtasks with a work
//!   and a span; `P` processors execute unit subtasks greedily. Used to
//!   check the Lemma 3/5/7 makespan bounds and the Figure 2 / Theorem 9
//!   tight example.
//! * [`meta`] — the meta-scheduler `A'` of Theorem 10: run a heuristic on
//!   `P/2` processors alongside LevelBased on the other `P/2` with a
//!   memory budget, finishing when either finishes.
//! * [`timeline`] — record per-task schedules and export Gantt SVG/CSV
//!   (the `schedviz` binary renders LevelBased's barrier idling against
//!   exact-readiness overlap on the Figure 2 instance).

pub mod event;
pub mod meta;
pub mod step;
pub mod timeline;

pub use event::{simulate_event, EventSimConfig, SimResult};
pub use meta::{simulate_meta, MetaConfig, MetaResult};
pub use step::{simulate_step, StepResult, StepSimConfig};
pub use timeline::{record_timeline, Span, Timeline};
