//! Interval-list transitive-closure encoding.
//!
//! This is the data structure at the heart of the production LogicBlox
//! scheduler (paper §II-C), following Agrawal–Borgida–Jagadish \[4\] and
//! Nuutila \[31\]: a DFS spanning forest assigns each node a postorder
//! number; each node's descendants within the tree occupy a contiguous
//! postorder interval; non-tree edges are handled by unioning children's
//! interval lists in reverse topological order. The ancestor query
//! "is `d` a descendant of `a`?" becomes "is `post(d)` covered by one of
//! `a`'s intervals?" — a binary search.
//!
//! The encoding is *usually but not always* compact: on adversarial DAGs
//! the total number of intervals is Θ(V²) (see
//! `interval_blowup` in `incr-traces::adversarial`, and the `O(V²)` space
//! worst case cited by the paper).

use crate::graph::{Dag, NodeId};

/// Inclusive postorder interval `[lo, hi]`.
pub type Interval = (u32, u32);

/// Per-node interval lists over a DFS postorder numbering; answers
/// descendant queries (equivalently: ancestor queries) after an
/// `O(V + E + total_intervals · log)` construction.
#[derive(Clone, Debug)]
pub struct IntervalList {
    /// Postorder number of each node, `1..=V`.
    post: Vec<u32>,
    /// Sorted, disjoint, non-adjacent intervals per node; each covers the
    /// postorder numbers of the node's descendants *including itself*.
    intervals: Vec<Vec<Interval>>,
}

impl IntervalList {
    /// Build the structure for `dag`. This is the LogicBlox scheduler's
    /// preprocessing phase (paper §VI-B).
    pub fn build(dag: &Dag) -> Self {
        let n = dag.node_count();
        let mut post = vec![0u32; n];
        let mut tree_parent: Vec<Option<NodeId>> = vec![None; n];
        let mut visited = vec![false; n];
        let mut counter = 0u32;

        // Iterative DFS from each source, assigning postorder numbers and
        // recording the spanning-forest parent (the node that first
        // discovered each child).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for s in dag.sources() {
            if visited[s.index()] {
                continue;
            }
            visited[s.index()] = true;
            stack.push((s, 0));
            while let Some(&mut (u, ref mut ci)) = stack.last_mut() {
                let children = dag.children(u);
                if *ci < children.len() {
                    let c = children[*ci];
                    *ci += 1;
                    if !visited[c.index()] {
                        visited[c.index()] = true;
                        tree_parent[c.index()] = Some(u);
                        stack.push((c, 0));
                    }
                } else {
                    counter += 1;
                    post[u.index()] = counter;
                    stack.pop();
                }
            }
        }
        debug_assert_eq!(counter as usize, n, "DFS must visit every node");

        // Subtree minima along the spanning forest: low(v) = min postorder
        // in v's tree subtree, so [low(v), post(v)] covers exactly the tree
        // descendants of v.
        let mut low: Vec<u32> = post.clone();
        // Nodes in increasing postorder finish children-before-parents, so a
        // single pass propagates subtree minima to tree parents.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by_key(|&i| post[i]);
        for &i in &order {
            if let Some(p) = tree_parent[i] {
                if low[i] < low[p.index()] {
                    low[p.index()] = low[i];
                }
            }
        }

        // Seed each node with its tree interval, then union children's
        // lists in reverse topological order so every node covers all of
        // its DAG descendants, not just tree descendants.
        let mut intervals: Vec<Vec<Interval>> = (0..n).map(|i| vec![(low[i], post[i])]).collect();
        let topo: Vec<NodeId> = dag.topo_order().to_vec();
        let mut scratch: Vec<Interval> = Vec::new();
        for &u in topo.iter().rev() {
            let children = dag.children(u);
            if children.is_empty() {
                continue;
            }
            scratch.clear();
            scratch.extend_from_slice(&intervals[u.index()]);
            for &c in children {
                scratch.extend_from_slice(&intervals[c.index()]);
            }
            scratch.sort_unstable();
            let merged = coalesce(&scratch);
            intervals[u.index()] = merged;
        }

        IntervalList { post, intervals }
    }

    /// Postorder number of `v` (stable across queries).
    #[inline]
    pub fn postorder(&self, v: NodeId) -> u32 {
        self.post[v.index()]
    }

    /// Is `d` a descendant of `a` (or equal to it)? Binary search over
    /// `a`'s interval list.
    pub fn is_descendant(&self, a: NodeId, d: NodeId) -> bool {
        self.is_descendant_counted(a, d).0
    }

    /// Is `a` a *proper* ancestor of `d`?
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a != d && self.is_descendant(a, d)
    }

    /// Like [`is_descendant`](Self::is_descendant) but also returns the
    /// number of interval comparisons performed, so the LogicBlox
    /// scheduler can charge its `CostMeter` faithfully.
    pub fn is_descendant_counted(&self, a: NodeId, d: NodeId) -> (bool, u64) {
        let key = self.post[d.index()];
        let list = &self.intervals[a.index()];
        // Binary search for the interval whose lo <= key, then check hi.
        let mut lo = 0usize;
        let mut hi = list.len();
        let mut probes = 0u64;
        while lo < hi {
            probes += 1;
            let mid = (lo + hi) / 2;
            if list[mid].0 <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            return (false, probes.max(1));
        }
        let (_, ihi) = list[lo - 1];
        (key <= ihi, probes.max(1))
    }

    /// Interval list of `a` (sorted, disjoint).
    pub fn intervals_of(&self, a: NodeId) -> &[Interval] {
        &self.intervals[a.index()]
    }

    /// Total number of stored intervals — the structure's space consumption
    /// (the paper's `O(V²)` worst case is in this count).
    pub fn total_intervals(&self) -> usize {
        self.intervals.iter().map(Vec::len).sum()
    }

    /// Approximate resident size in bytes (intervals + postorder table).
    pub fn memory_bytes(&self) -> usize {
        self.total_intervals() * std::mem::size_of::<Interval>()
            + self.post.len() * std::mem::size_of::<u32>()
            + self.intervals.len() * std::mem::size_of::<Vec<Interval>>()
    }
}

/// Coalesce a sorted interval sequence into disjoint, non-adjacent,
/// sorted intervals.
fn coalesce(sorted: &[Interval]) -> Vec<Interval> {
    let mut out: Vec<Interval> = Vec::with_capacity(sorted.len().min(8));
    for &(lo, hi) in sorted {
        match out.last_mut() {
            Some(last) if lo <= last.1.saturating_add(1) => {
                if hi > last.1 {
                    last.1 = hi;
                }
            }
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach;
    use crate::DagBuilder;

    fn build(n: usize, edges: &[(u32, u32)]) -> (Dag, IntervalList) {
        let mut b = DagBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let d = b.build().unwrap();
        let il = IntervalList::build(&d);
        (d, il)
    }

    fn assert_matches_bfs(d: &Dag, il: &IntervalList) {
        for a in d.nodes() {
            let desc = reach::descendants(d, a);
            for v in d.nodes() {
                let expect = v == a || desc.contains(v);
                assert_eq!(
                    il.is_descendant(a, v),
                    expect,
                    "a={a} v={v} intervals={:?} post={:?}",
                    il.intervals_of(a),
                    (0..d.node_count()).map(|i| il.post[i]).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn chain() {
        let (d, il) = build(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_matches_bfs(&d, &il);
        // A chain needs exactly one interval per node.
        for v in d.nodes() {
            assert_eq!(il.intervals_of(v).len(), 1);
        }
    }

    #[test]
    fn diamond_with_cross_edges() {
        let (d, il) = build(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 5), (5, 4)]);
        assert_matches_bfs(&d, &il);
    }

    #[test]
    fn multiple_sources() {
        let (d, il) = build(5, &[(0, 2), (1, 2), (2, 3), (1, 4)]);
        assert_matches_bfs(&d, &il);
    }

    #[test]
    fn isolated_nodes() {
        let (d, il) = build(3, &[]);
        assert_matches_bfs(&d, &il);
        assert_eq!(il.total_intervals(), 3);
    }

    #[test]
    fn proper_ancestor_excludes_self() {
        let (_, il) = build(2, &[(0, 1)]);
        assert!(il.is_ancestor(NodeId(0), NodeId(1)));
        assert!(!il.is_ancestor(NodeId(0), NodeId(0)));
        assert!(!il.is_ancestor(NodeId(1), NodeId(0)));
    }

    #[test]
    fn counted_query_reports_probes() {
        let (_, il) = build(4, &[(0, 1), (1, 2), (2, 3)]);
        let (hit, probes) = il.is_descendant_counted(NodeId(0), NodeId(3));
        assert!(hit);
        assert!(probes >= 1);
    }

    #[test]
    fn blowup_instance_grows_interval_count() {
        // Bipartite fragmentation: source 0 points at every sink, pinning
        // sink postorders consecutively; every other source points only at
        // even-indexed sinks, whose postorders are then non-adjacent — so
        // each such source needs Θ(k) singleton intervals, Θ(k²) in total.
        fn crown(k: u32) -> usize {
            let mut b = DagBuilder::new((2 * k) as usize);
            for j in 0..k {
                b.add_edge(NodeId(0), NodeId(k + j));
            }
            for i in 1..k {
                for j in (0..k).step_by(2) {
                    b.add_edge(NodeId(i), NodeId(k + j));
                }
            }
            let d = b.build().unwrap();
            IntervalList::build(&d).total_intervals()
        }
        let small = crown(8);
        let large = crown(16);
        // Quadratic-ish growth: doubling k should far more than double it.
        assert!(
            large as f64 >= 3.0 * small as f64,
            "small={small} large={large}"
        );
    }

    #[test]
    fn coalesce_merges_overlaps_and_adjacent() {
        assert_eq!(coalesce(&[(1, 2), (3, 4), (6, 7)]), vec![(1, 4), (6, 7)]);
        assert_eq!(coalesce(&[(1, 5), (2, 3)]), vec![(1, 5)]);
        assert_eq!(coalesce(&[]), Vec::<Interval>::new());
    }
}
