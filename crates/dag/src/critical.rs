//! Weighted critical path: the `C` in the arbitrary-job makespan bound
//! `O(w/P + C)` (paper §II-B).

use crate::graph::{Dag, NodeId};

/// Longest weighted path through the DAG, where `weight[v]` is the work
/// (span) of node `v`; edges carry no weight. `O(V + E)`.
///
/// Returns 0.0 for an empty graph. Weights must be non-negative.
pub fn critical_path(dag: &Dag, weight: &[f64]) -> f64 {
    assert_eq!(weight.len(), dag.node_count(), "one weight per node");
    let mut best = vec![0.0f64; dag.node_count()];
    let mut max = 0.0f64;
    for &v in dag.topo_order() {
        let mut incoming: f64 = 0.0;
        for &p in dag.parents(v) {
            if best[p.index()] > incoming {
                incoming = best[p.index()];
            }
        }
        let w = weight[v.index()];
        debug_assert!(w >= 0.0, "negative weight on {v}");
        best[v.index()] = incoming + w;
        if best[v.index()] > max {
            max = best[v.index()];
        }
    }
    max
}

/// Critical path restricted to a subset of nodes (e.g. the active set `W`):
/// nodes outside the subset contribute zero weight but still relay
/// precedence. This bounds the realized span `S` of the active graph from
/// above (Definition 4: the active graph's precedence is a subset of `G`'s).
pub fn critical_path_over(dag: &Dag, weight: &[f64], member: impl Fn(NodeId) -> bool) -> f64 {
    assert_eq!(weight.len(), dag.node_count(), "one weight per node");
    let mut best = vec![0.0f64; dag.node_count()];
    let mut max = 0.0f64;
    for &v in dag.topo_order() {
        let mut incoming: f64 = 0.0;
        for &p in dag.parents(v) {
            if best[p.index()] > incoming {
                incoming = best[p.index()];
            }
        }
        let w = if member(v) { weight[v.index()] } else { 0.0 };
        best[v.index()] = incoming + w;
        if best[v.index()] > max {
            max = best[v.index()];
        }
    }
    max
}

/// Recover a concrete critical *chain* from observed task timings: walk
/// back from the executed node that finished last, at each step moving to
/// the executed parent with the latest finish time (the dependency that
/// gated this node's start under a work-conserving executor). Returns the
/// chain in execution order, empty if nothing was executed.
///
/// `end_us[v]` is the observed finish time of node `v` (ignored unless
/// `executed(v)`). Unlike [`critical_path`], which bounds the span from
/// static weights, this attributes a *measured* run: the chain's nodes
/// plus the gaps between them partition the tail latency of the update.
/// `O(V + E)` worst case, typically `O(chain · degree)`.
pub fn critical_chain(dag: &Dag, end_us: &[f64], executed: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
    assert_eq!(end_us.len(), dag.node_count(), "one finish time per node");
    let last = dag
        .nodes()
        .filter(|&v| executed(v))
        .max_by(|&a, &b| end_us[a.index()].total_cmp(&end_us[b.index()]));
    let Some(mut v) = last else {
        return Vec::new();
    };
    let mut chain = vec![v];
    loop {
        let gate = dag
            .parents(v)
            .iter()
            .copied()
            .filter(|&p| executed(p))
            .max_by(|&a, &b| end_us[a.index()].total_cmp(&end_us[b.index()]));
        match gate {
            Some(p) => {
                chain.push(p);
                v = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

/// Total work of a subset (sum of weights), the `w` in every makespan bound.
pub fn total_work(dag: &Dag, weight: &[f64], member: impl Fn(NodeId) -> bool) -> f64 {
    dag.nodes()
        .filter(|&v| member(v))
        .map(|v| weight[v.index()])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> Dag {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build().unwrap()
    }

    #[test]
    fn picks_heavier_branch() {
        let d = diamond();
        // Branch through node 2 is heavier.
        let w = [1.0, 1.0, 5.0, 1.0];
        assert_eq!(critical_path(&d, &w), 7.0);
    }

    #[test]
    fn chain_sums_weights() {
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        let d = b.build().unwrap();
        assert_eq!(critical_path(&d, &[2.0, 3.0, 4.0]), 9.0);
    }

    #[test]
    fn empty_graph_is_zero() {
        let d = DagBuilder::new(0).build().unwrap();
        assert_eq!(critical_path(&d, &[]), 0.0);
    }

    #[test]
    fn subset_restriction() {
        let d = diamond();
        let w = [1.0, 1.0, 5.0, 1.0];
        // Only nodes 0 and 3 are members: path weight 1 + 1, relayed
        // through zero-weight middle nodes.
        let c = critical_path_over(&d, &w, |v| v == NodeId(0) || v == NodeId(3));
        assert_eq!(c, 2.0);
    }

    #[test]
    fn chain_follows_latest_finishing_parent() {
        let d = diamond();
        // 0 finishes at 1, branch 1 at 2, branch 2 at 6 (the slow one),
        // join 3 at 7: the chain that gated the makespan is 0 -> 2 -> 3.
        let end = [1.0, 2.0, 6.0, 7.0];
        let chain = critical_chain(&d, &end, |_| true);
        assert_eq!(chain, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn chain_skips_unexecuted_nodes() {
        let d = diamond();
        let end = [1.0, 2.0, 6.0, 7.0];
        // Node 2 was not part of the fired set: the walk must route
        // through executed parents only.
        let chain = critical_chain(&d, &end, |v| v != NodeId(2));
        assert_eq!(chain, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!(critical_chain(&d, &end, |_| false).is_empty());
    }

    #[test]
    fn chain_hops_are_dag_edges() {
        let d = diamond();
        let end = [1.0, 5.0, 3.0, 9.0];
        let chain = critical_chain(&d, &end, |_| true);
        for w in chain.windows(2) {
            assert!(d.parents(w[1]).contains(&w[0]));
        }
    }

    #[test]
    fn total_work_over_subset() {
        let d = diamond();
        let w = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(total_work(&d, &w, |_| true), 10.0);
        assert_eq!(total_work(&d, &w, |v| v.index() % 2 == 0), 4.0);
    }
}
