//! Seeded random DAG generators shared by property tests and benches.
//!
//! Only the *structural* generators live here; the workload-level trace
//! generators (durations, activation behaviour, Table-I presets) are in the
//! `incr-traces` crate, which builds on these.

use crate::builder::DagBuilder;
use crate::graph::{Dag, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for a layered random DAG: `layers` levels with `width` nodes
/// each; each node at layer `l > 0` receives `1..=max_in` parents drawn from
/// layers `[l - back_span, l)`, guaranteeing the level structure.
#[derive(Clone, Copy, Debug)]
pub struct LayeredParams {
    pub layers: u32,
    pub width: u32,
    pub max_in: u32,
    pub back_span: u32,
    pub seed: u64,
}

impl Default for LayeredParams {
    fn default() -> Self {
        LayeredParams {
            layers: 10,
            width: 8,
            max_in: 3,
            back_span: 2,
            seed: 0,
        }
    }
}

/// Generate a layered random DAG. Deterministic for a fixed seed. Every
/// node at layer `l` has at least one parent at layer `l - 1`, so the DAG's
/// computed levels equal the construction layers.
pub fn layered(p: LayeredParams) -> Dag {
    assert!(p.layers >= 1 && p.width >= 1, "degenerate layered params");
    let mut rng = StdRng::seed_from_u64(p.seed);
    let n = (p.layers * p.width) as usize;
    let mut b = DagBuilder::with_edge_capacity(n, n * p.max_in as usize);
    let node = |layer: u32, i: u32| NodeId(layer * p.width + i);
    for l in 1..p.layers {
        for i in 0..p.width {
            let v = node(l, i);
            // Guaranteed parent at the previous layer pins the level.
            let anchor = node(l - 1, rng.gen_range(0..p.width));
            b.add_edge(anchor, v);
            let extra = if p.max_in == 0 {
                0
            } else {
                rng.gen_range(0..p.max_in)
            };
            for _ in 0..extra {
                let span = p.back_span.max(1).min(l);
                let pl = l - rng.gen_range(1..=span);
                b.add_edge(node(pl, rng.gen_range(0..p.width)), v);
            }
        }
    }
    b.build().expect("layered construction is acyclic")
}

/// Random DAG over `n` nodes where each ordered pair `(i, j)` with `i < j`
/// becomes an edge with probability `p` — the classic random-order DAG used
/// by property tests for reachability / interval-list equivalence.
pub fn gnp_ordered(n: usize, p: f64, seed: u64) -> Dag {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DagBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(NodeId(i as u32), NodeId(j as u32));
            }
        }
    }
    b.build().expect("ordered construction is acyclic")
}

/// A simple path `0 -> 1 -> ... -> n-1`.
pub fn chain(n: usize) -> Dag {
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(i as u32 - 1), NodeId(i as u32));
    }
    b.build().expect("chain is acyclic")
}

/// A star: one source fanning out to `n - 1` sinks (shallow-and-wide, the
/// regime of traces #6 and #11).
pub fn fan(n: usize) -> Dag {
    assert!(n >= 1);
    let mut b = DagBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId(0), NodeId(i as u32));
    }
    b.build().expect("fan is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_levels_match_layers() {
        let p = LayeredParams {
            layers: 7,
            width: 5,
            max_in: 2,
            back_span: 3,
            seed: 42,
        };
        let d = layered(p);
        assert_eq!(d.node_count(), 35);
        assert_eq!(d.num_levels(), 7);
        for v in d.nodes() {
            assert_eq!(d.level(v), v.0 / 5, "layer assignment pins level");
        }
    }

    #[test]
    fn layered_is_deterministic() {
        let p = LayeredParams::default();
        let a = layered(p);
        let b = layered(p);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn gnp_respects_order() {
        let d = gnp_ordered(30, 0.3, 7);
        for (u, v) in d.edges() {
            assert!(u < v);
        }
    }

    #[test]
    fn chain_shape() {
        let d = chain(5);
        assert_eq!(d.num_levels(), 5);
        assert_eq!(d.edge_count(), 4);
    }

    #[test]
    fn fan_shape() {
        let d = fan(9);
        assert_eq!(d.num_levels(), 2);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), 8);
    }
}
