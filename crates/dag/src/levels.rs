//! Level computations and per-level groupings.
//!
//! The *level* of a node is the maximum number of edges along any path from
//! any source node to it (paper §II-B). The [`crate::Dag`] caches
//! levels at build time via longest-path propagation in topological order;
//! this module provides the paper's alternative *peeling* formulation
//! (§VI-B: "All nodes with no incoming edges get assigned level ℓ; delete
//! in-degree-zero nodes, increment ℓ and recurse"), used both as a
//! cross-check and by tests, plus per-level groupings used by the
//! LevelBased scheduler's bucket layout and the trace statistics.

use crate::graph::{Dag, NodeId};

/// Compute levels by iterative peeling of indegree-zero nodes, exactly as
/// the paper describes the LevelBased precomputation (§VI-B). `O(V + E)`.
///
/// Equivalent to the longest-path definition: a node's level is the round
/// in which it becomes indegree-0 after all earlier rounds are removed.
pub fn peel_levels(dag: &Dag) -> Vec<u32> {
    let n = dag.node_count();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId(i as u32)) as u32)
        .collect();
    let mut levels = vec![0u32; n];
    let mut frontier: Vec<NodeId> = dag.sources().collect();
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        for &u in &frontier {
            levels[u.index()] = level;
            for &v in dag.children(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    next.push(v);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
        level += 1;
    }
    levels
}

/// Per-level node grouping in CSR form: one flat node array plus a
/// `num_levels + 1` offsets array, so bucket `l` is the slice
/// `nodes[offsets[l]..offsets[l + 1]]`. Two allocations total, regardless
/// of level count — the bucket layout the LevelBased scheduler walks
/// (paper §III) without the per-level `Vec` overhead.
#[derive(Clone, Debug, Default)]
pub struct LevelBuckets {
    offsets: Vec<u32>,
    nodes: Vec<NodeId>,
}

impl LevelBuckets {
    /// Number of levels (possibly-empty buckets included).
    pub fn num_levels(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total nodes across all buckets.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The nodes at level `l`, in ascending id order.
    pub fn level(&self, l: u32) -> &[NodeId] {
        let lo = self.offsets[l as usize] as usize;
        let hi = self.offsets[l as usize + 1] as usize;
        &self.nodes[lo..hi]
    }

    /// Iterate buckets from level 0 upward.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.num_levels()).map(move |l| self.level(l as u32))
    }

    /// Counting-sort construction from `(level, node)` pairs. The producer
    /// closure is invoked twice (count pass, then placement pass) and must
    /// yield the same pairs both times; `num_levels` bounds every level.
    fn from_pairs(num_levels: usize, mut pairs: impl FnMut(&mut dyn FnMut(u32, NodeId))) -> Self {
        let mut offsets = vec![0u32; num_levels + 1];
        pairs(&mut |l, _| offsets[l as usize + 1] += 1);
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..num_levels].to_vec();
        let mut nodes = vec![NodeId(0); *offsets.last().unwrap_or(&0) as usize];
        pairs(&mut |l, v| {
            let c = &mut cursor[l as usize];
            nodes[*c as usize] = v;
            *c += 1;
        });
        LevelBuckets { offsets, nodes }
    }
}

/// Group node ids by level: `buckets.level(l)` lists all nodes at level
/// `l`, backed by a flat CSR layout (offsets + one node array).
pub fn nodes_by_level(dag: &Dag) -> LevelBuckets {
    LevelBuckets::from_pairs(dag.num_levels() as usize, |emit| {
        for v in dag.nodes() {
            emit(dag.level(v), v);
        }
    })
}

/// Like [`nodes_by_level`], restricted to the first `limit` node ids —
/// used by excerpt renderers (DOT export) that cap emitted nodes.
pub fn nodes_by_level_capped(dag: &Dag, limit: usize) -> LevelBuckets {
    let limit = limit.min(dag.node_count());
    LevelBuckets::from_pairs(dag.num_levels() as usize, |emit| {
        for v in dag.nodes().take(limit) {
            emit(dag.level(v), v);
        }
    })
}

/// Maximum level width: `max_l |{v : level(v) = l}|`. Wide-and-shallow DAGs
/// (large width, few levels, e.g. traces #6 and #11) are where LevelBased
/// is essentially optimal and the LogicBlox scan is most wasteful
/// (Table III discussion).
pub fn max_level_width(dag: &Dag) -> usize {
    dag.level_histogram().into_iter().max().unwrap_or(0)
}

/// The lowest level among a set of nodes, or `None` if empty. The
/// LevelBased readiness rule (Lemma 1) keys off this value for the set of
/// active unexecuted tasks.
pub fn min_level(dag: &Dag, nodes: impl IntoIterator<Item = NodeId>) -> Option<u32> {
    nodes.into_iter().map(|v| dag.level(v)).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn chain_with_shortcut() -> Dag {
        // 0->1->2->3 plus shortcut 0->3
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build().unwrap()
    }

    #[test]
    fn peel_matches_cached_levels() {
        let d = chain_with_shortcut();
        assert_eq!(peel_levels(&d), d.levels());
    }

    #[test]
    fn buckets_partition_nodes() {
        let d = chain_with_shortcut();
        let buckets = nodes_by_level(&d);
        assert_eq!(buckets.node_count(), d.node_count());
        assert_eq!(buckets.num_levels() as u32, d.num_levels());
        let total: usize = buckets.iter().map(<[NodeId]>::len).sum();
        assert_eq!(total, d.node_count());
        for (l, bucket) in buckets.iter().enumerate() {
            for &v in bucket {
                assert_eq!(d.level(v) as usize, l);
            }
        }
    }

    #[test]
    fn buckets_are_sorted_within_level() {
        let d = chain_with_shortcut();
        let buckets = nodes_by_level(&d);
        for bucket in buckets.iter() {
            assert!(bucket.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn capped_buckets_cover_prefix_only() {
        let d = chain_with_shortcut();
        let capped = nodes_by_level_capped(&d, 2);
        assert_eq!(capped.node_count(), 2);
        for bucket in capped.iter() {
            for &v in bucket {
                assert!(v.index() < 2);
            }
        }
        // A cap beyond the node count is the full grouping.
        let full = nodes_by_level_capped(&d, 99);
        assert_eq!(full.node_count(), d.node_count());
    }

    #[test]
    fn empty_dag_buckets() {
        let d = DagBuilder::new(0).build().unwrap();
        let buckets = nodes_by_level(&d);
        assert_eq!(buckets.node_count(), 0);
        assert_eq!(buckets.iter().count(), buckets.num_levels());
    }

    #[test]
    fn width_of_diamond() {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let d = b.build().unwrap();
        assert_eq!(max_level_width(&d), 2);
    }

    #[test]
    fn min_level_of_set() {
        let d = chain_with_shortcut();
        assert_eq!(min_level(&d, [NodeId(3), NodeId(1)]), Some(1));
        assert_eq!(min_level(&d, []), None);
    }

    #[test]
    fn level_strictly_increases_along_edges() {
        let d = chain_with_shortcut();
        for (u, v) in d.edges() {
            assert!(d.level(u) < d.level(v));
        }
    }
}
