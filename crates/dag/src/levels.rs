//! Level computations and per-level groupings.
//!
//! The *level* of a node is the maximum number of edges along any path from
//! any source node to it (paper §II-B). The [`crate::Dag`] caches
//! levels at build time via longest-path propagation in topological order;
//! this module provides the paper's alternative *peeling* formulation
//! (§VI-B: "All nodes with no incoming edges get assigned level ℓ; delete
//! in-degree-zero nodes, increment ℓ and recurse"), used both as a
//! cross-check and by tests, plus per-level groupings used by the
//! LevelBased scheduler's bucket layout and the trace statistics.

use crate::graph::{Dag, NodeId};

/// Compute levels by iterative peeling of indegree-zero nodes, exactly as
/// the paper describes the LevelBased precomputation (§VI-B). `O(V + E)`.
///
/// Equivalent to the longest-path definition: a node's level is the round
/// in which it becomes indegree-0 after all earlier rounds are removed.
pub fn peel_levels(dag: &Dag) -> Vec<u32> {
    let n = dag.node_count();
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| dag.in_degree(NodeId(i as u32)) as u32)
        .collect();
    let mut levels = vec![0u32; n];
    let mut frontier: Vec<NodeId> = dag.sources().collect();
    let mut level = 0u32;
    let mut next = Vec::new();
    while !frontier.is_empty() {
        for &u in &frontier {
            levels[u.index()] = level;
            for &v in dag.children(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    next.push(v);
                }
            }
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
        level += 1;
    }
    levels
}

/// Group node ids by level: `result[l]` lists all nodes at level `l`.
/// This is the bucket layout the LevelBased scheduler walks (paper §III).
pub fn nodes_by_level(dag: &Dag) -> Vec<Vec<NodeId>> {
    let mut buckets = vec![Vec::new(); dag.num_levels() as usize];
    for v in dag.nodes() {
        buckets[dag.level(v) as usize].push(v);
    }
    buckets
}

/// Maximum level width: `max_l |{v : level(v) = l}|`. Wide-and-shallow DAGs
/// (large width, few levels, e.g. traces #6 and #11) are where LevelBased
/// is essentially optimal and the LogicBlox scan is most wasteful
/// (Table III discussion).
pub fn max_level_width(dag: &Dag) -> usize {
    dag.level_histogram().into_iter().max().unwrap_or(0)
}

/// The lowest level among a set of nodes, or `None` if empty. The
/// LevelBased readiness rule (Lemma 1) keys off this value for the set of
/// active unexecuted tasks.
pub fn min_level(dag: &Dag, nodes: impl IntoIterator<Item = NodeId>) -> Option<u32> {
    nodes.into_iter().map(|v| dag.level(v)).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn chain_with_shortcut() -> Dag {
        // 0->1->2->3 plus shortcut 0->3
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (0, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build().unwrap()
    }

    #[test]
    fn peel_matches_cached_levels() {
        let d = chain_with_shortcut();
        assert_eq!(peel_levels(&d), d.levels());
    }

    #[test]
    fn buckets_partition_nodes() {
        let d = chain_with_shortcut();
        let buckets = nodes_by_level(&d);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, d.node_count());
        for (l, bucket) in buckets.iter().enumerate() {
            for &v in bucket {
                assert_eq!(d.level(v) as usize, l);
            }
        }
    }

    #[test]
    fn width_of_diamond() {
        let mut b = DagBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let d = b.build().unwrap();
        assert_eq!(max_level_width(&d), 2);
    }

    #[test]
    fn min_level_of_set() {
        let d = chain_with_shortcut();
        assert_eq!(min_level(&d, [NodeId(3), NodeId(1)]), Some(1));
        assert_eq!(min_level(&d, []), None);
    }

    #[test]
    fn level_strictly_increases_along_edges() {
        let d = chain_with_shortcut();
        for (u, v) in d.edges() {
            assert!(d.level(u) < d.level(v));
        }
    }
}
