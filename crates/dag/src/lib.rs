//! # incr-dag — DAG substrate for incremental Datalog scheduling
//!
//! This crate provides the graph machinery that every other crate in the
//! workspace builds on. It corresponds to the role the Boost Graph Library
//! played in the paper's C++ simulator (§VI-A), re-implemented from scratch:
//!
//! * [`Dag`] — a compact CSR (compressed sparse row) representation of a
//!   directed acyclic graph with both out- and in-adjacency, built through
//!   [`DagBuilder`] which rejects cycles.
//! * [`levels`] — the *level* of a node: the maximum number of edges on any
//!   path from any source (indegree-0) node, the key precomputation of the
//!   LevelBased scheduler (paper §III).
//! * [`reach`] — BFS/DFS reachability: descendants, ancestors, and
//!   descendant censuses used by the trace statistics (Figure 1).
//! * [`interval`] — the interval-list transitive-closure encoding
//!   (Agrawal–Borgida–Jagadish, Nuutila) that the production LogicBlox
//!   scheduler uses for ancestor queries (paper §II-C).
//! * [`critical`] — weighted critical-path length, the `C` in the
//!   arbitrary-job makespan bound `O(w/P + C)` (paper §II-B).
//! * [`dot`] — Graphviz export for inspecting instances (Figure 1 excerpt).
//! * [`random`] — seeded random-DAG generators shared by property tests.
//!
//! The graph is purely structural: node payloads (task durations, predicate
//! names, activation behaviour) live in the crates that consume it.

pub mod builder;
pub mod critical;
pub mod dot;
pub mod graph;
pub mod interval;
pub mod levels;
pub mod random;
pub mod reach;

pub use builder::{DagBuilder, DagError};
pub use graph::{Dag, NodeId};
pub use interval::IntervalList;
pub use levels::LevelBuckets;

#[cfg(test)]
mod proptests;
