//! Reachability: descendants, ancestors, and descendant censuses.
//!
//! These are the ground-truth queries the interval-list structure
//! ([`crate::interval`]) approximates compactly, and the raw machinery of
//! the brute-force signal-propagation baseline (paper §II-C). The Figure-1
//! census ("532 descendants activated out of 1680 total") is
//! [`descendants_of_set`] over the initially-dirty sources.

use crate::graph::{Dag, NodeId};

/// Fixed-size bit set over node ids; the visited structure for every BFS in
/// this module (dense bitmap beats a hash set at the ~10⁵–10⁶ node scale of
/// the production traces).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    bits: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// Empty set over a universe of `n` nodes.
    pub fn new(n: usize) -> Self {
        NodeSet {
            bits: vec![0u64; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Insert; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        let mask = 1u64 << b;
        if self.bits[w] & mask != 0 {
            self.bits[w] &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        self.bits[w] & (1u64 << b) != 0
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let b = word.trailing_zeros();
                    word &= word - 1;
                    Some(NodeId((w * 64) as u32 + b))
                }
            })
        })
    }

    /// Remove all members, keeping capacity.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.len = 0;
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collect; the universe is sized to the max id seen (+1).
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let items: Vec<NodeId> = iter.into_iter().collect();
        let n = items.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut s = NodeSet::new(n);
        for v in items {
            s.insert(v);
        }
        s
    }
}

/// All *proper* descendants of `v` (excluding `v` itself) via forward BFS.
pub fn descendants(dag: &Dag, v: NodeId) -> NodeSet {
    descendants_of_set(dag, std::iter::once(v))
}

/// All proper descendants of any node in `roots` (roots themselves excluded
/// unless reachable from another root).
pub fn descendants_of_set(dag: &Dag, roots: impl IntoIterator<Item = NodeId>) -> NodeSet {
    let mut seen = NodeSet::new(dag.node_count());
    let mut out = NodeSet::new(dag.node_count());
    let mut queue: Vec<NodeId> = Vec::new();
    for r in roots {
        if seen.insert(r) {
            queue.push(r);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &c in dag.children(u) {
            out.insert(c);
            if seen.insert(c) {
                queue.push(c);
            }
        }
    }
    out
}

/// All proper ancestors of `v` via backward BFS.
pub fn ancestors(dag: &Dag, v: NodeId) -> NodeSet {
    let mut seen = NodeSet::new(dag.node_count());
    let mut queue = vec![v];
    seen.insert(v);
    let mut out = NodeSet::new(dag.node_count());
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &p in dag.parents(u) {
            out.insert(p);
            if seen.insert(p) {
                queue.push(p);
            }
        }
    }
    out
}

/// Is `a` a proper ancestor of `d`? Ground truth by backward BFS from `d`
/// with early exit; `O(V + E)` worst case. The interval list answers the
/// same question in `O(log I)` after preprocessing.
pub fn is_ancestor(dag: &Dag, a: NodeId, d: NodeId) -> bool {
    if a == d {
        return false;
    }
    // Levels prune: an ancestor's level is strictly lower.
    if dag.level(a) >= dag.level(d) {
        return false;
    }
    let mut seen = NodeSet::new(dag.node_count());
    let mut stack = vec![d];
    seen.insert(d);
    while let Some(u) = stack.pop() {
        for &p in dag.parents(u) {
            if p == a {
                return true;
            }
            // Prune: nothing at a level <= level(a) other than `a` itself
            // can lead back to `a` going upward... ancestors of p have
            // strictly lower level than p, so only continue while p's
            // level exceeds a's.
            if dag.level(p) > dag.level(a) && seen.insert(p) {
                stack.push(p);
            }
        }
    }
    false
}

/// Census used by Figure 1: given the initially-dirty roots, the number of
/// total descendants versus how many ended up in the supplied activated set.
pub struct DescendantCensus {
    /// `|descendants(roots)|` — everything that *could* be affected.
    pub total_descendants: usize,
    /// How many of those are in the activated set — everything that *was*.
    pub activated_descendants: usize,
}

/// Compute the Figure-1 style census.
pub fn descendant_census(
    dag: &Dag,
    roots: impl IntoIterator<Item = NodeId>,
    activated: &NodeSet,
) -> DescendantCensus {
    let desc = descendants_of_set(dag, roots);
    let activated_descendants = desc.iter().filter(|v| activated.contains(*v)).count();
    DescendantCensus {
        total_descendants: desc.len(),
        activated_descendants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn sample() -> Dag {
        // 0 -> 1 -> 3
        //  \-> 2 -> 3 -> 4   5 isolated
        let mut b = DagBuilder::new(6);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        b.build().unwrap()
    }

    #[test]
    fn nodeset_basics() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(129)));
        assert!(!s.contains(NodeId(64)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![NodeId(0), NodeId(129)]);
        assert!(s.remove(NodeId(0)));
        assert!(!s.remove(NodeId(0)));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn descendants_of_root() {
        let d = sample();
        let ds = descendants(&d, NodeId(0));
        assert_eq!(ds.len(), 4);
        assert!(!ds.contains(NodeId(0)));
        assert!(!ds.contains(NodeId(5)));
    }

    #[test]
    fn descendants_of_midnode() {
        let d = sample();
        let ds = descendants(&d, NodeId(1));
        assert_eq!(ds.iter().collect::<Vec<_>>(), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn ancestors_of_sink() {
        let d = sample();
        let anc = ancestors(&d, NodeId(4));
        assert_eq!(anc.len(), 4);
        assert!(anc.contains(NodeId(0)));
        assert!(!anc.contains(NodeId(5)));
    }

    #[test]
    fn is_ancestor_matches_bfs() {
        let d = sample();
        for a in d.nodes() {
            let anc_truth: Vec<bool> = d.nodes().map(|v| ancestors(&d, v).contains(a)).collect();
            for v in d.nodes() {
                assert_eq!(
                    is_ancestor(&d, a, v),
                    anc_truth[v.index()],
                    "a={a} v={v}"
                );
            }
        }
    }

    #[test]
    fn census_counts() {
        let d = sample();
        let activated: NodeSet = [NodeId(1), NodeId(3)].into_iter().collect();
        let c = descendant_census(&d, [NodeId(0)], &activated);
        assert_eq!(c.total_descendants, 4);
        assert_eq!(c.activated_descendants, 2);
    }

    #[test]
    fn self_is_not_own_ancestor() {
        let d = sample();
        assert!(!is_ancestor(&d, NodeId(3), NodeId(3)));
    }
}
