//! Crate-wide property tests tying the independent implementations
//! together: interval lists vs BFS reachability, cached levels vs peeling,
//! and structural invariants over random DAGs.

use crate::{interval::IntervalList, levels, random, reach, Dag, NodeId};
use proptest::prelude::*;

fn arb_dag() -> impl Strategy<Value = Dag> {
    // Mix the two generators to cover both shallow-random and layered shapes.
    prop_oneof![
        (2usize..40, 0.0f64..0.5, any::<u64>())
            .prop_map(|(n, p, seed)| random::gnp_ordered(n, p, seed)),
        (1u32..8, 1u32..8, 0u32..4, any::<u64>()).prop_map(|(layers, width, max_in, seed)| {
            random::layered(random::LayeredParams {
                layers,
                width,
                max_in,
                back_span: 3,
                seed,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_list_equals_bfs_reachability(dag in arb_dag()) {
        let il = IntervalList::build(&dag);
        for a in dag.nodes() {
            let desc = reach::descendants(&dag, a);
            for v in dag.nodes() {
                let expect = v == a || desc.contains(v);
                prop_assert_eq!(il.is_descendant(a, v), expect,
                    "a={} v={}", a, v);
            }
        }
    }

    #[test]
    fn peel_levels_equal_cached_levels(dag in arb_dag()) {
        prop_assert_eq!(levels::peel_levels(&dag), dag.levels().to_vec());
    }

    #[test]
    fn levels_strictly_increase_along_edges(dag in arb_dag()) {
        for (u, v) in dag.edges() {
            prop_assert!(dag.level(u) < dag.level(v));
        }
    }

    #[test]
    fn topo_order_is_a_permutation_respecting_edges(dag in arb_dag()) {
        let topo = dag.topo_order();
        prop_assert_eq!(topo.len(), dag.node_count());
        let mut pos = vec![usize::MAX; dag.node_count()];
        for (i, &v) in topo.iter().enumerate() {
            prop_assert_eq!(pos[v.index()], usize::MAX, "duplicate in topo order");
            pos[v.index()] = i;
        }
        for (u, v) in dag.edges() {
            prop_assert!(pos[u.index()] < pos[v.index()]);
        }
    }

    #[test]
    fn ancestor_query_symmetry(dag in arb_dag()) {
        // reach::is_ancestor(a, d) must equal membership of a in ancestors(d)
        // and membership of d in descendants(a).
        for a in dag.nodes() {
            let desc = reach::descendants(&dag, a);
            for d in dag.nodes() {
                let fwd = a != d && desc.contains(d);
                prop_assert_eq!(reach::is_ancestor(&dag, a, d), fwd);
                prop_assert_eq!(reach::ancestors(&dag, d).contains(a), fwd);
            }
        }
    }

    #[test]
    fn interval_lists_are_sorted_disjoint(dag in arb_dag()) {
        let il = IntervalList::build(&dag);
        for v in dag.nodes() {
            let ivs = il.intervals_of(v);
            for w in ivs.windows(2) {
                // Strictly separated (non-adjacent after coalescing).
                prop_assert!(w[0].1 + 1 < w[1].0, "{:?}", ivs);
            }
            for &(lo, hi) in ivs {
                prop_assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn descendant_census_is_consistent(dag in arb_dag()) {
        let roots: Vec<NodeId> = dag.sources().collect();
        let all: reach::NodeSet = dag.nodes().collect();
        let c = reach::descendant_census(&dag, roots.iter().copied(), &all);
        // With everything "activated", the two counts coincide.
        prop_assert_eq!(c.total_descendants, c.activated_descendants);
    }
}
