//! Compact CSR representation of a directed acyclic graph.

use std::fmt;

/// Identifier of a node in a [`Dag`].
///
/// A plain `u32` index newtype: the paper's production DAGs have up to
/// ~465k nodes (Table I, trace #11), far below `u32::MAX`, and halving the
/// index width keeps the CSR arrays and per-node side tables cache-friendly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it does not fit in `u32`).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A directed acyclic graph in CSR form with both adjacency directions.
///
/// Construction goes through [`crate::DagBuilder`], which sorts the edges,
/// deduplicates them, verifies acyclicity, and precomputes the topological
/// order and the per-node *levels* (longest path from any source), since the
/// LevelBased scheduler needs levels for every instance anyway and computing
/// them costs a single `O(V + E)` pass (paper Theorem 2, precomputation).
#[derive(Clone)]
pub struct Dag {
    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
    pub(crate) topo: Vec<NodeId>,
    pub(crate) levels: Vec<u32>,
    pub(crate) num_levels: u32,
}

impl Dag {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterate over all node ids in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Out-neighbors (children) of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbors (parents) of `v`.
    #[inline]
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        &self.in_sources[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.children(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.parents(v).len()
    }

    /// Source nodes: indegree 0. These represent the base data of the
    /// database (paper §II-A).
    pub fn sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.in_degree(v) == 0)
    }

    /// Sink nodes: outdegree 0.
    pub fn sinks(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(move |&v| self.out_degree(v) == 0)
    }

    /// A topological order of the nodes (parents before children).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The *level* of `v`: the maximum number of edges along any path from
    /// any source node to `v`; sources have level 0 (paper §II-B).
    #[inline]
    pub fn level(&self, v: NodeId) -> u32 {
        self.levels[v.index()]
    }

    /// Slice of all levels, indexed by node.
    #[inline]
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Number of distinct levels `L` (max level + 1); 0 for the empty graph.
    #[inline]
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }

    /// True if the graph contains edge `(u, v)` (binary search over the
    /// sorted child list).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.children(u).binary_search(&v).is_ok()
    }

    /// Iterate over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.children(u).iter().map(move |&v| (u, v)))
    }

    /// Count of nodes per level, indexed by level: the *width profile* used
    /// by the trace statistics and by the hybrid-scheduler analysis of
    /// shallow DAGs (Table III discussion).
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_levels as usize];
        for &l in &self.levels {
            hist[l as usize] += 1;
        }
        hist
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dag")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .field("levels", &self.num_levels)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = DagBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(3));
        b.add_edge(NodeId(2), NodeId(3));
        b.build().unwrap()
    }

    #[test]
    fn counts() {
        let d = diamond();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.num_levels(), 3);
    }

    #[test]
    fn adjacency() {
        let d = diamond();
        assert_eq!(d.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.parents(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.out_degree(NodeId(3)), 0);
        assert_eq!(d.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn sources_and_sinks() {
        let d = diamond();
        assert_eq!(d.sources().collect::<Vec<_>>(), vec![NodeId(0)]);
        assert_eq!(d.sinks().collect::<Vec<_>>(), vec![NodeId(3)]);
    }

    #[test]
    fn levels_of_diamond() {
        let d = diamond();
        assert_eq!(d.level(NodeId(0)), 0);
        assert_eq!(d.level(NodeId(1)), 1);
        assert_eq!(d.level(NodeId(2)), 1);
        assert_eq!(d.level(NodeId(3)), 2);
        assert_eq!(d.level_histogram(), vec![1, 2, 1]);
    }

    #[test]
    fn has_edge_lookup() {
        let d = diamond();
        assert!(d.has_edge(NodeId(0), NodeId(1)));
        assert!(!d.has_edge(NodeId(1), NodeId(0)));
        assert!(!d.has_edge(NodeId(0), NodeId(3)));
    }

    #[test]
    fn edge_iter_matches_count() {
        let d = diamond();
        assert_eq!(d.edges().count(), d.edge_count());
    }

    #[test]
    fn isolated_nodes_are_both_source_and_sink() {
        let b = DagBuilder::new(3);
        let d = b.build().unwrap();
        assert_eq!(d.sources().count(), 3);
        assert_eq!(d.sinks().count(), 3);
        assert_eq!(d.num_levels(), 1);
    }

    #[test]
    fn empty_graph() {
        let d = DagBuilder::new(0).build().unwrap();
        assert_eq!(d.node_count(), 0);
        assert_eq!(d.num_levels(), 0);
        assert_eq!(d.topo_order().len(), 0);
    }

    #[test]
    fn node_id_roundtrip() {
        let v = NodeId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v}"), "42");
        assert_eq!(format!("{v:?}"), "n42");
    }
}
