//! Builder that assembles a [`Dag`] from an edge list, rejecting cycles.

use crate::graph::{Dag, NodeId};

/// Errors raised when finalizing a [`DagBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The edge set contains a directed cycle; acyclicity is a precondition
    /// of the whole model (paper §II-A). Carries one node on a cycle.
    Cycle(NodeId),
    /// An edge endpoint is out of range for the declared node count.
    NodeOutOfRange { node: NodeId, node_count: usize },
    /// A self-loop `(v, v)` was added.
    SelfLoop(NodeId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Cycle(v) => write!(f, "graph contains a cycle through node {v}"),
            DagError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (node count {node_count})")
            }
            DagError::SelfLoop(v) => write!(f, "self-loop on node {v}"),
        }
    }
}

impl std::error::Error for DagError {}

/// Incrementally collects edges, then [`build`](DagBuilder::build)s the CSR
/// [`Dag`], computing the topological order and node levels in one pass.
#[derive(Clone, Debug, Default)]
pub struct DagBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl DagBuilder {
    /// A builder for a graph over nodes `0..node_count`.
    pub fn new(node_count: usize) -> Self {
        DagBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Pre-size the edge list (the production traces have ~half a million
    /// edges; reserving avoids repeated growth).
    pub fn with_edge_capacity(node_count: usize, edges: usize) -> Self {
        DagBuilder {
            node_count,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Grow the node set; returns the id of the newly added node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from_index(self.node_count);
        self.node_count += 1;
        id
    }

    /// Current number of declared nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Current number of recorded edges (before dedup).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Record edge `u -> v` (data flows from `u`'s output into `v`'s input).
    /// Duplicates are allowed and removed at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
    }

    /// Finalize: validate endpoints, sort + dedup edges, build CSR both
    /// ways, Kahn-topo-sort to verify acyclicity, and compute levels.
    pub fn build(self) -> Result<Dag, DagError> {
        let n = self.node_count;
        let mut edges = self.edges;
        for &(u, v) in &edges {
            if u.index() >= n {
                return Err(DagError::NodeOutOfRange {
                    node: u,
                    node_count: n,
                });
            }
            if v.index() >= n {
                return Err(DagError::NodeOutOfRange {
                    node: v,
                    node_count: n,
                });
            }
            if u == v {
                return Err(DagError::SelfLoop(u));
            }
        }
        edges.sort_unstable();
        edges.dedup();

        // CSR out-adjacency.
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = edges.iter().map(|&(_, v)| v).collect();

        // CSR in-adjacency (counting sort by target).
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); edges.len()];
        for &(u, v) in &edges {
            let c = &mut cursor[v.index()];
            in_sources[*c as usize] = u;
            *c += 1;
        }

        // Kahn's algorithm: topological order + levels in one pass.
        // level(v) = max over parents u of level(u) + 1; sources level 0.
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| in_offsets[i + 1] - in_offsets[i])
            .collect();
        let mut topo = Vec::with_capacity(n);
        let mut levels = vec![0u32; n];
        let mut queue: Vec<NodeId> = (0..n as u32)
            .map(NodeId)
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            let lo = out_offsets[u.index()] as usize;
            let hi = out_offsets[u.index() + 1] as usize;
            for &v in &out_targets[lo..hi] {
                let cand = levels[u.index()] + 1;
                if cand > levels[v.index()] {
                    levels[v.index()] = cand;
                }
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            // Some node retained positive indegree: it lies on a cycle.
            let culprit = (0..n as u32)
                .map(NodeId)
                .find(|v| indeg[v.index()] > 0)
                .expect("cycle implies a node with residual indegree");
            return Err(DagError::Cycle(culprit));
        }

        let num_levels = if n == 0 {
            0
        } else {
            levels.iter().copied().max().unwrap_or(0) + 1
        };

        Ok(Dag {
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
            topo,
            levels,
            num_levels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_cycle() {
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        assert!(matches!(b.build(), Err(DagError::Cycle(_))));
    }

    #[test]
    fn detects_self_loop() {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(1), NodeId(1));
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(NodeId(1)));
    }

    #[test]
    fn detects_out_of_range() {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(7));
        assert!(matches!(
            b.build(),
            Err(DagError::NodeOutOfRange { node: NodeId(7), .. })
        ));
    }

    #[test]
    fn dedups_edges() {
        let mut b = DagBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        let d = b.build().unwrap();
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn add_node_extends() {
        let mut b = DagBuilder::new(0);
        let a = b.add_node();
        let c = b.add_node();
        b.add_edge(a, c);
        let d = b.build().unwrap();
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.level(c), 1);
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new(6);
        // two chains sharing a sink: 0->1->2->5, 3->4->5
        for (u, v) in [(0, 1), (1, 2), (2, 5), (3, 4), (4, 5)] {
            b.add_edge(NodeId(u), NodeId(v));
        }
        let d = b.build().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 6];
            for (i, &v) in d.topo_order().iter().enumerate() {
                p[v.index()] = i;
            }
            p
        };
        for (u, v) in d.edges() {
            assert!(pos[u.index()] < pos[v.index()], "edge {u}->{v} violated");
        }
    }

    #[test]
    fn levels_are_longest_paths() {
        // 0->1->3, 0->3: level(3) must be 2 (longest path), not 1.
        let mut b = DagBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(3));
        b.add_edge(NodeId(0), NodeId(3));
        let d = b.build().unwrap();
        assert_eq!(d.level(NodeId(3)), 2);
    }
}
