//! Graphviz DOT export, for inspecting instances the way the paper's
//! Figure 1 visualizes trace #1's computation DAG.

use crate::graph::{Dag, NodeId};
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Graph name in the `digraph` header.
    pub name: String,
    /// Rank nodes by level (adds `rank=same` clusters per level).
    pub rank_by_level: bool,
    /// Cap on emitted nodes; the production DAGs are "a mile long at 300
    /// DPI" (Figure 1 caption), so excerpts are the useful rendering.
    pub max_nodes: Option<usize>,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "dag".to_string(),
            rank_by_level: true,
            max_nodes: Some(2_000),
        }
    }
}

/// Render the DAG (or a prefix excerpt) to DOT. `highlight(v)` returns an
/// optional fill color name for node `v` — used to mark activated nodes.
pub fn to_dot(
    dag: &Dag,
    opts: &DotOptions,
    mut highlight: impl FnMut(NodeId) -> Option<&'static str>,
) -> String {
    let limit = opts.max_nodes.unwrap_or(usize::MAX).min(dag.node_count());
    let included = |v: NodeId| v.index() < limit;
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", opts.name);
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle, fontsize=8];");
    for v in dag.nodes().take(limit) {
        match highlight(v) {
            Some(color) => {
                let _ = writeln!(
                    out,
                    "  {} [style=filled, fillcolor={}, label=\"{}\"];",
                    v.index(),
                    color,
                    v.index()
                );
            }
            None => {
                let _ = writeln!(out, "  {} [label=\"{}\"];", v.index(), v.index());
            }
        }
    }
    if opts.rank_by_level {
        let by_level = crate::levels::nodes_by_level_capped(dag, limit);
        for bucket in by_level.iter().filter(|b| b.len() > 1) {
            let ids: Vec<String> = bucket.iter().map(|v| v.index().to_string()).collect();
            let _ = writeln!(out, "  {{ rank=same; {} }}", ids.join("; "));
        }
    }
    for (u, v) in dag.edges() {
        if included(u) && included(v) {
            let _ = writeln!(out, "  {} -> {};", u.index(), v.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagBuilder;

    fn tiny() -> Dag {
        let mut b = DagBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.build().unwrap()
    }

    #[test]
    fn renders_all_edges() {
        let d = tiny();
        let dot = to_dot(&d, &DotOptions::default(), |_| None);
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.starts_with("digraph \"dag\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlights_marked_nodes() {
        let d = tiny();
        let dot = to_dot(&d, &DotOptions::default(), |v| {
            (v == NodeId(1)).then_some("red")
        });
        assert!(dot.contains("fillcolor=red"));
    }

    #[test]
    fn max_nodes_truncates() {
        let d = tiny();
        let opts = DotOptions {
            max_nodes: Some(2),
            ..DotOptions::default()
        };
        let dot = to_dot(&d, &opts, |_| None);
        assert!(dot.contains("0 -> 1;"));
        assert!(!dot.contains("1 -> 2;"));
    }

    #[test]
    fn rank_by_level_emits_clusters() {
        let mut b = DagBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(3));
        let d = b.build().unwrap();
        let dot = to_dot(&d, &DotOptions::default(), |_| None);
        assert!(dot.contains("rank=same"));
    }
}
