//! Concurrent snapshot readers over the epoch-versioned database.
//!
//! The arena in [`crate::rel`] stamps every row with `born`/`died`
//! epochs; this module adds the machinery that makes those stamps a
//! *servable* MVCC story:
//!
//! * [`PinRegistry`] — a lock-free table of pinned epochs. Pinning is
//!   one CAS, unpinning one store, and the reclamation watermark (the
//!   minimum pinned epoch) is a wait-free scan. The writer consults it
//!   at every publish to decide which tombstones are safe to recycle.
//! * [`ReaderHandle`] — a cloneable, `Send + Sync` capability to mint
//!   snapshots from any thread while the owning engine keeps mutating.
//! * [`Snapshot`] — a pinned epoch plus shared database access. Every
//!   read (point lookup, pattern query, full image) filters rows by the
//!   pinned epoch, so the view is the last *published* cut — bit-stable
//!   for the snapshot's whole lifetime, no matter how many maintenance
//!   cascades commit meanwhile. Dropping the snapshot unpins.
//!
//! Readers take the [`RwLock`] in read mode per operation (never across
//! operations), so they interleave with the writer at its task
//! boundaries; *consistency* comes from the epoch filter, not from lock
//! tenure. The lock only arbitrates access to the unsynchronized
//! interior structures (hash maps, arenas) — it is a concurrency
//! primitive, not the isolation mechanism.
//!
//! **Sharded runtimes** extend the guarantee across engines: the
//! sharded coordinator (`crate::shard`) calls each shard's publish
//! strictly after the whole batch converges on *every* shard, and an
//! aborted batch publishes on none (its deltas are rolled back first).
//! Per-shard epoch streams therefore stay aligned — epoch `E` names
//! the same committed batch on every shard — and a snapshot pinned at
//! `E` on any shard never observes a partially-failed batch
//! (DESIGN.md § 15).

use crate::query::{parse_pattern, query_at, render};
use crate::rel::{Database, PredId};
use incr_obs::Counter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Slot sentinel: no epoch pinned. Epochs are publish counters and can
/// never reach `u64::MAX` in practice.
const EMPTY: u64 = u64::MAX;

/// Default pin capacity — the hard bound on concurrently live snapshots.
const DEFAULT_PINS: usize = 512;

/// Lock-free registry of pinned epochs.
///
/// Fixed-capacity so the whole structure is a flat `Vec<AtomicU64>`:
/// `pin` CASes an `EMPTY` slot to the epoch, `unpin` stores `EMPTY`
/// back, and `min_pinned` is a plain scan. No allocation, no locks, no
/// epoch-GC dependency — exhaustion (more than `capacity` simultaneous
/// snapshots) panics with a clear message rather than silently blocking
/// the writer's reclamation.
pub struct PinRegistry {
    slots: Vec<AtomicU64>,
}

impl Default for PinRegistry {
    fn default() -> Self {
        PinRegistry::with_capacity(DEFAULT_PINS)
    }
}

impl PinRegistry {
    pub fn new() -> Self {
        PinRegistry::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "pin registry needs at least one slot");
        PinRegistry {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
        }
    }

    /// Pin `epoch`, returning the slot to pass to [`Self::unpin`].
    pub fn pin(&self, epoch: u64) -> usize {
        assert_ne!(epoch, EMPTY, "epoch space exhausted");
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(EMPTY, epoch, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return i;
            }
        }
        panic!(
            "snapshot pin capacity exhausted ({} concurrent snapshots)",
            self.slots.len()
        );
    }

    pub fn unpin(&self, slot: usize) {
        self.slots[slot].store(EMPTY, Ordering::Release);
    }

    /// The reclamation watermark: the minimum pinned epoch, or
    /// `u64::MAX` when nothing is pinned (then only the published bound
    /// limits the vacuum).
    pub fn min_pinned(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .min()
            .unwrap_or(EMPTY)
    }

    /// Currently pinned snapshots (the `mvcc.pinned_epochs` gauge).
    pub fn pinned_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Acquire) != EMPTY)
            .count()
    }
}

/// The shared database cell: an [`RwLock`] plus writer preference.
///
/// glibc's rwlock admits new readers while a writer waits, so a pool of
/// spinning snapshot readers can starve the maintenance loop (which
/// re-acquires the write lock at every scheduler task) down to a few
/// percent of its exclusive rate. `DbCell` fixes the policy in
/// userspace: the writer raises `writer_waiting` while it acquires, and
/// readers yield until the flag drops, so the writer only ever waits
/// for the readers already inside. One writer at a time (the engine
/// requires `&mut self` to update), so a plain flag suffices.
///
/// Both paths recover poisoned guards: the database is only mutated
/// through the engine's undo-logged paths, so a panic mid-write leaves
/// state a rollback (or teardown) handles — readers keep serving the
/// last published cut either way.
pub struct DbCell {
    lock: RwLock<Database>,
    writer_waiting: AtomicBool,
}

impl DbCell {
    pub(crate) fn new(db: Database) -> DbCell {
        DbCell {
            lock: RwLock::new(db),
            writer_waiting: AtomicBool::new(false),
        }
    }

    /// Shared read access; defers to an acquiring writer.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        while self.writer_waiting.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        self.lock.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Exclusive write access; backs concurrent readers off while
    /// acquiring.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.writer_waiting.store(true, Ordering::Release);
        let guard = self.lock.write().unwrap_or_else(PoisonError::into_inner);
        self.writer_waiting.store(false, Ordering::Release);
        guard
    }
}

/// A cloneable, thread-safe capability to open [`Snapshot`]s of an
/// engine's database. Obtained from
/// [`crate::IncrementalEngine::reader`]; hand clones to as many reader
/// threads as you like.
#[derive(Clone)]
pub struct ReaderHandle {
    db: Arc<DbCell>,
    pins: Arc<PinRegistry>,
    snapshots_opened: Arc<Counter>,
    reads: Arc<Counter>,
}

impl ReaderHandle {
    pub(crate) fn new(db: Arc<DbCell>, pins: Arc<PinRegistry>) -> ReaderHandle {
        let reg = incr_obs::registry();
        ReaderHandle {
            db,
            pins,
            snapshots_opened: reg.counter("mvcc.snapshots_opened"),
            reads: reg.counter("mvcc.snapshot_reads"),
        }
    }

    /// Pin the current published epoch and return a consistent-cut
    /// handle. The pin happens under a read lock, so a concurrent
    /// publish cannot slip a vacuum between reading the epoch and
    /// pinning it.
    pub fn snapshot(&self) -> Snapshot {
        let (epoch, slot) = {
            let db = self.db.read();
            let epoch = db.epoch();
            (epoch, self.pins.pin(epoch))
        };
        self.snapshots_opened.inc();
        Snapshot {
            db: self.db.clone(),
            pins: self.pins.clone(),
            slot,
            epoch,
            reads: self.reads.clone(),
        }
    }

    /// Currently pinned snapshots.
    pub fn pinned_count(&self) -> usize {
        self.pins.pinned_count()
    }

    /// The reclamation watermark (`u64::MAX` when nothing is pinned).
    pub fn min_pinned(&self) -> u64 {
        self.pins.min_pinned()
    }
}

/// A pinned, consistent read view of the database at one published
/// epoch. Every method takes the shared lock briefly and returns owned
/// data; the view cannot change while the snapshot lives, and the
/// pinned epoch blocks row reclamation that could alias its tuples.
pub struct Snapshot {
    db: Arc<DbCell>,
    pins: Arc<PinRegistry>,
    slot: usize,
    epoch: u64,
    reads: Arc<Counter>,
}

impl Snapshot {
    /// The epoch this snapshot is pinned at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn db(&self) -> RwLockReadGuard<'_, Database> {
        self.reads.inc();
        self.db.read()
    }

    /// Point lookup: does `pred(args…)` hold at the pinned epoch
    /// (symbols only)?
    pub fn has(&self, pred: &str, args: &[&str]) -> bool {
        self.db().has_fact_at(pred, args, self.epoch)
    }

    /// Cardinality of `pred` at the pinned epoch.
    pub fn count(&self, pred: &str) -> usize {
        let db = self.db();
        db.pred_id(pred).map_or(0, |p| db.rel(p).len_at(self.epoch))
    }

    /// Total facts at the pinned epoch.
    pub fn total_facts(&self) -> usize {
        self.db().total_facts_at(self.epoch)
    }

    /// Pattern query (`path(a, ?)`) against the pinned cut. Same
    /// compiled access paths as head queries — secondary indices filter
    /// by visibility — rendered and sorted.
    pub fn query(&self, pattern: &str) -> Result<Vec<String>, String> {
        let (pred, pats) = parse_pattern(pattern)?;
        let db = self.db();
        let rows = query_at(&db, &pred, &pats, self.epoch);
        Ok(render(&db, &rows))
    }

    /// Every fact at the pinned epoch as sorted `pred(args…)` lines —
    /// the bit-identical yardstick the isolation tests compare.
    pub fn image(&self) -> Vec<String> {
        self.db().image_at(Some(self.epoch))
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.pins.unpin(self.slot);
    }
}

impl Database {
    /// Render every fact as sorted `pred(args…)` lines, at head
    /// (`at == None`) or at a snapshot epoch. Lives here (not in the
    /// query layer) so head and snapshot images share one definition.
    pub fn image_at(&self, at: Option<u64>) -> Vec<String> {
        let mut out = Vec::new();
        for i in 0..self.pred_count() {
            let id = PredId(i as u32);
            let rel = self.rel(id);
            let name = self.pred_name(id);
            let rows = match at {
                None => rel.sorted(),
                Some(e) => rel.sorted_at(e),
            };
            for t in rows {
                out.push(format!("{name}{}", self.interner.display_tuple(&t)));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_registry_tracks_minimum() {
        let p = PinRegistry::with_capacity(4);
        assert_eq!(p.min_pinned(), u64::MAX);
        assert_eq!(p.pinned_count(), 0);
        let a = p.pin(7);
        let b = p.pin(3);
        let c = p.pin(9);
        assert_eq!(p.pinned_count(), 3);
        assert_eq!(p.min_pinned(), 3);
        p.unpin(b);
        assert_eq!(p.min_pinned(), 7);
        p.unpin(a);
        p.unpin(c);
        assert_eq!(p.min_pinned(), u64::MAX);
        assert_eq!(p.pinned_count(), 0);
    }

    #[test]
    fn pin_slots_are_reused_after_unpin() {
        let p = PinRegistry::with_capacity(2);
        let a = p.pin(1);
        let b = p.pin(2);
        p.unpin(a);
        let c = p.pin(5);
        assert_eq!(p.pinned_count(), 2);
        assert_eq!(p.min_pinned(), 2);
        p.unpin(b);
        p.unpin(c);
    }

    #[test]
    #[should_panic(expected = "pin capacity exhausted")]
    fn pin_exhaustion_is_loud() {
        let p = PinRegistry::with_capacity(1);
        let _a = p.pin(1);
        let _b = p.pin(2);
    }

    #[test]
    fn concurrent_pins_never_collide() {
        let p = std::sync::Arc::new(PinRegistry::with_capacity(64));
        let handles: Vec<_> = (0..8)
            .map(|k| {
                let p = p.clone();
                std::thread::spawn(move || {
                    let mut slots = Vec::new();
                    for i in 0..8u64 {
                        slots.push((p.pin(10 + k + i), 10 + k + i));
                    }
                    slots
                })
            })
            .collect();
        let all: Vec<(usize, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("pinner thread"))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for &(slot, _) in &all {
            assert!(seen.insert(slot), "slot {slot} handed out twice");
        }
        assert_eq!(p.pinned_count(), 64);
        assert_eq!(p.min_pinned(), all.iter().map(|&(_, e)| e).min().unwrap());
        for (slot, _) in all {
            p.unpin(slot);
        }
        assert_eq!(p.pinned_count(), 0);
    }
}
