//! Hand-written recursive-descent parser for conventional Datalog syntax.
//!
//! ```text
//! program  := clause*
//! clause   := atom ( ":-" literal ("," literal)* )? "."
//! literal  := "!"? atom
//! atom     := ident "(" term ("," term)* ")"
//! term     := VARIABLE | INTEGER | ident | "quoted string"
//! ```
//!
//! Identifiers starting with an uppercase letter or `_` are variables;
//! `%` starts a line comment. Errors carry line/column positions.

use crate::ast::{Atom, Literal, Program, Rule, Term};

/// Parse error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Turnstile,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.bump() {
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Next token, or `None` at end of input.
    fn next_tok(&mut self) -> Result<Option<(Tok, usize, usize)>, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b'!' => {
                self.bump();
                Tok::Bang
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Tok::Turnstile
                } else {
                    return Err(self.err("expected '-' after ':'"));
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\n') | None => return Err(self.err("unterminated string")),
                        Some(c) => s.push(c as char),
                    }
                }
                Tok::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let mut s = String::new();
                if c == b'-' {
                    s.push('-');
                    self.bump();
                }
                while matches!(self.peek(), Some(d) if d.is_ascii_digit()) {
                    s.push(self.bump().unwrap() as char);
                }
                if s == "-" || s.is_empty() {
                    return Err(self.err("expected digits"));
                }
                Tok::Int(s.parse().map_err(|e| self.err(format!("bad integer: {e}")))?)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut s = String::new();
                while matches!(self.peek(), Some(d) if d.is_ascii_alphanumeric() || d == b'_') {
                    s.push(self.bump().unwrap() as char);
                }
                if s == "not" {
                    Tok::Bang
                } else if c.is_ascii_uppercase() || c == b'_' {
                    Tok::Var(s)
                } else {
                    Tok::Ident(s)
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some((tok, line, col)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let pred = match self.bump() {
            Some(Tok::Ident(s)) => s,
            other => return Err(self.err(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        loop {
            let t = match self.bump() {
                Some(Tok::Var(v)) => Term::Var(v),
                Some(Tok::Int(i)) => Term::Int(i),
                Some(Tok::Ident(s)) => {
                    // `count(X)` / `sum(X)` / `min(X)` / `max(X)` in term
                    // position is an aggregate call.
                    if self.peek() == Some(&Tok::LParen) {
                        let Some(op) = crate::ast::AggOp::from_name(&s) else {
                            return Err(
                                self.err(format!("unknown aggregate or nested term {s:?}"))
                            );
                        };
                        self.bump(); // '('
                        let var = match self.bump() {
                            Some(Tok::Var(v)) => v,
                            other => {
                                return Err(self.err(format!(
                                    "aggregate {} takes a variable, found {other:?}",
                                    op.name()
                                )))
                            }
                        };
                        self.expect(Tok::RParen, "')' after aggregate variable")?;
                        Term::Agg(op, var)
                    } else {
                        Term::Sym(s)
                    }
                }
                Some(Tok::Str(s)) => Term::Sym(s),
                other => return Err(self.err(format!("expected term, found {other:?}"))),
            };
            terms.push(t);
            match self.bump() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => return Err(self.err(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        Ok(Atom { pred, terms })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let negated = if self.peek() == Some(&Tok::Bang) {
            self.bump();
            true
        } else {
            false
        };
        Ok(Literal {
            atom: self.atom()?,
            negated,
        })
    }

    fn clause(&mut self) -> Result<Rule, ParseError> {
        let head = self.atom()?;
        let mut body = Vec::new();
        match self.bump() {
            Some(Tok::Dot) => {}
            Some(Tok::Turnstile) => loop {
                body.push(self.literal()?);
                match self.bump() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::Dot) => break,
                    other => {
                        return Err(self.err(format!("expected ',' or '.', found {other:?}")))
                    }
                }
            },
            other => return Err(self.err(format!("expected ':-' or '.', found {other:?}"))),
        }
        Ok(Rule { head, body })
    }
}

/// Parse a whole program; checks rule safety and arity consistency.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut lx = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lx.next_tok()? {
        toks.push(t);
    }
    let mut p = Parser { toks, pos: 0 };
    let mut rules = Vec::new();
    while p.peek().is_some() {
        rules.push(p.clause()?);
    }
    let prog = Program { rules };
    prog.check_safety().map_err(|m| ParseError {
        line: 0,
        col: 0,
        message: m,
    })?;
    prog.predicate_arities().map_err(|m| ParseError {
        line: 0,
        col: 0,
        message: m,
    })?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_transitive_closure() {
        let p = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(a, b). edge(b, c).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert_eq!(p.rules[1].body.len(), 2);
        assert!(p.rules[2].is_fact());
    }

    #[test]
    fn parses_negation_both_spellings() {
        let p = parse_program(
            "alive(X) :- node(X), !dead(X).\n\
             ok(X) :- node(X), not dead(X).",
        )
        .unwrap();
        assert!(p.rules[0].body[1].negated);
        assert!(p.rules[1].body[1].negated);
    }

    #[test]
    fn comments_and_strings() {
        let p = parse_program(
            "% a comment\n\
             // another\n\
             likes(\"Ada Lovelace\", math).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(
            p.rules[0].head.terms[0],
            crate::ast::Term::Sym("Ada Lovelace".into())
        );
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("temp(x, -40).").unwrap();
        assert_eq!(p.rules[0].head.terms[1], crate::ast::Term::Int(-40));
    }

    #[test]
    fn error_positions_reported() {
        let e = parse_program("p(X) :- q(X)\nr(a).").unwrap_err();
        assert_eq!(e.line, 2, "missing dot detected at next clause: {e}");
    }

    #[test]
    fn unsafe_rule_rejected_at_parse() {
        assert!(parse_program("p(X) :- q(Y).").is_err());
    }

    #[test]
    fn arity_conflict_rejected_at_parse() {
        assert!(parse_program("p(a). p(a, b).").is_err());
    }

    #[test]
    fn underscore_vars() {
        let p = parse_program("p(X) :- q(X, _Y).").unwrap();
        assert_eq!(p.rules[0].body[0].atom.terms.len(), 2);
        assert!(p.rules[0].body[0].atom.terms[1].is_var());
    }

    #[test]
    fn empty_program_ok() {
        assert_eq!(parse_program("  % nothing\n").unwrap().rules.len(), 0);
    }
}
