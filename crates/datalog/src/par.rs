//! Parallel delta evaluation: a persistent worker pool that partitions
//! the pinned delta of each semi-naive round (and each DRed phase)
//! across workers.
//!
//! The pool adapts the scoped-thread pattern of
//! `crates/runtime/src/executor.rs` into a *persistent* pool: workers are
//! spawned once per [`EvalOptions`] clone family and reused for every
//! round, because semi-naive fixpoints run many short rounds and
//! per-round thread spawning would dominate. Each `run` installs a
//! lifetime-erased job region, workers pull job indices from a shared
//! cursor, and the coordinator blocks until every worker has checked in —
//! that barrier is what makes the lifetime erasure sound (the borrowed
//! closure outlives all uses).
//!
//! Determinism: callers hand the pool *chunks of sorted delta lists* and
//! merge per-job output buffers with a sorted dedup, so the merged result
//! is a pure function of the inputs regardless of worker interleaving.
//! `threads = 1` never touches the pool at all and reproduces the
//! sequential evaluator exactly.

use crate::eval::{eval_rule, CRule, IndexMode, Pin, PinMode, Rels};
use crate::fbf::MaintenanceStrategy;
use crate::rel::PredId;
use crate::value::Tuple;
use incr_obs::trace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Evaluation knobs threaded through `seminaive_scc_opts`,
/// `update_scc_opts` and the engine.
#[derive(Clone)]
pub struct EvalOptions {
    /// Worker count. `1` (or `0`) evaluates sequentially on the calling
    /// thread, bit-for-bit identical to the pre-pool evaluator.
    pub threads: usize,
    /// Deltas smaller than this stay on the calling thread even when
    /// `threads > 1` — fan-out overhead swamps tiny rounds.
    pub min_parallel_tuples: usize,
    /// Index selection policy for rules compiled by the engine.
    pub index_mode: IndexMode,
    /// Which incremental maintenance backend non-aggregate cliques run
    /// under: classic delete/rederive (DRed) or counting-based
    /// backward/forward (FBF). See [`crate::fbf`].
    pub maintenance: MaintenanceStrategy,
    /// Lazily-spawned shared pool (never created in sequential mode).
    pool: Arc<OnceLock<WorkerPool>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        EvalOptions::with_threads(threads)
    }
}

impl std::fmt::Debug for EvalOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalOptions")
            .field("threads", &self.threads)
            .field("min_parallel_tuples", &self.min_parallel_tuples)
            .field("index_mode", &self.index_mode)
            .field("maintenance", &self.maintenance)
            .finish()
    }
}

impl EvalOptions {
    pub fn with_threads(threads: usize) -> Self {
        EvalOptions {
            threads,
            min_parallel_tuples: 256,
            index_mode: IndexMode::Auto,
            maintenance: MaintenanceStrategy::DRed,
            pool: Arc::new(OnceLock::new()),
        }
    }

    /// Today's single-threaded behavior, exactly.
    pub fn sequential() -> Self {
        EvalOptions::with_threads(1)
    }

    /// Builder-style maintenance-backend selection.
    pub fn with_maintenance(mut self, maintenance: MaintenanceStrategy) -> Self {
        self.maintenance = maintenance;
        self
    }

    pub fn parallel(&self) -> bool {
        self.threads > 1
    }

    /// The pool, iff this workload is worth fanning out.
    fn pool_for(&self, total_tuples: usize, jobs: usize) -> Option<&WorkerPool> {
        if self.threads <= 1 || jobs < 2 || total_tuples < self.min_parallel_tuples {
            return None;
        }
        Some(self.pool.get_or_init(|| WorkerPool::new(self.threads)))
    }

    /// Split a sorted delta list into per-job chunks. Sequential mode
    /// yields the whole list as one chunk; parallel mode aims for ~4
    /// chunks per worker (load balancing without tiny jobs).
    pub fn chunks<'a>(&self, list: &'a [Tuple]) -> impl Iterator<Item = &'a [Tuple]> {
        let size = if self.threads <= 1 {
            list.len().max(1)
        } else {
            list.len().div_ceil(self.threads * 4).max(64)
        };
        list.chunks(size)
    }
}

/// One pinned evaluation unit: evaluate `rule` with body position `pos`
/// pinned to `chunk` under `mode`.
pub(crate) struct PinJob<'a> {
    pub rule: &'a CRule,
    pub pos: usize,
    pub mode: PinMode,
    pub chunk: &'a [Tuple],
}

/// Evaluate every job (in parallel when worthwhile) and return the
/// deduplicated, sorted list of `(head, tuple)` derivations passing
/// `keep`. The database is only read, never written — callers merge the
/// returned list themselves.
pub(crate) fn eval_pin_jobs<R, F>(
    db: &R,
    jobs: &[PinJob<'_>],
    keep: F,
    opts: &EvalOptions,
    span_name: &'static str,
) -> Vec<(PredId, Tuple)>
where
    R: Rels + Sync,
    F: Fn(PredId, &Tuple) -> bool + Sync,
{
    let total: usize = jobs.iter().map(|j| j.chunk.len()).sum();
    collect_jobs(
        opts,
        total,
        jobs.len(),
        |i, out: &mut Vec<(PredId, Tuple)>| {
            let job = &jobs[i];
            let head = job.rule.head.pred;
            eval_rule(
                db,
                job.rule,
                Some(Pin {
                    index: job.pos,
                    mode: job.mode,
                    delta: job.chunk,
                }),
                &mut |t| {
                    if keep(head, &t) {
                        out.push((head, t));
                    }
                },
            );
        },
        span_name,
    )
}

/// [`eval_pin_jobs`] with *multiset* semantics: every derivation is kept
/// (no dedup), and the merged result is run-length encoded into sorted
/// `(head, tuple, multiplicity)` triples. Counting-based maintenance
/// needs per-derivation multiplicities — a tuple derived three ways that
/// loses one input still has two derivations, which set-semantics
/// collection would erase. Deterministic for the same reason
/// [`collect_jobs`] is: pinned chunks partition the delta list, so each
/// derivation is emitted by exactly one job, and the sorted merge is
/// independent of worker interleaving.
pub(crate) fn eval_pin_jobs_counted<R, F>(
    db: &R,
    jobs: &[PinJob<'_>],
    keep: F,
    opts: &EvalOptions,
    span_name: &'static str,
) -> Vec<(PredId, Tuple, u64)>
where
    R: Rels + Sync,
    F: Fn(PredId, &Tuple) -> bool + Sync,
{
    let total: usize = jobs.iter().map(|j| j.chunk.len()).sum();
    let flat = collect_jobs_with(
        opts,
        total,
        jobs.len(),
        |i, out: &mut Vec<(PredId, Tuple)>| {
            let job = &jobs[i];
            let head = job.rule.head.pred;
            eval_rule(
                db,
                job.rule,
                Some(Pin {
                    index: job.pos,
                    mode: job.mode,
                    delta: job.chunk,
                }),
                &mut |t| {
                    if keep(head, &t) {
                        out.push((head, t));
                    }
                },
            );
        },
        span_name,
        false,
    );
    let mut counted: Vec<(PredId, Tuple, u64)> = Vec::new();
    for (p, t) in flat {
        match counted.last_mut() {
            Some((lp, lt, n)) if *lp == p && *lt == t => *n += 1,
            _ => counted.push((p, t, 1)),
        }
    }
    counted
}

/// Run `njobs` jobs, each appending to its own buffer, and merge the
/// buffers into one sorted, deduplicated list. Parallel when the options
/// and workload justify it; otherwise on the calling thread, same code
/// path per job.
pub(crate) fn collect_jobs<T, F>(
    opts: &EvalOptions,
    total_tuples: usize,
    njobs: usize,
    run_one: F,
    span_name: &'static str,
) -> Vec<T>
where
    T: Send + Ord,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    collect_jobs_with(opts, total_tuples, njobs, run_one, span_name, true)
}

/// The shared merge: sorted always (determinism); deduplicated only
/// under set semantics (`dedup`), kept verbatim for multiset callers.
fn collect_jobs_with<T, F>(
    opts: &EvalOptions,
    total_tuples: usize,
    njobs: usize,
    run_one: F,
    span_name: &'static str,
    dedup: bool,
) -> Vec<T>
where
    T: Send + Ord,
    F: Fn(usize, &mut Vec<T>) + Sync,
{
    let mut flat: Vec<T> = match opts.pool_for(total_tuples, njobs) {
        Some(pool) => {
            let span = trace::enabled().then(|| {
                trace::span_with(
                    "datalog",
                    span_name,
                    vec![
                        ("jobs", (njobs as u64).into()),
                        ("tuples", (total_tuples as u64).into()),
                        ("threads", (pool.workers() as u64).into()),
                    ],
                )
            });
            let buffers = pool.run_buffered(njobs, |i, out| run_one(i, out));
            drop(span);
            buffers.into_iter().flatten().collect()
        }
        None => {
            let mut flat = Vec::new();
            for i in 0..njobs {
                run_one(i, &mut flat);
            }
            flat
        }
    };
    // Deterministic merge: output is independent of chunking and worker
    // interleaving (jobs may derive the same tuple from different chunks).
    flat.sort_unstable();
    if dedup {
        flat.dedup();
    }
    flat
}

/// Type-erased borrowed job: `&'static` is a lie made safe by the run
/// barrier (see `WorkerPool::run`).
#[derive(Clone, Copy)]
struct RawJob(&'static (dyn Fn(usize) + Sync));

// SAFETY: the referent is Sync and the reference is only dereferenced
// between region installation and the completion barrier.
unsafe impl Send for RawJob {}

struct Region {
    job: RawJob,
    n: usize,
    cursor: Arc<AtomicUsize>,
}

#[derive(Default)]
struct PoolState {
    /// Bumped per region; workers wait for a change.
    epoch: u64,
    region: Option<Region>,
    /// Workers that finished the current region.
    finished: usize,
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work: Condvar,
    done: Condvar,
}

/// Persistent worker pool. Workers sleep on a condvar between regions.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes `run` calls (the region slot is single-occupancy).
    run_lock: Mutex<()>,
}

impl WorkerPool {
    pub fn new(threads: usize) -> WorkerPool {
        let workers = threads.max(2);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("datalog-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn datalog worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            run_lock: Mutex::new(()),
        }
    }

    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `f(0..n)` across the workers; returns after ALL workers have
    /// checked in (they may have split the indices arbitrarily).
    /// Re-raises worker panics on the caller.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // A propagated worker panic poisons this lock on the way out;
        // the pool state itself stays consistent (the barrier completed),
        // so clear the poison and keep the pool usable.
        let _serial = self
            .run_lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // SAFETY: we block below until every worker has checked in for
        // this region and the region is cleared, so no worker can hold
        // this reference past the borrow of `f`.
        let job = RawJob(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        let workers = self.handles.len();
        let mut st = self.shared.state.lock().unwrap();
        st.region = Some(Region {
            job,
            n,
            cursor: Arc::new(AtomicUsize::new(0)),
        });
        st.finished = 0;
        st.panicked = false;
        st.epoch += 1;
        drop(st);
        self.shared.work.notify_all();
        let mut st = self.shared.state.lock().unwrap();
        while st.finished < workers {
            st = self.shared.done.wait(st).unwrap();
        }
        st.region = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("datalog worker panicked during parallel evaluation");
        }
    }

    /// Run `n` jobs, each writing into its own output buffer; returns the
    /// buffers in job order.
    pub fn run_buffered<T: Send>(
        &self,
        n: usize,
        f: impl Fn(usize, &mut Vec<T>) + Sync,
    ) -> Vec<Vec<T>> {
        let slots: Vec<Mutex<Vec<T>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        self.run(n, &|i| {
            let mut buf = slots[i].lock().unwrap();
            f(i, &mut buf);
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.handles.drain(..) {
            h.join().ok();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    trace::set_thread_name(&format!("datalog-worker-{index}"));
    let mut seen_epoch = 0u64;
    loop {
        let (job, n, cursor) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(region) = &st.region {
                        seen_epoch = st.epoch;
                        break (region.job, region.n, Arc::clone(&region.cursor));
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        let mut panicked = false;
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if catch_unwind(AssertUnwindSafe(|| (job.0)(i))).is_err() {
                panicked = true;
                // Keep draining indices so siblings and the coordinator
                // are not left waiting on unclaimed work.
            }
        }
        let mut st = shared.state.lock().unwrap();
        if panicked {
            st.panicked = true;
        }
        st.finished += 1;
        drop(st);
        shared.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn pool_runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_is_reusable_across_regions() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(10, &|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 55);
    }

    #[test]
    fn run_buffered_preserves_job_order() {
        let pool = WorkerPool::new(4);
        let buffers = pool.run_buffered(32, |i, out: &mut Vec<usize>| {
            out.push(i * 2);
        });
        for (i, buf) in buffers.iter().enumerate() {
            assert_eq!(buf.as_slice(), &[i * 2]);
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still usable afterwards.
        let count = AtomicU64::new(0);
        pool.run(4, &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn options_default_and_sequential() {
        let d = EvalOptions::default();
        assert!(d.threads >= 1);
        let s = EvalOptions::sequential();
        assert_eq!(s.threads, 1);
        assert!(!s.parallel());
        assert!(s.pool_for(usize::MAX, usize::MAX).is_none());
    }

    #[test]
    fn small_workloads_stay_sequential() {
        let mut o = EvalOptions::with_threads(4);
        o.min_parallel_tuples = 100;
        assert!(o.pool_for(99, 8).is_none(), "below tuple threshold");
        assert!(o.pool_for(1000, 1).is_none(), "single job");
        assert!(o.pool_for(1000, 8).is_some());
    }

    #[test]
    fn chunks_cover_the_list_in_order() {
        let list: Vec<Tuple> = (0..500)
            .map(|i| vec![crate::value::Value::Int(i)])
            .collect();
        let o = EvalOptions::with_threads(4);
        let rejoined: Vec<Tuple> = o.chunks(&list).flatten().cloned().collect();
        assert_eq!(rejoined, list);
        assert!(o.chunks(&list).count() > 1);
        let s = EvalOptions::sequential();
        assert_eq!(s.chunks(&list).count(), 1);
    }

    #[test]
    fn collect_jobs_merges_sorted_and_deduped() {
        let o = EvalOptions::sequential();
        let out: Vec<u32> = collect_jobs(
            &o,
            0,
            3,
            |i, out: &mut Vec<u32>| {
                out.push(3 - i as u32);
                out.push(7); // duplicated across jobs
            },
            "par.test",
        );
        assert_eq!(out, vec![1, 2, 3, 7]);
    }
}
