//! Compile a Datalog program into the paper's scheduling DAG.
//!
//! Each strongly connected component of the predicate dependency graph
//! becomes one task node: base (EDB) predicates are source nodes ("the
//! data of the database", §II-A); each derived clique is a fixpoint task.
//! An edge `A → B` means some rule of `B` reads a predicate evaluated by
//! `A` — output flowing into input, the paper's precedence constraints.

use crate::eval::CRule;
use crate::rel::{Database, PredId};
use crate::stratify::Stratification;
use incr_dag::{Dag, DagBuilder, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// What a task node computes.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// A base (EDB) predicate: a source node; "executing" it means its
    /// pending base-table edits become visible.
    Base(PredId),
    /// A derived clique: fixpoint evaluation of `rules` over `preds`.
    Clique {
        preds: Vec<PredId>,
        /// Indices into the engine's compiled-rule list.
        rules: Vec<usize>,
    },
}

/// The compiled scheduling DAG and its predicate mapping.
#[derive(Clone, Debug)]
pub struct TaskGraph {
    pub dag: Arc<Dag>,
    pub kinds: Vec<NodeKind>,
    /// Node evaluating each predicate.
    pub node_of_pred: HashMap<PredId, NodeId>,
    /// Per node: the external predicates its rules read (for firing
    /// decisions).
    pub reads: Vec<Vec<PredId>>,
}

impl TaskGraph {
    /// Build from a stratification + compiled rules. `db` must already
    /// have every predicate registered (compile_program does this).
    pub fn build(strat: &Stratification, rules: &[CRule], db: &Database) -> TaskGraph {
        // Map stratification pred indices (name order) to PredIds.
        let pred_id: Vec<PredId> = strat
            .preds
            .iter()
            .map(|n| db.pred_id(n).expect("pred registered"))
            .collect();

        // One task node per SCC, numbered by SCC id.
        let n_nodes = strat.sccs.len();
        let mut kinds: Vec<NodeKind> = Vec::with_capacity(n_nodes);
        let mut node_of_pred: HashMap<PredId, NodeId> = HashMap::new();
        for (scc_idx, comp) in strat.sccs.iter().enumerate() {
            let preds: Vec<PredId> = comp.iter().map(|&p| pred_id[p]).collect();
            for &p in &preds {
                node_of_pred.insert(p, NodeId(scc_idx as u32));
            }
            let rule_idx: Vec<usize> = rules
                .iter()
                .enumerate()
                .filter(|(_, r)| preds.contains(&r.head.pred))
                .map(|(i, _)| i)
                .collect();
            if rule_idx.is_empty() {
                assert_eq!(
                    preds.len(),
                    1,
                    "rule-less SCC with multiple preds is impossible"
                );
                kinds.push(NodeKind::Base(preds[0]));
            } else {
                kinds.push(NodeKind::Clique {
                    preds,
                    rules: rule_idx,
                });
            }
        }

        // Edges + per-node external read sets.
        let mut b = DagBuilder::new(n_nodes);
        let mut reads: Vec<Vec<PredId>> = vec![Vec::new(); n_nodes];
        for (scc_idx, kind) in kinds.iter().enumerate() {
            let NodeKind::Clique { rules: ridx, .. } = kind else {
                continue;
            };
            for &ri in ridx {
                for (atom, _) in &rules[ri].body {
                    let src = node_of_pred[&atom.pred];
                    if src.index() != scc_idx {
                        b.add_edge(src, NodeId(scc_idx as u32));
                        if !reads[scc_idx].contains(&atom.pred) {
                            reads[scc_idx].push(atom.pred);
                        }
                    }
                }
            }
        }
        let dag = Arc::new(b.build().expect("SCC condensation is acyclic"));
        TaskGraph {
            dag,
            kinds,
            node_of_pred,
            reads,
        }
    }

    /// Human-readable node label (predicate names).
    pub fn label(&self, node: NodeId, db: &Database) -> String {
        match &self.kinds[node.index()] {
            NodeKind::Base(p) => format!("base:{}", db.pred_name(*p)),
            NodeKind::Clique { preds, .. } => {
                let names: Vec<&str> = preds.iter().map(|&p| db.pred_name(p)).collect();
                format!("clique:{}", names.join("+"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::compile_program;
    use crate::parser::parse_program;
    use crate::stratify::stratify;

    fn build(src: &str) -> (Database, TaskGraph) {
        let prog = parse_program(src).unwrap();
        let strat = stratify(&prog).unwrap();
        let mut db = Database::new();
        let rules = compile_program(&prog, &mut db);
        let tg = TaskGraph::build(&strat, &rules, &db);
        (db, tg)
    }

    #[test]
    fn tc_has_base_source_and_clique_sink() {
        let (db, tg) = build(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        );
        assert_eq!(tg.dag.node_count(), 2);
        assert_eq!(tg.dag.edge_count(), 1);
        let edge_node = tg.node_of_pred[&db.pred_id("edge").unwrap()];
        let path_node = tg.node_of_pred[&db.pred_id("path").unwrap()];
        assert!(matches!(tg.kinds[edge_node.index()], NodeKind::Base(_)));
        assert!(matches!(
            tg.kinds[path_node.index()],
            NodeKind::Clique { .. }
        ));
        assert!(tg.dag.has_edge(edge_node, path_node));
        assert_eq!(tg.dag.level(path_node), 1);
    }

    #[test]
    fn mutual_recursion_is_one_node() {
        let (db, tg) = build(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y, X), odd(Y).\n\
             odd(X) :- succ(Y, X), even(Y).",
        );
        let even = tg.node_of_pred[&db.pred_id("even").unwrap()];
        let odd = tg.node_of_pred[&db.pred_id("odd").unwrap()];
        assert_eq!(even, odd);
        // zero, succ bases + 1 clique = 3 nodes.
        assert_eq!(tg.dag.node_count(), 3);
    }

    #[test]
    fn reads_list_external_preds_only() {
        let (db, tg) = build(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).",
        );
        let path_node = tg.node_of_pred[&db.pred_id("path").unwrap()];
        let edge = db.pred_id("edge").unwrap();
        assert_eq!(tg.reads[path_node.index()], vec![edge]);
    }

    #[test]
    fn diamond_of_strata() {
        let (db, tg) = build(
            "mid1(X) :- base(X).\n\
             mid2(X) :- base(X).\n\
             top(X) :- mid1(X), mid2(X).",
        );
        let top = tg.node_of_pred[&db.pred_id("top").unwrap()];
        assert_eq!(tg.dag.level(top), 2);
        assert_eq!(tg.dag.in_degree(top), 2);
    }

    #[test]
    fn labels_are_descriptive() {
        let (db, tg) = build("p(X) :- q(X).");
        let q = tg.node_of_pred[&db.pred_id("q").unwrap()];
        let p = tg.node_of_pred[&db.pred_id("p").unwrap()];
        assert_eq!(tg.label(q, &db), "base:q");
        assert_eq!(tg.label(p, &db), "clique:p");
    }
}
