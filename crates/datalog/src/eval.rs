//! Bottom-up evaluation: naive and semi-naive, with *delta pinning* as
//! the common primitive.
//!
//! A compiled rule's body is evaluated left-to-right by nested-loop join
//! over variable bindings, driven by a join plan computed at compile
//! time: for each body atom the plan records which columns are bound by
//! constants and earlier positive atoms, and the evaluator probes the
//! secondary index on exactly that column set (building it on demand via
//! [`ensure_indices`]) instead of scanning the extent. Pinning body
//! position `j` to a delta relation evaluates only the derivations that
//! use a delta tuple at `j` — the primitive behind semi-naive fixpoints,
//! incremental insertion, and DRed overdeletion alike. Pinned deltas are
//! slices so the parallel evaluator ([`crate::par`]) can partition them
//! across workers.

use crate::ast::{AggOp, Program, Rule, Term};
use crate::par::{eval_pin_jobs, EvalOptions, PinJob};
use crate::rel::{Database, PredId, Relation};
use crate::value::{Tuple, Value};
use incr_obs::Counter;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// Read-only source of relation extents. [`Database`] is the live store;
/// the incremental module's snapshots overlay old extents for DRed
/// overdeletion (which must evaluate against the pre-update state).
pub trait Rels {
    fn relation(&self, p: PredId) -> &Relation;
}

impl Rels for Database {
    fn relation(&self, p: PredId) -> &Relation {
        self.rel(p)
    }
}

/// A term with variables resolved to dense per-rule slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CTerm {
    Var(u32),
    Const(Value),
}

/// An atom over slot-resolved terms.
#[derive(Clone, Debug)]
pub struct CAtom {
    pub pred: PredId,
    pub terms: Vec<CTerm>,
}

/// A compiled head aggregate: head position `pos` holds `op` over the
/// body variable in slot `slot`, grouped by the remaining head terms.
#[derive(Clone, Copy, Debug)]
pub struct CAgg {
    pub pos: usize,
    pub op: AggOp,
    pub slot: u32,
}

/// How one body atom is accessed by the nested-loop join.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// No useful column bound when this atom is reached: full extent scan.
    Scan,
    /// Probe the secondary index over these columns (the greedy
    /// most-bound-columns choice: every bound position participates).
    Index(Vec<usize>),
    /// Every column bound: a single membership check.
    AllBound,
}

/// Index selection policy, fixed at rule-compile time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Probe on all bound columns; fully-bound atoms become membership
    /// checks.
    #[default]
    Auto,
    /// The legacy heuristic — index only when position 0 is bound,
    /// otherwise scan. Kept as a measurable baseline for `datalog_perf`.
    FirstColumn,
}

/// A compiled rule.
#[derive(Clone, Debug)]
pub struct CRule {
    pub head: CAtom,
    /// `(atom, negated)` in source order.
    pub body: Vec<(CAtom, bool)>,
    pub nvars: u32,
    /// Head aggregate, if any. Aggregate rules are evaluated by
    /// [`eval_agg_rule`], never with delta pins; stratification keeps
    /// their consumers above their inputs exactly as with negation.
    pub agg: Option<CAgg>,
    /// Per-body-atom access path when evaluation starts from nothing
    /// bound (the ordinary forward join).
    pub plan: Vec<Access>,
    /// Access path when the head variables are pre-bound — used by
    /// [`rule_derives`] to check a single candidate head tuple (DRed
    /// rederivation).
    pub check_plan: Vec<Access>,
}

/// Index hit/miss/scan/build counters, registered once and cached (the
/// registry lookup takes a lock; these sit on the hot path).
pub(crate) struct EvalMetrics {
    pub hit: Arc<Counter>,
    pub miss: Arc<Counter>,
    pub scan: Arc<Counter>,
    pub build: Arc<Counter>,
}

pub(crate) fn metrics() -> &'static EvalMetrics {
    static M: OnceLock<EvalMetrics> = OnceLock::new();
    M.get_or_init(|| EvalMetrics {
        hit: incr_obs::registry().counter("datalog.index.hit"),
        miss: incr_obs::registry().counter("datalog.index.miss"),
        scan: incr_obs::registry().counter("datalog.scan.full"),
        build: incr_obs::registry().counter("datalog.index.build"),
    })
}

/// Compute the access path per body atom, given the slots bound before
/// the first atom runs (`initially_bound` — empty for the forward plan,
/// the head slots for the check plan).
fn access_plan(body: &[(CAtom, bool)], initially_bound: &[u32], mode: IndexMode) -> Vec<Access> {
    let mut bound: HashSet<u32> = initially_bound.iter().copied().collect();
    let mut plan = Vec::with_capacity(body.len());
    for (atom, negated) in body {
        let cols: Vec<usize> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                CTerm::Const(_) => true,
                CTerm::Var(s) => bound.contains(s),
            })
            .map(|(i, _)| i)
            .collect();
        let access = if *negated {
            // Negated literals are ground under safety: always a
            // membership check, no index needed.
            Access::AllBound
        } else {
            match mode {
                IndexMode::Auto => {
                    if cols.len() == atom.terms.len() {
                        Access::AllBound
                    } else if cols.is_empty() {
                        Access::Scan
                    } else {
                        Access::Index(cols)
                    }
                }
                IndexMode::FirstColumn => {
                    if cols.contains(&0) {
                        Access::Index(vec![0])
                    } else {
                        Access::Scan
                    }
                }
            }
        };
        plan.push(access);
        if !*negated {
            for t in &atom.terms {
                if let CTerm::Var(s) = t {
                    bound.insert(*s);
                }
            }
        }
    }
    plan
}

/// Compile `rule`, registering predicates and interning constants.
pub fn compile_rule(rule: &Rule, db: &mut Database) -> CRule {
    compile_rule_with(rule, db, IndexMode::Auto)
}

/// [`compile_rule`] with an explicit index-selection policy.
pub fn compile_rule_with(rule: &Rule, db: &mut Database, mode: IndexMode) -> CRule {
    fn catom(atom: &crate::ast::Atom, db: &mut Database) -> CAtom {
        let pred = db.pred(&atom.pred, atom.arity());
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                // Variables and aggregated variables are slot placeholders.
                Term::Var(_) | Term::Agg(..) => CTerm::Var(0), // fixed below
                Term::Int(i) => CTerm::Const(Value::Int(*i)),
                Term::Sym(s) => CTerm::Const(db.sym(s)),
            })
            .collect::<Vec<_>>();
        CAtom { pred, terms }
    }
    // First pass creates atoms with placeholder vars; second assigns
    // variable slots (needs the original AST for the names).
    let mut head = catom(&rule.head, db);
    let mut body: Vec<(CAtom, bool)> = rule
        .body
        .iter()
        .map(|l| (catom(&l.atom, db), l.negated))
        .collect();
    let mut slots: HashMap<String, u32> = HashMap::new();
    let mut next = 0u32;
    let mut fix = |ast: &crate::ast::Atom, c: &mut CAtom| {
        for (i, t) in ast.terms.iter().enumerate() {
            if let Term::Var(name) | Term::Agg(_, name) = t {
                let slot = *slots.entry(name.clone()).or_insert_with(|| {
                    let s = next;
                    next += 1;
                    s
                });
                c.terms[i] = CTerm::Var(slot);
            }
        }
    };
    // Bind body first so evaluation binds variables before the head
    // reads them (safety guarantees head vars appear in the body).
    for (i, l) in rule.body.iter().enumerate() {
        fix(&l.atom, &mut body[i].0);
    }
    fix(&rule.head, &mut head);
    let agg = rule.head.agg().map(|(pos, op, var)| CAgg {
        pos,
        op,
        slot: slots[var],
    });
    let plan = access_plan(&body, &[], mode);
    let head_slots: Vec<u32> = head
        .terms
        .iter()
        .filter_map(|t| match t {
            CTerm::Var(s) => Some(*s),
            CTerm::Const(_) => None,
        })
        .collect();
    let check_plan = access_plan(&body, &head_slots, mode);
    CRule {
        head,
        body,
        nvars: next,
        agg,
        plan,
        check_plan,
    }
}

/// Compile all rules with non-empty bodies (facts are loaded separately
/// via [`load_facts`]); also registers every predicate.
pub fn compile_program(program: &Program, db: &mut Database) -> Vec<CRule> {
    compile_program_with(program, db, IndexMode::Auto)
}

/// [`compile_program`] with an explicit index-selection policy.
pub fn compile_program_with(program: &Program, db: &mut Database, mode: IndexMode) -> Vec<CRule> {
    // Register every predicate (even fact-only ones) first.
    for r in &program.rules {
        db.pred(&r.head.pred, r.head.arity());
        for l in &r.body {
            db.pred(&l.atom.pred, l.atom.arity());
        }
    }
    program
        .rules
        .iter()
        .filter(|r| !r.body.is_empty())
        .map(|r| compile_rule_with(r, db, mode))
        .collect()
}

/// Build every secondary index the rules' plans probe, so evaluation
/// under `&Database` never takes a lock or mutates. Call at any `&mut`
/// entry point before evaluating; re-ensuring is a cheap no-op.
/// `include_check_plans` additionally covers [`rule_derives`]'s plans
/// (only the DRed path needs those).
pub fn ensure_indices(db: &mut Database, rules: &[CRule], include_check_plans: bool) {
    fn ensure_plan(db: &mut Database, rule: &CRule, plan: &[Access]) {
        for ((atom, _), access) in rule.body.iter().zip(plan) {
            if let Access::Index(cols) = access {
                if db.rel_mut(atom.pred).ensure_index(cols) {
                    metrics().build.inc();
                }
            }
        }
    }
    for rule in rules {
        ensure_plan(db, rule, &rule.plan);
        if include_check_plans {
            ensure_plan(db, rule, &rule.check_plan);
        }
    }
}

/// Insert the program's ground facts into the database.
pub fn load_facts(program: &Program, db: &mut Database) {
    for r in &program.rules {
        if r.is_fact() {
            let tuple: Tuple = r
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Int(i) => Value::Int(*i),
                    Term::Sym(s) => db.sym(s),
                    Term::Var(_) | Term::Agg(..) => unreachable!("facts are ground"),
                })
                .collect();
            let id = db.pred(&r.head.pred, r.head.arity());
            db.rel_mut(id).insert(tuple);
        }
    }
}

/// Match `tuple` against `atom` under `bind` (slot -> value); extends
/// `bind`, recording newly bound slots in `trail` for backtracking.
fn matches(atom: &CAtom, tuple: &[Value], bind: &mut [Option<Value>], trail: &mut Vec<u32>) -> bool {
    let start = trail.len();
    for (t, &v) in atom.terms.iter().zip(tuple) {
        let ok = match *t {
            CTerm::Const(c) => c == v,
            CTerm::Var(s) => match bind[s as usize] {
                Some(b) => b == v,
                None => {
                    bind[s as usize] = Some(v);
                    trail.push(s);
                    true
                }
            },
        };
        if !ok {
            for &s in &trail[start..] {
                bind[s as usize] = None;
            }
            trail.truncate(start);
            return false;
        }
    }
    true
}

/// Instantiate a fully-bound atom (negated literals and heads are ground
/// under safety once the positive body is bound).
fn instantiate(atom: &CAtom, bind: &[Option<Value>]) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match *t {
            CTerm::Const(c) => c,
            CTerm::Var(s) => bind[s as usize].expect("unbound slot in ground position"),
        })
        .collect()
}

/// The value of a plan-bound term (never an unbound variable).
fn resolve(t: &CTerm, bind: &[Option<Value>]) -> Value {
    match *t {
        CTerm::Const(c) => c,
        CTerm::Var(s) => bind[s as usize].expect("plan column is bound"),
    }
}

/// How a pinned literal is interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinMode {
    /// Positive literal restricted to the delta set (semi-naive /
    /// insertion / overdeletion through positive dependencies).
    Positive,
    /// Negated literal matched *positively* against tuples freshly
    /// REMOVED from its relation — derivations newly enabled because the
    /// blocker disappeared. Requires the tuple to be absent from the
    /// current relation.
    NegGained,
    /// Negated literal matched positively against tuples freshly ADDED to
    /// its relation — derivations destroyed because a blocker appeared
    /// (overdeletion through negation).
    NegLost,
}

/// A pinned body position. The delta is a slice so callers can pin
/// disjoint partitions of one logical delta from parallel workers.
#[derive(Clone, Copy)]
pub struct Pin<'a> {
    pub index: usize,
    pub mode: PinMode,
    pub delta: &'a [Tuple],
}

/// Immutable per-evaluation context threaded through the join recursion.
struct Ctx<'a> {
    rule: &'a CRule,
    plan: &'a [Access],
    pin: Option<Pin<'a>>,
}

/// Evaluate `rule` against `db`, optionally pinning one body literal, and
/// call `out` for every derived head tuple (duplicates possible).
///
/// With `PinMode::NegLost` the negated literal at the pin matches added
/// tuples and the *rest* of the rule is evaluated as usual — the caller
/// interprets the heads as lost derivations.
pub fn eval_rule(db: &dyn Rels, rule: &CRule, pin: Option<Pin<'_>>, out: &mut dyn FnMut(Tuple)) {
    assert!(
        rule.agg.is_none(),
        "aggregate rules are evaluated with eval_agg_rule, never pinned"
    );
    let ctx = Ctx {
        rule,
        plan: &rule.plan,
        pin,
    };
    let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
    let mut trail: Vec<u32> = Vec::new();
    eval_from(db, &ctx, 0, &mut bind, &mut trail, out);
}

/// Evaluate an aggregate rule: collect the DISTINCT raw head bindings
/// (the aggregate position carries the bound variable), group by the
/// remaining positions, and fold each group with the operator.
///
/// `count` counts distinct values per group; `sum`/`min`/`max` fold the
/// `Int` values and skip groups with none (symbols have no meaningful
/// order across interning).
pub fn eval_agg_rule(db: &dyn Rels, rule: &CRule) -> Vec<Tuple> {
    let agg = rule.agg.expect("eval_agg_rule requires an aggregate head");
    let mut raw: HashSet<Tuple> = HashSet::new();
    {
        let ctx = Ctx {
            rule,
            plan: &rule.plan,
            pin: None,
        };
        let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
        let mut trail: Vec<u32> = Vec::new();
        eval_from(db, &ctx, 0, &mut bind, &mut trail, &mut |t| {
            raw.insert(t);
        });
    }
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for t in raw {
        let mut key = t.clone();
        let v = key.remove(agg.pos);
        groups.entry(key).or_default().push(v);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, vals) in groups {
        let folded = match agg.op {
            AggOp::Count => Some(Value::Int(vals.len() as i64)),
            AggOp::Sum => {
                let ints: Vec<i64> = vals
                    .iter()
                    .filter_map(|v| match v {
                        Value::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                (!ints.is_empty()).then(|| Value::Int(ints.iter().sum()))
            }
            AggOp::Min | AggOp::Max => {
                let ints = vals.iter().filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                });
                if agg.op == AggOp::Min {
                    ints.min().map(Value::Int)
                } else {
                    ints.max().map(Value::Int)
                }
            }
        };
        if let Some(v) = folded {
            let mut tuple = key;
            tuple.insert(agg.pos, v);
            out.push(tuple);
        }
    }
    out
}

/// Recurse over `tuples`, extending bindings via `matches`.
macro_rules! join_loop {
    ($db:ident, $ctx:ident, $depth:ident, $bind:ident, $trail:ident, $out:ident, $atom:ident, $tuples:expr, $extra:expr) => {
        for tuple in $tuples {
            let mark = $trail.len();
            if matches($atom, tuple, $bind, $trail) {
                if $extra(tuple) {
                    eval_from($db, $ctx, $depth + 1, $bind, $trail, $out);
                }
                for &s in &$trail[mark..] {
                    $bind[s as usize] = None;
                }
                $trail.truncate(mark);
            }
        }
    };
}

fn eval_from(
    db: &dyn Rels,
    ctx: &Ctx<'_>,
    depth: usize,
    bind: &mut Vec<Option<Value>>,
    trail: &mut Vec<u32>,
    out: &mut dyn FnMut(Tuple),
) {
    if depth == ctx.rule.body.len() {
        out(instantiate(&ctx.rule.head, bind));
        return;
    }
    let (atom, negated) = &ctx.rule.body[depth];
    let pinned_here = ctx.pin.as_ref().filter(|p| p.index == depth);

    if let Some(p) = pinned_here {
        match p.mode {
            PinMode::Positive => {
                debug_assert!(!negated, "Positive pin on negated literal");
                join_loop!(db, ctx, depth, bind, trail, out, atom, p.delta, |_t| true);
            }
            PinMode::NegGained => {
                debug_assert!(negated);
                // Only a *net* removal enables the derivation.
                join_loop!(db, ctx, depth, bind, trail, out, atom, p.delta, |t| !db
                    .relation(atom.pred)
                    .contains(t));
            }
            PinMode::NegLost => {
                debug_assert!(negated);
                join_loop!(db, ctx, depth, bind, trail, out, atom, p.delta, |_t| true);
            }
        }
        return;
    }

    if *negated {
        // Safety guarantees groundness here.
        let tuple = instantiate(atom, bind);
        if !db.relation(atom.pred).contains(&tuple) {
            eval_from(db, ctx, depth + 1, bind, trail, out);
        }
        return;
    }

    let rel = db.relation(atom.pred);
    match &ctx.plan[depth] {
        Access::AllBound => {
            // Fully ground: one membership probe, no new bindings.
            let tuple = instantiate(atom, bind);
            metrics().hit.inc();
            if rel.contains(&tuple) {
                eval_from(db, ctx, depth + 1, bind, trail, out);
            }
        }
        Access::Index(cols) => {
            let key: Vec<Value> = cols.iter().map(|&c| resolve(&atom.terms[c], bind)).collect();
            match rel.probe(cols, &key) {
                Some(p) => {
                    let m = metrics();
                    if p.is_empty() {
                        m.miss.inc();
                    } else {
                        m.hit.inc();
                    }
                    join_loop!(db, ctx, depth, bind, trail, out, atom, p.iter(), |_t| true);
                }
                None => {
                    // Index not built (e.g. evaluation through a read-only
                    // view that never saw ensure_indices): stay correct
                    // with a scan.
                    metrics().scan.inc();
                    join_loop!(db, ctx, depth, bind, trail, out, atom, rel.iter(), |_t| true);
                }
            }
        }
        Access::Scan => {
            metrics().scan.inc();
            join_loop!(db, ctx, depth, bind, trail, out, atom, rel.iter(), |_t| true);
        }
    }
}

/// Does `rule` derive the ground head tuple `t` under the current
/// extents? Binds the head, then searches the body with the head-bound
/// check plan and early exit — the per-candidate primitive behind DRed
/// rederivation (no full rule re-evaluation).
pub fn rule_derives(db: &dyn Rels, rule: &CRule, t: &[Value]) -> bool {
    debug_assert!(rule.agg.is_none(), "aggregate cliques are re-evaluated, not rederived");
    let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
    let mut trail: Vec<u32> = Vec::new();
    if !matches(&rule.head, t, &mut bind, &mut trail) {
        return false;
    }
    exists_from(db, rule, 0, &mut bind, &mut trail)
}

/// Early-exit body search for [`rule_derives`] (uses `check_plan`: head
/// variables are already bound, so later atoms are far more constrained
/// than in the forward plan).
fn exists_from(
    db: &dyn Rels,
    rule: &CRule,
    depth: usize,
    bind: &mut Vec<Option<Value>>,
    trail: &mut Vec<u32>,
) -> bool {
    if depth == rule.body.len() {
        return true;
    }
    let (atom, negated) = &rule.body[depth];
    if *negated {
        let tuple = instantiate(atom, bind);
        return !db.relation(atom.pred).contains(&tuple)
            && exists_from(db, rule, depth + 1, bind, trail);
    }
    let rel = db.relation(atom.pred);

    macro_rules! exists_loop {
        ($tuples:expr) => {{
            for tuple in $tuples {
                let mark = trail.len();
                if matches(atom, tuple, bind, trail) {
                    if exists_from(db, rule, depth + 1, bind, trail) {
                        return true;
                    }
                    for &s in &trail[mark..] {
                        bind[s as usize] = None;
                    }
                    trail.truncate(mark);
                }
            }
            false
        }};
    }

    match &rule.check_plan[depth] {
        Access::AllBound => {
            let tuple = instantiate(atom, bind);
            metrics().hit.inc();
            rel.contains(&tuple) && exists_from(db, rule, depth + 1, bind, trail)
        }
        Access::Index(cols) => {
            let key: Vec<Value> = cols.iter().map(|&c| resolve(&atom.terms[c], bind)).collect();
            match rel.probe(cols, &key) {
                Some(p) => {
                    let m = metrics();
                    if p.is_empty() {
                        m.miss.inc();
                    } else {
                        m.hit.inc();
                    }
                    exists_loop!(p.iter())
                }
                None => {
                    metrics().scan.inc();
                    exists_loop!(rel.iter())
                }
            }
        }
        Access::Scan => {
            metrics().scan.inc();
            exists_loop!(rel.iter())
        }
    }
}

/// How many distinct derivations (complete body bindings) does `rule`
/// have for the ground head tuple `t` under the current extents? The
/// counting sibling of [`rule_derives`]: the same head binding and
/// check plan, but exhaustive instead of early-exit — the per-candidate
/// backward-search primitive behind counting (FBF) maintenance, where
/// the answer becomes the tuple's stored support.
pub fn rule_derivation_count(db: &dyn Rels, rule: &CRule, t: &[Value]) -> u64 {
    debug_assert!(
        rule.agg.is_none(),
        "aggregate cliques are re-evaluated, never counted"
    );
    let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
    let mut trail: Vec<u32> = Vec::new();
    if !matches(&rule.head, t, &mut bind, &mut trail) {
        return 0;
    }
    let mut n = 0u64;
    count_from(db, rule, 0, &mut bind, &mut trail, &mut n);
    n
}

/// Exhaustive body search for [`rule_derivation_count`]: every complete
/// binding bumps `n` (safety grounds each binding in the positive atoms,
/// so bindings are in bijection with derivations).
fn count_from(
    db: &dyn Rels,
    rule: &CRule,
    depth: usize,
    bind: &mut Vec<Option<Value>>,
    trail: &mut Vec<u32>,
    n: &mut u64,
) {
    if depth == rule.body.len() {
        *n += 1;
        return;
    }
    let (atom, negated) = &rule.body[depth];
    if *negated {
        let tuple = instantiate(atom, bind);
        if !db.relation(atom.pred).contains(&tuple) {
            count_from(db, rule, depth + 1, bind, trail, n);
        }
        return;
    }
    let rel = db.relation(atom.pred);

    macro_rules! count_loop {
        ($tuples:expr) => {{
            for tuple in $tuples {
                let mark = trail.len();
                if matches(atom, tuple, bind, trail) {
                    count_from(db, rule, depth + 1, bind, trail, n);
                    for &s in &trail[mark..] {
                        bind[s as usize] = None;
                    }
                    trail.truncate(mark);
                }
            }
        }};
    }

    match &rule.check_plan[depth] {
        Access::AllBound => {
            let tuple = instantiate(atom, bind);
            metrics().hit.inc();
            if rel.contains(&tuple) {
                count_from(db, rule, depth + 1, bind, trail, n);
            }
        }
        Access::Index(cols) => {
            let key: Vec<Value> = cols.iter().map(|&c| resolve(&atom.terms[c], bind)).collect();
            match rel.probe(cols, &key) {
                Some(p) => {
                    let m = metrics();
                    if p.is_empty() {
                        m.miss.inc();
                    } else {
                        m.hit.inc();
                    }
                    count_loop!(p.iter())
                }
                None => {
                    metrics().scan.inc();
                    count_loop!(rel.iter())
                }
            }
        }
        Access::Scan => {
            metrics().scan.inc();
            count_loop!(rel.iter())
        }
    }
}

/// Naive evaluation to fixpoint over ALL rules — the reference semantics
/// that semi-naive and the incremental paths are tested against.
pub fn naive_fixpoint(db: &mut Database, rules: &[CRule]) {
    ensure_indices(db, rules, false);
    loop {
        let mut additions: Vec<(PredId, Tuple)> = Vec::new();
        for rule in rules {
            let head = rule.head.pred;
            if rule.agg.is_some() {
                // Valid when the rule's inputs are final within this call
                // (stratification guarantees it in the engine).
                for t in eval_agg_rule(db, rule) {
                    if !db.rel(head).contains(&t) {
                        additions.push((head, t));
                    }
                }
                continue;
            }
            eval_rule(db, rule, None, &mut |t| {
                if !db.rel(head).contains(&t) {
                    additions.push((head, t));
                }
            });
        }
        let mut grew = false;
        for (p, t) in additions {
            grew |= db.rel_mut(p).insert(t);
        }
        if !grew {
            return;
        }
    }
}

/// Semi-naive fixpoint for one recursive clique, given that everything
/// the clique depends on (outside itself) is final. Sequential
/// convenience wrapper over [`seminaive_scc_opts`].
pub fn seminaive_scc(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    seed: HashMap<PredId, HashSet<Tuple>>,
    bootstrap: bool,
) -> HashMap<PredId, HashSet<Tuple>> {
    seminaive_scc_opts(db, rules, scc_preds, seed, bootstrap, &EvalOptions::sequential())
}

/// Semi-naive fixpoint for one recursive clique.
///
/// `scc_preds` lists the clique's predicates; `rules` are exactly the
/// rules whose heads are in the clique. `seed[p]` holds the tuples of
/// `p` that are *new* relative to the last fixpoint (already inserted
/// into `db`); for initial evaluation call with `bootstrap = true`, which
/// runs every rule unpinned once to produce the first delta.
///
/// Each round pins every (rule, positive body position) pair whose
/// predicate has a pending delta; with `opts.threads > 1` the pinned
/// deltas are partitioned into chunks evaluated on the worker pool
/// against the frozen database, and the per-worker buffers are merged
/// with a deterministic sorted dedup before insertion.
///
/// Returns all tuples newly added, per predicate.
pub fn seminaive_scc_opts(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    seed: HashMap<PredId, HashSet<Tuple>>,
    bootstrap: bool,
    opts: &EvalOptions,
) -> HashMap<PredId, HashSet<Tuple>> {
    ensure_indices(db, rules, false);
    let mut added: HashMap<PredId, HashSet<Tuple>> =
        scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
    let mut delta: HashMap<PredId, HashSet<Tuple>> = seed;
    for &p in scc_preds {
        delta.entry(p).or_default();
    }

    if bootstrap {
        // Unpinned full evaluation of every rule. Rules whose first body
        // atom is a positive scan are partitioned over that atom's extent
        // (a Positive pin over the full extent is equivalent to the scan,
        // and its chunks are disjoint), so large re-evaluations also
        // parallelize; everything else runs sequentially.
        let mut seq_fresh: Vec<(PredId, Tuple)> = Vec::new();
        let mut extents: Vec<(usize, Vec<Tuple>)> = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            let head = rule.head.pred;
            if rule.agg.is_some() {
                for t in eval_agg_rule(db, rule) {
                    if !db.rel(head).contains(&t) {
                        seq_fresh.push((head, t));
                    }
                }
                continue;
            }
            let chunkable = matches!(rule.body.first(), Some((_, false)))
                && rule.plan.first() == Some(&Access::Scan)
                && !db.rel(rule.body[0].0.pred).is_empty();
            if chunkable && opts.parallel() {
                let mut ext: Vec<Tuple> =
                    db.rel(rule.body[0].0.pred).iter().cloned().collect();
                ext.sort_unstable();
                extents.push((i, ext));
            } else {
                eval_rule(db, rule, None, &mut |t| {
                    if !db.rel(head).contains(&t) {
                        seq_fresh.push((head, t));
                    }
                });
            }
        }
        let mut jobs: Vec<PinJob<'_>> = Vec::new();
        for (i, ext) in &extents {
            for chunk in opts.chunks(ext) {
                jobs.push(PinJob {
                    rule: &rules[*i],
                    pos: 0,
                    mode: PinMode::Positive,
                    chunk,
                });
            }
        }
        let mut fresh = eval_pin_jobs(
            db,
            &jobs,
            |head, t| !db.rel(head).contains(t),
            opts,
            "par.bootstrap",
        );
        fresh.append(&mut seq_fresh);
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                delta.get_mut(&p).expect("head in scc").insert(t.clone());
                added.get_mut(&p).expect("head in scc").insert(t);
            }
        }
    }

    loop {
        // Deterministically ordered delta lists so chunk boundaries (and
        // therefore the merged output) do not depend on hash order.
        let delta_lists: HashMap<PredId, Vec<Tuple>> = delta
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(&p, d)| {
                let mut v: Vec<Tuple> = d.iter().cloned().collect();
                v.sort_unstable();
                (p, v)
            })
            .collect();
        let mut jobs: Vec<PinJob<'_>> = Vec::new();
        for rule in rules {
            if rule.agg.is_some() {
                // Aggregate rules never participate in delta rounds: their
                // inputs are final (stratification) and they were fully
                // evaluated at bootstrap.
                continue;
            }
            for (j, (atom, negated)) in rule.body.iter().enumerate() {
                // Pin any position whose predicate has a pending delta —
                // in the first round that includes the caller's seed
                // (possibly external input predicates); later rounds only
                // carry the clique's own new tuples.
                if *negated {
                    continue;
                }
                let Some(list) = delta_lists.get(&atom.pred) else {
                    continue;
                };
                for chunk in opts.chunks(list) {
                    jobs.push(PinJob {
                        rule,
                        pos: j,
                        mode: PinMode::Positive,
                        chunk,
                    });
                }
            }
        }
        if jobs.is_empty() {
            return added;
        }
        let fresh = eval_pin_jobs(
            db,
            &jobs,
            |head, t| !db.rel(head).contains(t),
            opts,
            "par.round",
        );
        // Next round's delta = strictly new tuples.
        let mut next: HashMap<PredId, HashSet<Tuple>> =
            scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
        let mut grew = false;
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                next.get_mut(&p).expect("head in scc").insert(t.clone());
                added.get_mut(&p).expect("head in scc").insert(t);
                grew = true;
            }
        }
        if !grew {
            return added;
        }
        delta = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn setup(src: &str) -> (Database, Vec<CRule>) {
        let prog = parse_program(src).unwrap();
        let mut db = Database::new();
        let rules = compile_program(&prog, &mut db);
        load_facts(&prog, &mut db);
        (db, rules)
    }

    #[test]
    fn naive_transitive_closure() {
        let (mut db, rules) = setup(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(a, b). edge(b, c). edge(c, d).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("path", &["a", "d"]));
        assert!(db.has_fact("path", &["b", "d"]));
        assert!(!db.has_fact("path", &["d", "a"]));
        let path = db.pred_id("path").unwrap();
        assert_eq!(db.rel(path).len(), 6);
    }

    #[test]
    fn join_plans_pick_bound_columns() {
        let (_db, rules) = setup(
            "q(X, W) :- r(X, Y, Z), s(Y, Z, W).\n\
             r(a, b, c). s(b, c, d).",
        );
        let rule = &rules[0];
        // First atom: nothing bound -> scan; second: Y and Z bound, W not
        // -> probe the two-column index.
        assert_eq!(rule.plan[0], Access::Scan);
        assert_eq!(rule.plan[1], Access::Index(vec![0, 1]));
        // Check plan: head binds X and W, so r probes on column 0; after
        // r binds Y and Z, every column of s is bound.
        assert_eq!(rule.check_plan[0], Access::Index(vec![0]));
        assert_eq!(rule.check_plan[1], Access::AllBound);
    }

    #[test]
    fn fully_bound_atom_becomes_membership_check() {
        let (_db, rules) = setup(
            "q(X, Z) :- r(X, Y, Z), s(Y, Z).\n\
             r(a, b, c). s(b, c).",
        );
        assert_eq!(rules[0].plan[1], Access::AllBound, "both columns bound");
    }

    #[test]
    fn first_column_mode_reproduces_legacy_plan() {
        let src = "q(X, Z) :- r(X, Y, Z), s(Y, Z).\n r(a, b, c). s(b, c).";
        let prog = parse_program(src).unwrap();
        let mut db = Database::new();
        let rules = compile_program_with(&prog, &mut db, IndexMode::FirstColumn);
        assert_eq!(rules[0].plan[0], Access::Scan);
        // Position 0 of `s` is bound (Y), so legacy probes only column 0.
        assert_eq!(rules[0].plan[1], Access::Index(vec![0]));
    }

    #[test]
    fn multi_bound_join_uses_index_not_scan() {
        let (mut db, rules) = setup(
            "joined(A, C) :- fact3(A, B, C), link(B, C).\n\
             fact3(a, b, c). fact3(a2, b, c). fact3(a3, x, y).\n\
             link(b, c).",
        );
        incr_obs::registry().reset();
        naive_fixpoint(&mut db, &rules);
        let snap = incr_obs::registry().snapshot();
        let counters = snap.get("counters").unwrap();
        let hits = counters
            .get("datalog.index.hit")
            .and_then(incr_obs::Json::as_u64)
            .unwrap_or(0);
        assert!(hits > 0, "multi-bound probe must hit the [0,1] index");
        assert_eq!(db.pred_id("joined").map(|p| db.rel(p).len()), Some(2));
    }

    #[test]
    fn rule_derives_checks_single_candidates() {
        let (mut db, rules) = setup(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(a, b). edge(b, c).",
        );
        naive_fixpoint(&mut db, &rules);
        ensure_indices(&mut db, &rules, true);
        let a = Value::Sym(db.interner.get("a").unwrap());
        let b = Value::Sym(db.interner.get("b").unwrap());
        let c = Value::Sym(db.interner.get("c").unwrap());
        let base = &rules[0];
        let rec = &rules[1];
        assert!(rule_derives(&db, base, &[a, b]));
        assert!(!rule_derives(&db, base, &[a, c]), "no direct edge a->c");
        assert!(rule_derives(&db, rec, &[a, c]), "via path(a,b), edge(b,c)");
        assert!(!rule_derives(&db, rec, &[c, a]));
    }

    #[test]
    fn seminaive_matches_naive() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c). edge(c, a). edge(c, d).";
        let (mut db1, rules1) = setup(src);
        naive_fixpoint(&mut db1, &rules1);

        let (mut db2, rules2) = setup(src);
        let path = db2.pred_id("path").unwrap();
        let scc = vec![path];
        let scc_rules: Vec<CRule> = rules2
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        seminaive_scc(&mut db2, &scc_rules, &scc, HashMap::new(), true);

        assert_eq!(db1.rel(path).sorted(), db2.rel(path).sorted());
        // Cycle a->b->c->a: 3x4 pairs reach d plus cycle pairs.
        assert!(db2.has_fact("path", &["a", "a"]));
    }

    #[test]
    fn seminaive_parallel_matches_sequential() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c). edge(c, a). edge(c, d). edge(d, e).\n\
                   edge(e, a). edge(b, e).";
        let run = |opts: &EvalOptions| {
            let (mut db, rules) = setup(src);
            let path = db.pred_id("path").unwrap();
            let scc_rules: Vec<CRule> = rules
                .iter()
                .filter(|r| r.head.pred == path)
                .cloned()
                .collect();
            seminaive_scc_opts(&mut db, &scc_rules, &[path], HashMap::new(), true, opts);
            db.rel(path).sorted()
        };
        let seq = run(&EvalOptions::sequential());
        let mut par_opts = EvalOptions::with_threads(4);
        par_opts.min_parallel_tuples = 0; // force the pool even on tiny deltas
        let par = run(&par_opts);
        assert_eq!(seq, par);
    }

    #[test]
    fn negation_checks_absence() {
        // Negated predicate is base data here: naive_fixpoint is only a
        // valid reference within one stratum (the engine's materializer
        // runs cliques in stratification order for the general case).
        let (mut db, rules) = setup(
            "orphan(X) :- node(X), !haspar(X).\n\
             node(a). node(b). haspar(b).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("orphan", &["a"]));
        assert!(!db.has_fact("orphan", &["b"]));
    }

    #[test]
    fn constants_in_rules() {
        let (mut db, rules) = setup(
            "big(X) :- size(X, 10).\n\
             size(a, 10). size(b, 3).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("big", &["a"]));
        assert!(!db.has_fact("big", &["b"]));
    }

    #[test]
    fn repeated_variables_must_agree() {
        let (mut db, rules) = setup(
            "selfloop(X) :- edge(X, X).\n\
             edge(a, a). edge(a, b).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("selfloop", &["a"]));
        let sl = db.pred_id("selfloop").unwrap();
        assert_eq!(db.rel(sl).len(), 1);
    }

    #[test]
    fn pinned_eval_restricts_derivations() {
        let (db, rules) = setup(
            "p(X, Y) :- e(X, Y).\n\
             e(a, b). e(b, c).",
        );
        let rule = &rules[0];
        let a = db.interner.get("a").unwrap();
        let b = db.interner.get("b").unwrap();
        let delta = vec![vec![Value::Sym(a), Value::Sym(b)]];
        let mut got = Vec::new();
        eval_rule(
            &db,
            rule,
            Some(Pin {
                index: 0,
                mode: PinMode::Positive,
                delta: &delta,
            }),
            &mut |t| got.push(t),
        );
        assert_eq!(got, vec![vec![Value::Sym(a), Value::Sym(b)]]);
    }

    #[test]
    fn seminaive_seeded_insertion() {
        // Start with materialized closure of a->b; then seed edge delta b->c.
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b).";
        let (mut db, rules) = setup(src);
        let path = db.pred_id("path").unwrap();
        let edge = db.pred_id("edge").unwrap();
        let scc_rules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        seminaive_scc(&mut db, &scc_rules, &[path], HashMap::new(), true);
        assert_eq!(db.rel(path).len(), 1);

        // Incremental: add edge(b, c); seed = the edge delta.
        let b = db.interner.get("b").unwrap();
        let c = db.sym("c");
        let new_edge = vec![Value::Sym(b), c];
        db.rel_mut(edge).insert(new_edge.clone());
        let mut seed = HashMap::new();
        seed.insert(edge, HashSet::from([new_edge]));
        let added = seminaive_scc(&mut db, &scc_rules, &[path], seed, false);
        // New paths: b->c and a->c.
        assert_eq!(added[&path].len(), 2);
        assert!(db.has_fact("path", &["a", "c"]));
    }
}
