//! Bottom-up evaluation: naive and semi-naive, with *delta pinning* as
//! the common primitive.
//!
//! A compiled rule's body is evaluated left-to-right by nested-loop join
//! over variable bindings. Pinning body position `j` to a delta relation
//! evaluates only the derivations that use a delta tuple at `j` — the
//! primitive behind semi-naive fixpoints, incremental insertion, and
//! DRed overdeletion alike.

use crate::ast::{AggOp, Program, Rule, Term};
use crate::rel::{Database, PredId, Relation};
use crate::value::{Tuple, Value};
use std::collections::{HashMap, HashSet};

/// Read-only source of relation extents. [`Database`] is the live store;
/// the incremental module's snapshots overlay old extents for DRed
/// overdeletion (which must evaluate against the pre-update state).
pub trait Rels {
    fn relation(&self, p: PredId) -> &Relation;
}

impl Rels for Database {
    fn relation(&self, p: PredId) -> &Relation {
        self.rel(p)
    }
}

/// A term with variables resolved to dense per-rule slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CTerm {
    Var(u32),
    Const(Value),
}

/// An atom over slot-resolved terms.
#[derive(Clone, Debug)]
pub struct CAtom {
    pub pred: PredId,
    pub terms: Vec<CTerm>,
}

/// A compiled head aggregate: head position `pos` holds `op` over the
/// body variable in slot `slot`, grouped by the remaining head terms.
#[derive(Clone, Copy, Debug)]
pub struct CAgg {
    pub pos: usize,
    pub op: AggOp,
    pub slot: u32,
}

/// A compiled rule.
#[derive(Clone, Debug)]
pub struct CRule {
    pub head: CAtom,
    /// `(atom, negated)` in source order.
    pub body: Vec<(CAtom, bool)>,
    pub nvars: u32,
    /// Head aggregate, if any. Aggregate rules are evaluated by
    /// [`eval_agg_rule`], never with delta pins; stratification keeps
    /// their consumers above their inputs exactly as with negation.
    pub agg: Option<CAgg>,
}

/// Compile `rule`, registering predicates and interning constants.
pub fn compile_rule(rule: &Rule, db: &mut Database) -> CRule {
    fn catom(atom: &crate::ast::Atom, db: &mut Database) -> CAtom {
        let pred = db.pred(&atom.pred, atom.arity());
        let terms = atom
            .terms
            .iter()
            .map(|t| match t {
                // Variables and aggregated variables are slot placeholders.
                Term::Var(_) | Term::Agg(..) => CTerm::Var(0), // fixed below
                Term::Int(i) => CTerm::Const(Value::Int(*i)),
                Term::Sym(s) => CTerm::Const(db.sym(s)),
            })
            .collect::<Vec<_>>();
        CAtom { pred, terms }
    }
    // First pass creates atoms with placeholder vars; second assigns
    // variable slots (needs the original AST for the names).
    let mut head = catom(&rule.head, db);
    let mut body: Vec<(CAtom, bool)> = rule
        .body
        .iter()
        .map(|l| (catom(&l.atom, db), l.negated))
        .collect();
    let mut slots: HashMap<String, u32> = HashMap::new();
    let mut next = 0u32;
    let mut fix = |ast: &crate::ast::Atom, c: &mut CAtom| {
        for (i, t) in ast.terms.iter().enumerate() {
            if let Term::Var(name) | Term::Agg(_, name) = t {
                let slot = *slots.entry(name.clone()).or_insert_with(|| {
                    let s = next;
                    next += 1;
                    s
                });
                c.terms[i] = CTerm::Var(slot);
            }
        }
    };
    // Bind body first so evaluation binds variables before the head
    // reads them (safety guarantees head vars appear in the body).
    for (i, l) in rule.body.iter().enumerate() {
        fix(&l.atom, &mut body[i].0);
    }
    fix(&rule.head, &mut head);
    let agg = rule.head.agg().map(|(pos, op, var)| CAgg {
        pos,
        op,
        slot: slots[var],
    });
    CRule {
        head,
        body,
        nvars: next,
        agg,
    }
}

/// Compile all rules with non-empty bodies (facts are loaded separately
/// via [`load_facts`]); also registers every predicate.
pub fn compile_program(program: &Program, db: &mut Database) -> Vec<CRule> {
    // Register every predicate (even fact-only ones) first.
    for r in &program.rules {
        db.pred(&r.head.pred, r.head.arity());
        for l in &r.body {
            db.pred(&l.atom.pred, l.atom.arity());
        }
    }
    program
        .rules
        .iter()
        .filter(|r| !r.body.is_empty() || r.head.vars().is_empty())
        .filter(|r| !r.body.is_empty())
        .map(|r| compile_rule(r, db))
        .collect()
}

/// Insert the program's ground facts into the database.
pub fn load_facts(program: &Program, db: &mut Database) {
    for r in &program.rules {
        if r.is_fact() {
            let tuple: Tuple = r
                .head
                .terms
                .iter()
                .map(|t| match t {
                    Term::Int(i) => Value::Int(*i),
                    Term::Sym(s) => db.sym(s),
                    Term::Var(_) | Term::Agg(..) => unreachable!("facts are ground"),
                })
                .collect();
            let id = db.pred(&r.head.pred, r.head.arity());
            db.rel_mut(id).insert(tuple);
        }
    }
}

/// Match `tuple` against `atom` under `bind` (slot -> value); extends
/// `bind`, recording newly bound slots in `trail` for backtracking.
fn matches(atom: &CAtom, tuple: &[Value], bind: &mut [Option<Value>], trail: &mut Vec<u32>) -> bool {
    let start = trail.len();
    for (t, &v) in atom.terms.iter().zip(tuple) {
        let ok = match *t {
            CTerm::Const(c) => c == v,
            CTerm::Var(s) => match bind[s as usize] {
                Some(b) => b == v,
                None => {
                    bind[s as usize] = Some(v);
                    trail.push(s);
                    true
                }
            },
        };
        if !ok {
            for &s in &trail[start..] {
                bind[s as usize] = None;
            }
            trail.truncate(start);
            return false;
        }
    }
    true
}

/// Instantiate a fully-bound atom (negated literals and heads are ground
/// under safety once the positive body is bound).
fn instantiate(atom: &CAtom, bind: &[Option<Value>]) -> Tuple {
    atom.terms
        .iter()
        .map(|t| match *t {
            CTerm::Const(c) => c,
            CTerm::Var(s) => bind[s as usize].expect("unbound slot in ground position"),
        })
        .collect()
}

/// How a pinned literal is interpreted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinMode {
    /// Positive literal restricted to the delta set (semi-naive /
    /// insertion / overdeletion through positive dependencies).
    Positive,
    /// Negated literal matched *positively* against tuples freshly
    /// REMOVED from its relation — derivations newly enabled because the
    /// blocker disappeared. Requires the tuple to be absent from the
    /// current relation.
    NegGained,
    /// Negated literal matched positively against tuples freshly ADDED to
    /// its relation — derivations destroyed because a blocker appeared
    /// (overdeletion through negation).
    NegLost,
}

/// A pinned body position.
pub struct Pin<'a> {
    pub index: usize,
    pub mode: PinMode,
    pub delta: &'a HashSet<Tuple>,
}

/// Evaluate `rule` against `db`, optionally pinning one body literal, and
/// call `out` for every derived head tuple (duplicates possible).
///
/// With `PinMode::NegLost` the negated literal at the pin matches added
/// tuples and the *rest* of the rule is evaluated as usual — the caller
/// interprets the heads as lost derivations.
pub fn eval_rule(db: &dyn Rels, rule: &CRule, pin: Option<Pin<'_>>, out: &mut dyn FnMut(Tuple)) {
    assert!(
        rule.agg.is_none(),
        "aggregate rules are evaluated with eval_agg_rule, never pinned"
    );
    let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
    let mut trail: Vec<u32> = Vec::new();
    eval_from(db, rule, &pin, 0, &mut bind, &mut trail, out);
}

/// Evaluate an aggregate rule: collect the DISTINCT raw head bindings
/// (the aggregate position carries the bound variable), group by the
/// remaining positions, and fold each group with the operator.
///
/// `count` counts distinct values per group; `sum`/`min`/`max` fold the
/// `Int` values and skip groups with none (symbols have no meaningful
/// order across interning).
pub fn eval_agg_rule(db: &dyn Rels, rule: &CRule) -> Vec<Tuple> {
    let agg = rule.agg.expect("eval_agg_rule requires an aggregate head");
    let mut raw: HashSet<Tuple> = HashSet::new();
    {
        let mut bind: Vec<Option<Value>> = vec![None; rule.nvars as usize];
        let mut trail: Vec<u32> = Vec::new();
        eval_from(db, rule, &None, 0, &mut bind, &mut trail, &mut |t| {
            raw.insert(t);
        });
    }
    let mut groups: HashMap<Vec<Value>, Vec<Value>> = HashMap::new();
    for t in raw {
        let mut key = t.clone();
        let v = key.remove(agg.pos);
        groups.entry(key).or_default().push(v);
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, vals) in groups {
        let folded = match agg.op {
            AggOp::Count => Some(Value::Int(vals.len() as i64)),
            AggOp::Sum => {
                let ints: Vec<i64> = vals
                    .iter()
                    .filter_map(|v| match v {
                        Value::Int(i) => Some(*i),
                        _ => None,
                    })
                    .collect();
                (!ints.is_empty()).then(|| Value::Int(ints.iter().sum()))
            }
            AggOp::Min | AggOp::Max => {
                let ints = vals.iter().filter_map(|v| match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                });
                if agg.op == AggOp::Min {
                    ints.min().map(Value::Int)
                } else {
                    ints.max().map(Value::Int)
                }
            }
        };
        if let Some(v) = folded {
            let mut tuple = key;
            tuple.insert(agg.pos, v);
            out.push(tuple);
        }
    }
    out
}

fn eval_from(
    db: &dyn Rels,
    rule: &CRule,
    pin: &Option<Pin<'_>>,
    depth: usize,
    bind: &mut Vec<Option<Value>>,
    trail: &mut Vec<u32>,
    out: &mut dyn FnMut(Tuple),
) {
    if depth == rule.body.len() {
        out(instantiate(&rule.head, bind));
        return;
    }
    let (atom, negated) = &rule.body[depth];
    let pinned_here = pin.as_ref().filter(|p| p.index == depth);

    if let Some(p) = pinned_here {
        match p.mode {
            PinMode::Positive => {
                debug_assert!(!negated, "Positive pin on negated literal");
                for tuple in p.delta {
                    let mark = trail.len();
                    if matches(atom, tuple, bind, trail) {
                        eval_from(db, rule, pin, depth + 1, bind, trail, out);
                        for &s in &trail[mark..] {
                            bind[s as usize] = None;
                        }
                        trail.truncate(mark);
                    }
                }
            }
            PinMode::NegGained => {
                debug_assert!(negated);
                for tuple in p.delta {
                    let mark = trail.len();
                    if matches(atom, tuple, bind, trail) {
                        // Only a *net* removal enables the derivation.
                        if !db.relation(atom.pred).contains(tuple) {
                            eval_from(db, rule, pin, depth + 1, bind, trail, out);
                        }
                        for &s in &trail[mark..] {
                            bind[s as usize] = None;
                        }
                        trail.truncate(mark);
                    }
                }
            }
            PinMode::NegLost => {
                debug_assert!(negated);
                for tuple in p.delta {
                    let mark = trail.len();
                    if matches(atom, tuple, bind, trail) {
                        eval_from(db, rule, pin, depth + 1, bind, trail, out);
                        for &s in &trail[mark..] {
                            bind[s as usize] = None;
                        }
                        trail.truncate(mark);
                    }
                }
            }
        }
        return;
    }

    if *negated {
        // Safety guarantees groundness here.
        let tuple = instantiate(atom, bind);
        if !db.relation(atom.pred).contains(&tuple) {
            eval_from(db, rule, pin, depth + 1, bind, trail, out);
        }
        return;
    }

    // Probe the first-column index when that position is already bound.
    let rel = db.relation(atom.pred);
    let first_key = atom.terms.first().and_then(|t| match *t {
        CTerm::Const(c) => Some(c),
        CTerm::Var(s) => bind[s as usize],
    });
    if let Some(key) = first_key {
        for tuple in rel.iter_first(key) {
            let mark = trail.len();
            if matches(atom, tuple, bind, trail) {
                eval_from(db, rule, pin, depth + 1, bind, trail, out);
                for &s in &trail[mark..] {
                    bind[s as usize] = None;
                }
                trail.truncate(mark);
            }
        }
        return;
    }
    for tuple in rel.iter() {
        let mark = trail.len();
        if matches(atom, tuple, bind, trail) {
            eval_from(db, rule, pin, depth + 1, bind, trail, out);
            for &s in &trail[mark..] {
                bind[s as usize] = None;
            }
            trail.truncate(mark);
        }
    }
}

/// Naive evaluation to fixpoint over ALL rules — the reference semantics
/// that semi-naive and the incremental paths are tested against.
pub fn naive_fixpoint(db: &mut Database, rules: &[CRule]) {
    loop {
        let mut additions: Vec<(PredId, Tuple)> = Vec::new();
        for rule in rules {
            let head = rule.head.pred;
            if rule.agg.is_some() {
                // Valid when the rule's inputs are final within this call
                // (stratification guarantees it in the engine).
                for t in eval_agg_rule(db, rule) {
                    if !db.rel(head).contains(&t) {
                        additions.push((head, t));
                    }
                }
                continue;
            }
            eval_rule(db, rule, None, &mut |t| {
                if !db.rel(head).contains(&t) {
                    additions.push((head, t));
                }
            });
        }
        let mut grew = false;
        for (p, t) in additions {
            grew |= db.rel_mut(p).insert(t);
        }
        if !grew {
            return;
        }
    }
}

/// Semi-naive fixpoint for one recursive clique, given that everything
/// the clique depends on (outside itself) is final.
///
/// `scc_preds` lists the clique's predicates; `rules` are exactly the
/// rules whose heads are in the clique. `seed[p]` holds the tuples of
/// `p` that are *new* relative to the last fixpoint (already inserted
/// into `db`); for initial evaluation call with `bootstrap = true`, which
/// runs every rule unpinned once to produce the first delta.
///
/// Returns all tuples newly added, per predicate.
pub fn seminaive_scc(
    db: &mut Database,
    rules: &[CRule],
    scc_preds: &[PredId],
    seed: HashMap<PredId, HashSet<Tuple>>,
    bootstrap: bool,
) -> HashMap<PredId, HashSet<Tuple>> {
    let mut added: HashMap<PredId, HashSet<Tuple>> =
        scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
    let mut delta: HashMap<PredId, HashSet<Tuple>> = seed;
    for &p in scc_preds {
        delta.entry(p).or_default();
    }

    if bootstrap {
        let mut fresh: Vec<(PredId, Tuple)> = Vec::new();
        for rule in rules {
            let head = rule.head.pred;
            if rule.agg.is_some() {
                for t in eval_agg_rule(db, rule) {
                    if !db.rel(head).contains(&t) {
                        fresh.push((head, t));
                    }
                }
                continue;
            }
            eval_rule(db, rule, None, &mut |t| {
                if !db.rel(head).contains(&t) {
                    fresh.push((head, t));
                }
            });
        }
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                delta.get_mut(&p).expect("head in scc").insert(t.clone());
                added.get_mut(&p).expect("head in scc").insert(t);
            }
        }
    }

    loop {
        let mut fresh: Vec<(PredId, Tuple)> = Vec::new();
        for rule in rules {
            let head = rule.head.pred;
            if rule.agg.is_some() {
                // Aggregate rules never participate in delta rounds: their
                // inputs are final (stratification) and they were fully
                // evaluated at bootstrap.
                continue;
            }
            for (j, (atom, negated)) in rule.body.iter().enumerate() {
                // Pin any position whose predicate has a pending delta —
                // in the first round that includes the caller's seed
                // (possibly external input predicates); later rounds only
                // carry the clique's own new tuples.
                if *negated {
                    continue;
                }
                let Some(d) = delta.get(&atom.pred) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                eval_rule(
                    db,
                    rule,
                    Some(Pin {
                        index: j,
                        mode: PinMode::Positive,
                        delta: d,
                    }),
                    &mut |t| {
                        if !db.rel(head).contains(&t) {
                            fresh.push((head, t));
                        }
                    },
                );
            }
        }
        // Next round's delta = strictly new tuples.
        let mut next: HashMap<PredId, HashSet<Tuple>> =
            scc_preds.iter().map(|&p| (p, HashSet::new())).collect();
        let mut grew = false;
        for (p, t) in fresh {
            if db.rel_mut(p).insert(t.clone()) {
                next.get_mut(&p).expect("head in scc").insert(t.clone());
                added.get_mut(&p).expect("head in scc").insert(t);
                grew = true;
            }
        }
        if !grew {
            return added;
        }
        delta = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn setup(src: &str) -> (Database, Vec<CRule>) {
        let prog = parse_program(src).unwrap();
        let mut db = Database::new();
        let rules = compile_program(&prog, &mut db);
        load_facts(&prog, &mut db);
        (db, rules)
    }

    #[test]
    fn naive_transitive_closure() {
        let (mut db, rules) = setup(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- path(X, Y), edge(Y, Z).\n\
             edge(a, b). edge(b, c). edge(c, d).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("path", &["a", "d"]));
        assert!(db.has_fact("path", &["b", "d"]));
        assert!(!db.has_fact("path", &["d", "a"]));
        let path = db.pred_id("path").unwrap();
        assert_eq!(db.rel(path).len(), 6);
    }

    #[test]
    fn seminaive_matches_naive() {
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b). edge(b, c). edge(c, a). edge(c, d).";
        let (mut db1, rules1) = setup(src);
        naive_fixpoint(&mut db1, &rules1);

        let (mut db2, rules2) = setup(src);
        let path = db2.pred_id("path").unwrap();
        let scc = vec![path];
        let scc_rules: Vec<CRule> = rules2
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        seminaive_scc(&mut db2, &scc_rules, &scc, HashMap::new(), true);

        assert_eq!(db1.rel(path).sorted(), db2.rel(path).sorted());
        // Cycle a->b->c->a: 3x4 pairs reach d plus cycle pairs.
        assert!(db2.has_fact("path", &["a", "a"]));
    }

    #[test]
    fn negation_checks_absence() {
        // Negated predicate is base data here: naive_fixpoint is only a
        // valid reference within one stratum (the engine's materializer
        // runs cliques in stratification order for the general case).
        let (mut db, rules) = setup(
            "orphan(X) :- node(X), !haspar(X).\n\
             node(a). node(b). haspar(b).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("orphan", &["a"]));
        assert!(!db.has_fact("orphan", &["b"]));
    }

    #[test]
    fn constants_in_rules() {
        let (mut db, rules) = setup(
            "big(X) :- size(X, 10).\n\
             size(a, 10). size(b, 3).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("big", &["a"]));
        assert!(!db.has_fact("big", &["b"]));
    }

    #[test]
    fn repeated_variables_must_agree() {
        let (mut db, rules) = setup(
            "selfloop(X) :- edge(X, X).\n\
             edge(a, a). edge(a, b).",
        );
        naive_fixpoint(&mut db, &rules);
        assert!(db.has_fact("selfloop", &["a"]));
        let sl = db.pred_id("selfloop").unwrap();
        assert_eq!(db.rel(sl).len(), 1);
    }

    #[test]
    fn pinned_eval_restricts_derivations() {
        let (db, rules) = setup(
            "p(X, Y) :- e(X, Y).\n\
             e(a, b). e(b, c).",
        );
        let rule = &rules[0];
        let mut delta = HashSet::new();
        let a = db.interner.get("a").unwrap();
        let b = db.interner.get("b").unwrap();
        delta.insert(vec![Value::Sym(a), Value::Sym(b)]);
        let mut got = Vec::new();
        eval_rule(
            &db,
            rule,
            Some(Pin {
                index: 0,
                mode: PinMode::Positive,
                delta: &delta,
            }),
            &mut |t| got.push(t),
        );
        assert_eq!(got, vec![vec![Value::Sym(a), Value::Sym(b)]]);
    }

    #[test]
    fn seminaive_seeded_insertion() {
        // Start with materialized closure of a->b; then seed edge delta b->c.
        let src = "path(X, Y) :- edge(X, Y).\n\
                   path(X, Z) :- path(X, Y), edge(Y, Z).\n\
                   edge(a, b).";
        let (mut db, rules) = setup(src);
        let path = db.pred_id("path").unwrap();
        let edge = db.pred_id("edge").unwrap();
        let scc_rules: Vec<CRule> = rules
            .iter()
            .filter(|r| r.head.pred == path)
            .cloned()
            .collect();
        seminaive_scc(&mut db, &scc_rules, &[path], HashMap::new(), true);
        assert_eq!(db.rel(path).len(), 1);

        // Incremental: add edge(b, c); seed = the edge delta.
        let b = db.interner.get("b").unwrap();
        let c = db.sym("c");
        let new_edge = vec![Value::Sym(b), c];
        db.rel_mut(edge).insert(new_edge.clone());
        let mut seed = HashMap::new();
        seed.insert(edge, HashSet::from([new_edge]));
        let added = seminaive_scc(&mut db, &scc_rules, &[path], seed, false);
        // New paths: b->c and a->c.
        assert_eq!(added[&path].len(), 2);
        assert!(db.has_fact("path", &["a", "c"]));
    }
}
